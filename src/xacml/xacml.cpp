#include "xacml/xacml.h"

#include <charconv>
#include <set>

#include "gsi/dn.h"

namespace gridauthz::xacml {

std::string_view to_string(Effect effect) {
  return effect == Effect::kPermit ? "Permit" : "Deny";
}

std::string_view to_string(XacmlDecision decision) {
  switch (decision) {
    case XacmlDecision::kPermit:
      return "Permit";
    case XacmlDecision::kDeny:
      return "Deny";
    case XacmlDecision::kNotApplicable:
      return "NotApplicable";
    case XacmlDecision::kIndeterminate:
      return "Indeterminate";
  }
  return "?";
}

std::string_view to_string(Combining combining) {
  switch (combining) {
    case Combining::kDenyOverrides:
      return "deny-overrides";
    case Combining::kPermitOverrides:
      return "permit-overrides";
    case Combining::kFirstApplicable:
      return "first-applicable";
  }
  return "?";
}

Expected<Combining> CombiningFromString(std::string_view text) {
  if (text == "deny-overrides") return Combining::kDenyOverrides;
  if (text == "permit-overrides") return Combining::kPermitOverrides;
  if (text == "first-applicable") return Combining::kFirstApplicable;
  return Error{ErrCode::kParseError,
               "unknown combining algorithm: " + std::string{text}};
}

std::string_view to_string(Category category) {
  switch (category) {
    case Category::kSubject:
      return "Subject";
    case Category::kResource:
      return "Resource";
    case Category::kAction:
      return "Action";
  }
  return "?";
}

Expected<Category> CategoryFromString(std::string_view text) {
  if (text == "Subject") return Category::kSubject;
  if (text == "Resource") return Category::kResource;
  if (text == "Action") return Category::kAction;
  return Error{ErrCode::kParseError,
               "unknown attribute category: " + std::string{text}};
}

const std::vector<std::string>* RequestContext::Bag(
    Category category, const std::string& attribute_id) const {
  const std::map<std::string, std::vector<std::string>>* bags = nullptr;
  switch (category) {
    case Category::kSubject:
      bags = &subject;
      break;
    case Category::kResource:
      bags = &resource;
      break;
    case Category::kAction:
      bags = &action;
      break;
  }
  auto it = bags->find(attribute_id);
  return it == bags->end() ? nullptr : &it->second;
}

Expression Expression::Apply(std::string fn, std::vector<Expression> arguments) {
  Expression e;
  e.kind = Kind::kApply;
  e.function = std::move(fn);
  e.args = std::move(arguments);
  return e;
}

Expression Expression::Designator(Category category, std::string attribute_id) {
  Expression e;
  e.kind = Kind::kDesignator;
  e.category = category;
  e.attribute_id = std::move(attribute_id);
  return e;
}

Expression Expression::Literal(std::string value) {
  Expression e;
  e.kind = Kind::kLiteral;
  e.literal = std::move(value);
  return e;
}

// ----- condition evaluation -------------------------------------------

namespace {

struct Value {
  bool is_bool = false;
  bool boolean = false;
  std::vector<std::string> bag;

  static Value Bool(bool b) {
    Value v;
    v.is_bool = true;
    v.boolean = b;
    return v;
  }
  static Value Bag(std::vector<std::string> items) {
    Value v;
    v.bag = std::move(items);
    return v;
  }
};

std::optional<std::int64_t> ToInt(const std::string& s) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

Expected<Value> Eval(const Expression& expression,
                     const RequestContext& context);

Expected<bool> EvalBool(const Expression& expression,
                        const RequestContext& context) {
  GA_TRY(Value value, Eval(expression, context));
  if (!value.is_bool) {
    return Error{ErrCode::kInvalidArgument,
                 "expected a boolean argument in condition"};
  }
  return value.boolean;
}

Expected<std::vector<std::string>> EvalBag(const Expression& expression,
                                           const RequestContext& context) {
  GA_TRY(Value value, Eval(expression, context));
  if (value.is_bool) {
    return Error{ErrCode::kInvalidArgument,
                 "expected a value bag in condition, got a boolean"};
  }
  return value.bag;
}

// Union of every argument's bag from index `from` on.
Expected<std::set<std::string>> UnionBags(const std::vector<Expression>& args,
                                          std::size_t from,
                                          const RequestContext& context) {
  std::set<std::string> out;
  for (std::size_t i = from; i < args.size(); ++i) {
    GA_TRY(std::vector<std::string> bag, EvalBag(args[i], context));
    out.insert(bag.begin(), bag.end());
  }
  return out;
}

Expected<bool> NumericCompare(const std::string& function,
                              const std::vector<Expression>& args,
                              const RequestContext& context) {
  if (args.size() != 2) {
    return Error{ErrCode::kInvalidArgument,
                 function + " needs exactly two arguments"};
  }
  GA_TRY(std::vector<std::string> left, EvalBag(args[0], context));
  GA_TRY(std::vector<std::string> right, EvalBag(args[1], context));
  if (left.empty()) return false;
  if (right.size() != 1) {
    return Error{ErrCode::kInvalidArgument,
                 function + " needs a single right-hand value"};
  }
  auto bound = ToInt(right.front());
  if (!bound) {
    return Error{ErrCode::kInvalidArgument,
                 function + ": non-integer bound '" + right.front() + "'"};
  }
  for (const std::string& item : left) {
    auto value = ToInt(item);
    if (!value) return false;
    bool ok = false;
    if (function == "integer-less-than") ok = *value < *bound;
    else if (function == "integer-less-than-or-equal") ok = *value <= *bound;
    else if (function == "integer-greater-than") ok = *value > *bound;
    else ok = *value >= *bound;  // integer-greater-than-or-equal
    if (!ok) return false;
  }
  return true;
}

Expected<Value> Eval(const Expression& expression,
                     const RequestContext& context) {
  switch (expression.kind) {
    case Expression::Kind::kLiteral:
      return Value::Bag({expression.literal});
    case Expression::Kind::kDesignator: {
      const std::vector<std::string>* bag =
          context.Bag(expression.category, expression.attribute_id);
      return Value::Bag(bag == nullptr ? std::vector<std::string>{} : *bag);
    }
    case Expression::Kind::kApply:
      break;
  }

  const std::string& fn = expression.function;
  const std::vector<Expression>& args = expression.args;

  if (fn == "true") return Value::Bool(true);
  if (fn == "false") return Value::Bool(false);
  if (fn == "and" || fn == "or") {
    for (const Expression& arg : args) {
      GA_TRY(bool value, EvalBool(arg, context));
      if (fn == "and" && !value) return Value::Bool(false);
      if (fn == "or" && value) return Value::Bool(true);
    }
    return Value::Bool(fn == "and");
  }
  if (fn == "not") {
    if (args.size() != 1) {
      return Error{ErrCode::kInvalidArgument, "not needs one argument"};
    }
    GA_TRY(bool value, EvalBool(args[0], context));
    return Value::Bool(!value);
  }
  if (fn == "present" || fn == "absent") {
    if (args.size() != 1) {
      return Error{ErrCode::kInvalidArgument, fn + " needs one argument"};
    }
    GA_TRY(std::vector<std::string> bag, EvalBag(args[0], context));
    return Value::Bool(fn == "present" ? !bag.empty() : bag.empty());
  }
  if (fn == "any-equal" || fn == "none-equal") {
    if (args.size() != 2) {
      return Error{ErrCode::kInvalidArgument, fn + " needs two arguments"};
    }
    GA_TRY(std::vector<std::string> left, EvalBag(args[0], context));
    GA_TRY(std::vector<std::string> right, EvalBag(args[1], context));
    bool any = false;
    for (const std::string& a : left) {
      for (const std::string& b : right) {
        if (a == b) {
          any = true;
          break;
        }
      }
    }
    return Value::Bool(fn == "any-equal" ? any : !any);
  }
  if (fn == "all-in") {
    // all-in(A, B...): A non-empty and every element of A matches some
    // element of B∪... — exactly, or by prefix when the element is a
    // trailing-'*' pattern (mirroring the RSL evaluator's value
    // patterns).
    if (args.empty()) {
      return Error{ErrCode::kInvalidArgument, "all-in needs arguments"};
    }
    GA_TRY(std::vector<std::string> left, EvalBag(args[0], context));
    if (left.empty()) return Value::Bool(false);
    GA_TRY(std::set<std::string> allowed, UnionBags(args, 1, context));
    for (const std::string& item : left) {
      bool matched = false;
      for (const std::string& pattern : allowed) {
        if (!pattern.empty() && pattern.back() == '*'
                ? item.compare(0, pattern.size() - 1, pattern, 0,
                               pattern.size() - 1) == 0
                : item == pattern) {
          matched = true;
          break;
        }
      }
      if (!matched) return Value::Bool(false);
    }
    return Value::Bool(true);
  }
  if (fn == "string-prefix-match") {
    if (args.size() != 2) {
      return Error{ErrCode::kInvalidArgument,
                   "string-prefix-match needs two arguments"};
    }
    GA_TRY(std::vector<std::string> bag, EvalBag(args[0], context));
    GA_TRY(std::vector<std::string> prefixes, EvalBag(args[1], context));
    for (const std::string& item : bag) {
      for (const std::string& prefix : prefixes) {
        if (item.compare(0, prefix.size(), prefix) == 0) {
          return Value::Bool(true);
        }
      }
    }
    return Value::Bool(false);
  }
  if (fn == "dn-prefix-match") {
    // Component-boundary DN matching (gsi/dn.h): the policy-language
    // subject semantics, immune to the "/CN=John" vs "/CN=Johnson" raw
    // string-prefix bypass.
    if (args.size() != 2) {
      return Error{ErrCode::kInvalidArgument,
                   "dn-prefix-match needs two arguments"};
    }
    GA_TRY(std::vector<std::string> bag, EvalBag(args[0], context));
    GA_TRY(std::vector<std::string> prefixes, EvalBag(args[1], context));
    for (const std::string& item : bag) {
      for (const std::string& prefix : prefixes) {
        if (gsi::DnStringPrefixMatch(prefix, item)) {
          return Value::Bool(true);
        }
      }
    }
    return Value::Bool(false);
  }
  if (fn == "integer-less-than" || fn == "integer-less-than-or-equal" ||
      fn == "integer-greater-than" || fn == "integer-greater-than-or-equal") {
    GA_TRY(bool result, NumericCompare(fn, args, context));
    return Value::Bool(result);
  }
  return Error{ErrCode::kInvalidArgument, "unknown function: " + fn};
}

}  // namespace

Expected<bool> EvaluateCondition(const Expression& expression,
                                 const RequestContext& context) {
  return EvalBool(expression, context);
}

// ----- target matching -------------------------------------------------

namespace {

bool MatchOne(const Match& match, const RequestContext& context) {
  const std::vector<std::string>* bag =
      context.Bag(match.category, match.attribute_id);
  if (bag == nullptr) return false;
  for (const std::string& item : *bag) {
    if (match.function == "string-equal") {
      if (item == match.value) return true;
    } else if (match.function == "string-prefix-match") {
      if (item.compare(0, match.value.size(), match.value) == 0) return true;
    } else if (match.function == "dn-prefix-match") {
      if (gsi::DnStringPrefixMatch(match.value, item)) return true;
    }
  }
  return false;
}

bool MatchSection(const std::vector<std::vector<Match>>& section,
                  const RequestContext& context) {
  if (section.empty()) return true;  // any
  for (const std::vector<Match>& group : section) {
    bool all = true;
    for (const Match& match : group) {
      if (!MatchOne(match, context)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool MatchTarget(const Target& target, const RequestContext& context) {
  return MatchSection(target.subjects, context) &&
         MatchSection(target.resources, context) &&
         MatchSection(target.actions, context);
}

}  // namespace

XacmlDecision EvaluateRule(const Rule& rule, const RequestContext& context) {
  if (!rule.target.empty() && !MatchTarget(rule.target, context)) {
    return XacmlDecision::kNotApplicable;
  }
  if (rule.condition) {
    auto satisfied = EvaluateCondition(*rule.condition, context);
    if (!satisfied.ok()) return XacmlDecision::kIndeterminate;
    if (!*satisfied) return XacmlDecision::kNotApplicable;
  }
  return rule.effect == Effect::kPermit ? XacmlDecision::kPermit
                                        : XacmlDecision::kDeny;
}

namespace {

template <typename Item, typename Evaluate>
XacmlDecision Combine(Combining combining, const std::vector<Item>& items,
                      const RequestContext& context, Evaluate evaluate) {
  bool saw_permit = false;
  bool saw_deny = false;
  bool saw_indeterminate = false;
  for (const Item& item : items) {
    XacmlDecision decision = evaluate(item, context);
    switch (combining) {
      case Combining::kDenyOverrides:
        if (decision == XacmlDecision::kDeny) return XacmlDecision::kDeny;
        break;
      case Combining::kPermitOverrides:
        if (decision == XacmlDecision::kPermit) return XacmlDecision::kPermit;
        break;
      case Combining::kFirstApplicable:
        if (decision != XacmlDecision::kNotApplicable) return decision;
        continue;
    }
    if (decision == XacmlDecision::kPermit) saw_permit = true;
    if (decision == XacmlDecision::kDeny) saw_deny = true;
    if (decision == XacmlDecision::kIndeterminate) saw_indeterminate = true;
  }
  if (combining == Combining::kFirstApplicable) {
    return XacmlDecision::kNotApplicable;
  }
  if (saw_indeterminate) return XacmlDecision::kIndeterminate;
  if (combining == Combining::kDenyOverrides && saw_permit) {
    return XacmlDecision::kPermit;
  }
  if (combining == Combining::kPermitOverrides && saw_deny) {
    return XacmlDecision::kDeny;
  }
  return XacmlDecision::kNotApplicable;
}

}  // namespace

XacmlDecision EvaluatePolicy(const Policy& policy,
                             const RequestContext& context) {
  if (!policy.target.empty() && !MatchTarget(policy.target, context)) {
    return XacmlDecision::kNotApplicable;
  }
  return Combine(policy.combining, policy.rules, context, EvaluateRule);
}

XacmlDecision EvaluatePolicySet(const PolicySet& policy_set,
                                const RequestContext& context) {
  if (!policy_set.target.empty() && !MatchTarget(policy_set.target, context)) {
    return XacmlDecision::kNotApplicable;
  }
  return Combine(policy_set.combining, policy_set.policies, context,
                 EvaluatePolicy);
}

// ----- XML serialization ------------------------------------------------

namespace {

std::string DesignatorTag(Category category) {
  return std::string{to_string(category)} + "AttributeDesignator";
}

XmlNode ExpressionToXml(const Expression& expression) {
  XmlNode node;
  switch (expression.kind) {
    case Expression::Kind::kLiteral:
      node.name = "AttributeValue";
      node.text = expression.literal;
      return node;
    case Expression::Kind::kDesignator:
      node.name = DesignatorTag(expression.category);
      node.attributes["AttributeId"] = expression.attribute_id;
      return node;
    case Expression::Kind::kApply:
      node.name = "Apply";
      node.attributes["FunctionId"] = expression.function;
      for (const Expression& arg : expression.args) {
        node.children.push_back(ExpressionToXml(arg));
      }
      return node;
  }
  return node;
}

XmlNode SectionToXml(const std::vector<std::vector<Match>>& section,
                     const std::string& plural, const std::string& singular) {
  XmlNode node;
  node.name = plural;
  for (const std::vector<Match>& group : section) {
    XmlNode group_node;
    group_node.name = singular;
    for (const Match& match : group) {
      XmlNode match_node;
      match_node.name = singular + "Match";
      match_node.attributes["MatchId"] = match.function;
      match_node.attributes["AttributeId"] = match.attribute_id;
      match_node.text = match.value;
      group_node.children.push_back(std::move(match_node));
    }
    node.children.push_back(std::move(group_node));
  }
  return node;
}

XmlNode TargetToXml(const Target& target) {
  XmlNode node;
  node.name = "Target";
  if (!target.subjects.empty()) {
    node.children.push_back(SectionToXml(target.subjects, "Subjects", "Subject"));
  }
  if (!target.resources.empty()) {
    node.children.push_back(
        SectionToXml(target.resources, "Resources", "Resource"));
  }
  if (!target.actions.empty()) {
    node.children.push_back(SectionToXml(target.actions, "Actions", "Action"));
  }
  return node;
}

}  // namespace

XmlNode ToXml(const Policy& policy) {
  XmlNode node;
  node.name = "Policy";
  node.attributes["PolicyId"] = policy.id;
  node.attributes["RuleCombiningAlgId"] = std::string{to_string(policy.combining)};
  node.children.push_back(TargetToXml(policy.target));
  for (const Rule& rule : policy.rules) {
    XmlNode rule_node;
    rule_node.name = "Rule";
    rule_node.attributes["RuleId"] = rule.id;
    rule_node.attributes["Effect"] = std::string{to_string(rule.effect)};
    if (!rule.target.empty()) {
      rule_node.children.push_back(TargetToXml(rule.target));
    }
    if (rule.condition) {
      XmlNode condition_node;
      condition_node.name = "Condition";
      condition_node.children.push_back(ExpressionToXml(*rule.condition));
      rule_node.children.push_back(std::move(condition_node));
    }
    node.children.push_back(std::move(rule_node));
  }
  return node;
}

XmlNode ToXml(const PolicySet& policy_set) {
  XmlNode node;
  node.name = "PolicySet";
  node.attributes["PolicySetId"] = policy_set.id;
  node.attributes["PolicyCombiningAlgId"] =
      std::string{to_string(policy_set.combining)};
  node.children.push_back(TargetToXml(policy_set.target));
  for (const Policy& policy : policy_set.policies) {
    node.children.push_back(ToXml(policy));
  }
  return node;
}

// ----- XML parsing --------------------------------------------------------

namespace {

Expected<Expression> ExpressionFromXml(const XmlNode& node) {
  if (node.name == "AttributeValue") {
    return Expression::Literal(node.text);
  }
  if (node.name == "Apply") {
    Expression expression;
    expression.kind = Expression::Kind::kApply;
    expression.function = node.Attr("FunctionId");
    if (expression.function.empty()) {
      return Error{ErrCode::kParseError, "Apply without FunctionId"};
    }
    for (const XmlNode& child : node.children) {
      GA_TRY(Expression arg, ExpressionFromXml(child));
      expression.args.push_back(std::move(arg));
    }
    return expression;
  }
  for (Category category :
       {Category::kSubject, Category::kResource, Category::kAction}) {
    if (node.name == DesignatorTag(category)) {
      std::string attribute_id = node.Attr("AttributeId");
      if (attribute_id.empty()) {
        return Error{ErrCode::kParseError,
                     node.name + " without AttributeId"};
      }
      return Expression::Designator(category, attribute_id);
    }
  }
  return Error{ErrCode::kParseError,
               "unknown expression element <" + node.name + ">"};
}

Expected<std::vector<std::vector<Match>>> SectionFromXml(
    const XmlNode& target, const std::string& plural,
    const std::string& singular, Category category) {
  std::vector<std::vector<Match>> out;
  const XmlNode* section = target.Child(plural);
  if (section == nullptr) return out;
  for (const XmlNode* group : section->Children(singular)) {
    std::vector<Match> matches;
    for (const XmlNode* match_node : group->Children(singular + "Match")) {
      Match match;
      match.function = match_node->Attr("MatchId");
      match.category = category;
      match.attribute_id = match_node->Attr("AttributeId");
      match.value = match_node->text;
      if (match.function != "string-equal" &&
          match.function != "string-prefix-match" &&
          match.function != "dn-prefix-match") {
        return Error{ErrCode::kParseError,
                     "unknown MatchId: " + match.function};
      }
      matches.push_back(std::move(match));
    }
    out.push_back(std::move(matches));
  }
  return out;
}

Expected<Target> TargetFromXml(const XmlNode& node) {
  Target target;
  GA_TRY(target.subjects,
         SectionFromXml(node, "Subjects", "Subject", Category::kSubject));
  GA_TRY(target.resources,
         SectionFromXml(node, "Resources", "Resource", Category::kResource));
  GA_TRY(target.actions,
         SectionFromXml(node, "Actions", "Action", Category::kAction));
  return target;
}

}  // namespace

Expected<Policy> PolicyFromXml(const XmlNode& node) {
  if (node.name != "Policy") {
    return Error{ErrCode::kParseError,
                 "expected <Policy>, got <" + node.name + ">"};
  }
  Policy policy;
  policy.id = node.Attr("PolicyId");
  GA_TRY(policy.combining,
         CombiningFromString(node.Attr("RuleCombiningAlgId", "deny-overrides")));
  if (const XmlNode* target = node.Child("Target"); target != nullptr) {
    GA_TRY(policy.target, TargetFromXml(*target));
  }
  for (const XmlNode* rule_node : node.Children("Rule")) {
    Rule rule;
    rule.id = rule_node->Attr("RuleId");
    std::string effect = rule_node->Attr("Effect");
    if (effect == "Permit") rule.effect = Effect::kPermit;
    else if (effect == "Deny") rule.effect = Effect::kDeny;
    else {
      return Error{ErrCode::kParseError, "bad rule Effect: " + effect};
    }
    if (const XmlNode* target = rule_node->Child("Target"); target != nullptr) {
      GA_TRY(rule.target, TargetFromXml(*target));
    }
    if (const XmlNode* condition = rule_node->Child("Condition");
        condition != nullptr) {
      if (condition->children.size() != 1) {
        return Error{ErrCode::kParseError,
                     "Condition must contain exactly one expression"};
      }
      GA_TRY(Expression expr, ExpressionFromXml(condition->children.front()));
      rule.condition = std::move(expr);
    }
    policy.rules.push_back(std::move(rule));
  }
  return policy;
}

Expected<PolicySet> PolicySetFromXml(const XmlNode& node) {
  if (node.name != "PolicySet") {
    return Error{ErrCode::kParseError,
                 "expected <PolicySet>, got <" + node.name + ">"};
  }
  PolicySet policy_set;
  policy_set.id = node.Attr("PolicySetId");
  GA_TRY(policy_set.combining,
         CombiningFromString(
             node.Attr("PolicyCombiningAlgId", "deny-overrides")));
  if (const XmlNode* target = node.Child("Target"); target != nullptr) {
    GA_TRY(policy_set.target, TargetFromXml(*target));
  }
  for (const XmlNode* policy_node : node.Children("Policy")) {
    GA_TRY(Policy policy, PolicyFromXml(*policy_node));
    policy_set.policies.push_back(std::move(policy));
  }
  return policy_set;
}

Expected<Policy> ParsePolicy(std::string_view xml_text) {
  GA_TRY(XmlNode root, ParseXml(xml_text));
  return PolicyFromXml(root);
}

// ----- bridges -------------------------------------------------------------

RequestContext ContextFromRequest(const core::AuthorizationRequest& request) {
  RequestContext context;
  context.subject[std::string{kSubjectIdAttr}] = {request.subject};
  if (!request.attributes.empty()) {
    context.subject["vo-attribute"] = request.attributes;
  }
  context.action[std::string{kActionIdAttr}] = {request.action};

  rsl::Conjunction effective = request.ToEffectiveRsl();
  for (const rsl::Relation& relation : effective.relations()) {
    if (relation.op != rsl::RelOp::kEq) continue;
    if (relation.attribute == "action") continue;  // lives in the action bag
    auto& bag = context.resource[relation.attribute];
    for (const std::string& value : relation.values) {
      if (!value.empty()) bag.push_back(value);
    }
  }
  return context;
}

namespace {

// Operand for a policy value: `self` becomes the subject-id designator.
Expression ValueOperand(const std::string& value) {
  if (value == core::kSelfValue) {
    return Expression::Designator(Category::kSubject,
                                  std::string{kSubjectIdAttr});
  }
  return Expression::Literal(value);
}

Expression AttributeDesignator(const std::string& attribute) {
  if (attribute == "action") {
    return Expression::Designator(Category::kAction,
                                  std::string{kActionIdAttr});
  }
  return Expression::Designator(Category::kResource, attribute);
}

Expression MakeAnd(std::vector<Expression> terms) {
  if (terms.empty()) return Expression::Apply("true", {});
  if (terms.size() == 1) return std::move(terms.front());
  return Expression::Apply("and", std::move(terms));
}

// Compiles one assertion set into a condition expression, mirroring
// core::PolicyEvaluator::SetSatisfied. `action_only`/`skip_action` select
// the action part or the remainder (for requirement statements).
Expression CompileSet(const rsl::Conjunction& set, bool include_action,
                      bool include_others) {
  std::vector<Expression> terms;

  // '=' relations grouped per attribute (alternation).
  std::set<std::string> eq_done;
  for (const rsl::Relation& relation : set.relations()) {
    const bool is_action = relation.attribute == "action";
    if (is_action && !include_action) continue;
    if (!is_action && !include_others) continue;

    if (relation.op == rsl::RelOp::kEq) {
      if (eq_done.contains(relation.attribute)) continue;
      eq_done.insert(relation.attribute);
      bool allows_absent = false;
      std::vector<Expression> operands;
      operands.push_back(AttributeDesignator(relation.attribute));
      for (const rsl::Relation* r : set.FindAll(relation.attribute)) {
        if (r->op != rsl::RelOp::kEq) continue;
        for (const std::string& value : r->values) {
          if (value == core::kNullValue) {
            allows_absent = true;
          } else {
            operands.push_back(ValueOperand(value));
          }
        }
      }
      Expression designator = operands.front();
      if (operands.size() == 1) {
        // Only NULL was asserted: the attribute must be absent.
        terms.push_back(Expression::Apply("absent", {designator}));
      } else {
        Expression all_in = Expression::Apply("all-in", std::move(operands));
        if (allows_absent) {
          terms.push_back(Expression::Apply(
              "or",
              {Expression::Apply("absent", {designator}), std::move(all_in)}));
        } else {
          terms.push_back(std::move(all_in));
        }
      }
      continue;
    }

    Expression designator = AttributeDesignator(relation.attribute);
    switch (relation.op) {
      case rsl::RelOp::kNeq:
        for (const std::string& value : relation.values) {
          if (value == core::kNullValue) {
            terms.push_back(Expression::Apply("present", {designator}));
          } else {
            terms.push_back(Expression::Apply(
                "none-equal", {designator, ValueOperand(value)}));
          }
        }
        break;
      case rsl::RelOp::kLt:
      case rsl::RelOp::kGt:
      case rsl::RelOp::kLe:
      case rsl::RelOp::kGe: {
        const char* fn = relation.op == rsl::RelOp::kLt
                             ? "integer-less-than"
                         : relation.op == rsl::RelOp::kLe
                             ? "integer-less-than-or-equal"
                         : relation.op == rsl::RelOp::kGt
                             ? "integer-greater-than"
                             : "integer-greater-than-or-equal";
        auto bound = relation.single_value();
        if (!bound || !ToInt(*bound)) {
          // The RSL evaluator treats an unusable bound as unsatisfiable;
          // compile it to a constant false rather than a runtime error.
          terms.push_back(Expression::Apply("false", {}));
        } else {
          terms.push_back(Expression::Apply(
              fn, {designator, Expression::Literal(*bound)}));
        }
        break;
      }
      case rsl::RelOp::kEq:
        break;  // handled above
    }
  }
  return MakeAnd(std::move(terms));
}

}  // namespace

Expected<Policy> TranslateRslPolicy(const core::PolicyDocument& document) {
  Policy policy;
  policy.id = "rsl-translated";
  policy.combining = Combining::kDenyOverrides;

  int statement_index = 0;
  for (const core::PolicyStatement& statement : document.statements()) {
    ++statement_index;
    int set_index = 0;
    for (const rsl::Conjunction& set : statement.assertion_sets) {
      ++set_index;
      Rule rule;
      rule.id = "stmt" + std::to_string(statement_index) + "-set" +
                std::to_string(set_index);
      rule.target.subjects = {{Match{
          "dn-prefix-match", Category::kSubject,
          std::string{kSubjectIdAttr}, statement.subject_prefix}}};
      if (statement.kind == core::StatementKind::kPermission) {
        rule.effect = Effect::kPermit;
        rule.condition = CompileSet(set, /*include_action=*/true,
                                    /*include_others=*/true);
      } else {
        // Requirement: deny when the action part matches but the body
        // does not hold.
        rule.effect = Effect::kDeny;
        Expression action_part = CompileSet(set, /*include_action=*/true,
                                            /*include_others=*/false);
        Expression body = CompileSet(set, /*include_action=*/false,
                                     /*include_others=*/true);
        rule.condition = Expression::Apply(
            "and", {std::move(action_part),
                    Expression::Apply("not", {std::move(body)})});
      }
      policy.rules.push_back(std::move(rule));
    }
  }
  return policy;
}

XacmlPolicySource::XacmlPolicySource(std::string name, Policy policy)
    : name_(std::move(name)), policy_(std::move(policy)) {}

Expected<core::Decision> XacmlPolicySource::Authorize(
    const core::AuthorizationRequest& request) {
  RequestContext context = ContextFromRequest(request);
  XacmlDecision decision = EvaluatePolicy(policy_, context);
  switch (decision) {
    case XacmlDecision::kPermit:
      return core::Decision::Permit("xacml: policy '" + policy_.id +
                                    "' permits");
    case XacmlDecision::kDeny:
      return core::Decision::Deny(
          core::DecisionCode::kDenyNoPermission,
          "xacml: policy '" + policy_.id + "' denies '" + request.action +
              "' for " + request.subject);
    case XacmlDecision::kNotApplicable:
      return core::Decision::Deny(
          core::DecisionCode::kDenyNoApplicableStatement,
          "xacml: no rule applies to " + request.subject + " (default deny)");
    case XacmlDecision::kIndeterminate:
      return Error{ErrCode::kAuthorizationSystemFailure,
                   "xacml: indeterminate result evaluating policy '" +
                       policy_.id + "'"};
  }
  return Error{ErrCode::kInternal, "unreachable"};
}

}  // namespace gridauthz::xacml
