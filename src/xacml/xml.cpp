#include "xacml/xml.h"

#include <cctype>

namespace gridauthz::xacml {

const XmlNode* XmlNode::Child(std::string_view child_name) const {
  for (const XmlNode& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(
    std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& child : children) {
    if (child.name == child_name) out.push_back(&child);
  }
  return out;
}

std::string XmlNode::Attr(std::string_view attr_name,
                          std::string_view fallback) const {
  auto it = attributes.find(std::string{attr_name});
  return it == attributes.end() ? std::string{fallback} : it->second;
}

bool XmlNode::HasAttr(std::string_view attr_name) const {
  return attributes.contains(std::string{attr_name});
}

std::string EscapeXml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  Expected<XmlNode> ParseDocument() {
    SkipProlog();
    GA_TRY(XmlNode root, ParseElement());
    SkipMisc();
    if (pos_ != text_.size()) {
      return Err("trailing content after root element");
    }
    return root;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool SkipComment() {
    if (text_.substr(pos_, 4) == "<!--") {
      std::size_t end = text_.find("-->", pos_ + 4);
      pos_ = end == std::string_view::npos ? text_.size() : end + 3;
      return true;
    }
    return false;
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (!SkipComment()) break;
    }
  }

  void SkipProlog() {
    SkipWhitespace();
    if (text_.substr(pos_, 5) == "<?xml") {
      std::size_t end = text_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? text_.size() : end + 2;
    }
    SkipMisc();
  }

  Error Err(std::string message) const {
    return Error{ErrCode::kParseError,
                 "XML at offset " + std::to_string(pos_) + ": " +
                     std::move(message)};
  }

  Expected<std::string> ParseName() {
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '-' || c == ':' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Err("expected a name");
    return std::string{text_.substr(start, pos_ - start)};
  }

  std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size();) {
      if (raw[i] == '&') {
        if (raw.substr(i, 5) == "&amp;") {
          out += '&';
          i += 5;
          continue;
        }
        if (raw.substr(i, 4) == "&lt;") {
          out += '<';
          i += 4;
          continue;
        }
        if (raw.substr(i, 4) == "&gt;") {
          out += '>';
          i += 4;
          continue;
        }
        if (raw.substr(i, 6) == "&quot;") {
          out += '"';
          i += 6;
          continue;
        }
        if (raw.substr(i, 6) == "&apos;") {
          out += '\'';
          i += 6;
          continue;
        }
      }
      out += raw[i];
      ++i;
    }
    return out;
  }

  Expected<void> ParseAttributes(XmlNode& node) {
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size()) return Err("unterminated start tag");
      char c = text_[pos_];
      if (c == '>' || c == '/' || c == '?') return Ok();
      GA_TRY(std::string name, ParseName());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Err("expected '=' after attribute name '" + name + "'");
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = text_[pos_++];
      std::size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Err("unterminated attribute value");
      }
      node.attributes[name] = DecodeEntities(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
  }

  Expected<XmlNode> ParseElement() {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Err("expected '<'");
    }
    ++pos_;
    XmlNode node;
    GA_TRY(std::string name, ParseName());
    node.name = std::move(name);
    GA_TRY_VOID(ParseAttributes(node));
    if (text_.substr(pos_, 2) == "/>") {
      pos_ += 2;
      return node;
    }
    if (pos_ >= text_.size() || text_[pos_] != '>') {
      return Err("expected '>' to close start tag of <" + node.name + ">");
    }
    ++pos_;

    // Content: text, children, comments, until the matching end tag.
    for (;;) {
      if (pos_ >= text_.size()) {
        return Err("unexpected end of input inside <" + node.name + ">");
      }
      if (SkipComment()) continue;
      if (text_.substr(pos_, 2) == "</") {
        pos_ += 2;
        GA_TRY(std::string end_name, ParseName());
        if (end_name != node.name) {
          return Err("mismatched end tag </" + end_name + "> for <" +
                     node.name + ">");
        }
        SkipWhitespace();
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Err("expected '>' in end tag");
        }
        ++pos_;
        return node;
      }
      if (text_[pos_] == '<') {
        GA_TRY(XmlNode child, ParseElement());
        node.children.push_back(std::move(child));
        continue;
      }
      std::size_t next = text_.find('<', pos_);
      if (next == std::string_view::npos) {
        return Err("unterminated element <" + node.name + ">");
      }
      node.text += DecodeEntities(text_.substr(pos_, next - pos_));
      pos_ = next;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void WriteNode(const XmlNode& node, int depth, std::string& out) {
  std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  out += indent;
  out += '<';
  out += node.name;
  for (const auto& [name, value] : node.attributes) {
    out += ' ';
    out += name;
    out += "=\"";
    out += EscapeXml(value);
    out += '"';
  }
  // Trim the stored text for serialization purposes.
  std::string_view text = node.text;
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  if (node.children.empty() && text.empty()) {
    out += "/>\n";
    return;
  }
  out += '>';
  if (node.children.empty()) {
    out += EscapeXml(text);
    out += "</";
    out += node.name;
    out += ">\n";
    return;
  }
  out += '\n';
  if (!text.empty()) {
    out += indent;
    out += "  ";
    out += EscapeXml(text);
    out += '\n';
  }
  for (const XmlNode& child : node.children) {
    WriteNode(child, depth + 1, out);
  }
  out += indent;
  out += "</";
  out += node.name;
  out += ">\n";
}

}  // namespace

Expected<XmlNode> ParseXml(std::string_view text) {
  return XmlParser{text}.ParseDocument();
}

std::string WriteXml(const XmlNode& root) {
  std::string out;
  WriteNode(root, 0, out);
  return out;
}

}  // namespace gridauthz::xacml
