// An XACML-style policy engine (a compact subset of OASIS XACML 1.0),
// implementing the direction the paper's analysis commits to: "our
// initial experiences show that expressing policies in [RSL] is not
// natural ... languages based on XML, such as XACML, are being
// scrutinized by the Grid security community and are viable candidates"
// (section 6.3).
//
// Subset implemented:
//  * <Policy> with deny-overrides / permit-overrides / first-applicable
//    rule-combining algorithms, and <PolicySet> combining policies;
//  * <Target> with Subjects/Resources/Actions match groups (outer OR of
//    inner AND of matches), matching by string-equal,
//    string-prefix-match, or dn-prefix-match (component-boundary DN
//    semantics, gsi/dn.h) against attribute designators;
//  * <Rule> with Permit/Deny effects and an optional <Condition>
//    expression tree (<Apply>, <AttributeDesignator>, <AttributeValue>);
//  * functions: and, or, not, string-equal, string-not-equal, present,
//    absent, integer-less-than(-or-equal), integer-greater-than(-or-equal),
//    string-prefix-match, dn-prefix-match. Bag semantics: comparisons
//    hold when some
//    element of the left bag relates to the literal (any-of), matching
//    how the RSL evaluator treats multi-valued request attributes.
//  * XML serialization and parsing (round-trips through xml.h).
//
// TranslateRslPolicy compiles the paper's RSL-based PolicyDocument into
// this language: permission statements become Permit rules, requirement
// statements become Deny rules guarding their constraints, combined with
// deny-overrides — so both engines render identical decisions (tested in
// tests/xacml_test.cpp), demonstrating the migration path.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/source.h"
#include "xacml/xml.h"

namespace gridauthz::xacml {

enum class Effect { kPermit, kDeny };
enum class XacmlDecision { kPermit, kDeny, kNotApplicable, kIndeterminate };
enum class Combining { kDenyOverrides, kPermitOverrides, kFirstApplicable };

std::string_view to_string(Effect effect);
std::string_view to_string(XacmlDecision decision);
std::string_view to_string(Combining combining);
Expected<Combining> CombiningFromString(std::string_view text);

// Attribute categories of the request context.
enum class Category { kSubject, kResource, kAction };

std::string_view to_string(Category category);
Expected<Category> CategoryFromString(std::string_view text);

// The request context: bags of attribute values per category.
struct RequestContext {
  std::map<std::string, std::vector<std::string>> subject;
  std::map<std::string, std::vector<std::string>> resource;
  std::map<std::string, std::vector<std::string>> action;

  const std::vector<std::string>* Bag(Category category,
                                      const std::string& attribute_id) const;
};

// Expression tree for <Condition>.
struct Expression {
  enum class Kind { kApply, kDesignator, kLiteral };

  Kind kind = Kind::kLiteral;
  // kApply:
  std::string function;
  std::vector<Expression> args;
  // kDesignator:
  Category category = Category::kResource;
  std::string attribute_id;
  // kLiteral:
  std::string literal;

  static Expression Apply(std::string fn, std::vector<Expression> arguments);
  static Expression Designator(Category category, std::string attribute_id);
  static Expression Literal(std::string value);
};

// One target match: designator `function`-matches `value`.
struct Match {
  std::string function;  // "string-equal", "string-prefix-match", or
                         // "dn-prefix-match"
  Category category = Category::kSubject;
  std::string attribute_id;
  std::string value;
};

// A target section: outer vector = OR, inner vector = AND. Empty = any.
struct Target {
  std::vector<std::vector<Match>> subjects;
  std::vector<std::vector<Match>> resources;
  std::vector<std::vector<Match>> actions;

  bool empty() const {
    return subjects.empty() && resources.empty() && actions.empty();
  }
};

struct Rule {
  std::string id;
  Effect effect = Effect::kDeny;
  Target target;                        // empty = inherit policy target
  std::optional<Expression> condition;  // absent = always true
};

struct Policy {
  std::string id;
  Combining combining = Combining::kDenyOverrides;
  Target target;
  std::vector<Rule> rules;
};

struct PolicySet {
  std::string id;
  Combining combining = Combining::kDenyOverrides;
  Target target;
  std::vector<Policy> policies;
};

// ----- evaluation ----------------------------------------------------

// Evaluates a condition expression to a boolean. Type errors (unknown
// function, non-numeric integer argument) are kInvalidArgument and
// surface as Indeterminate at the rule level.
Expected<bool> EvaluateCondition(const Expression& expression,
                                 const RequestContext& context);

XacmlDecision EvaluateRule(const Rule& rule, const RequestContext& context);
XacmlDecision EvaluatePolicy(const Policy& policy,
                             const RequestContext& context);
XacmlDecision EvaluatePolicySet(const PolicySet& policy_set,
                                const RequestContext& context);

// ----- XML -----------------------------------------------------------

XmlNode ToXml(const Policy& policy);
XmlNode ToXml(const PolicySet& policy_set);
Expected<Policy> PolicyFromXml(const XmlNode& node);
Expected<PolicySet> PolicySetFromXml(const XmlNode& node);
Expected<Policy> ParsePolicy(std::string_view xml_text);

// ----- bridges to the paper's system ----------------------------------

// Standard attribute ids used by the GRAM bridge.
inline constexpr std::string_view kSubjectIdAttr = "subject-id";
inline constexpr std::string_view kActionIdAttr = "action-id";
inline constexpr std::string_view kJobOwnerAttr = "jobowner";

// Builds the request context from a GRAM authorization request: the
// subject DN, the action, and every '='-relation of the effective RSL as
// a resource attribute bag.
RequestContext ContextFromRequest(const core::AuthorizationRequest& request);

// Compiles the RSL-based policy language into an XACML Policy
// (deny-overrides; see the header comment for the mapping).
Expected<Policy> TranslateRslPolicy(const core::PolicyDocument& document);

// A core::PolicySource evaluating an XACML policy, so the XACML engine
// slots behind the GRAM callout like every other backend. NotApplicable
// maps to deny (default deny); Indeterminate maps to an authorization
// system failure.
class XacmlPolicySource final : public core::PolicySource {
 public:
  XacmlPolicySource(std::string name, Policy policy);

  const std::string& name() const override { return name_; }
  Expected<core::Decision> Authorize(
      const core::AuthorizationRequest& request) override;

  const Policy& policy() const { return policy_; }

 private:
  std::string name_;
  Policy policy_;
};

}  // namespace gridauthz::xacml
