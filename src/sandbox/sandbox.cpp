#include "sandbox/sandbox.h"

#include <charconv>

#include "common/logging.h"
#include "common/strings.h"

namespace gridauthz::sandbox {

DynamicAccountPool::DynamicAccountPool(os::AccountRegistry* registry,
                                       std::string prefix, int pool_size)
    : registry_(registry) {
  for (int i = 0; i < pool_size; ++i) {
    std::string name = prefix + std::to_string(100 + i);
    // Pool creation is setup code; collisions indicate a configuration
    // bug and are logged rather than silently ignored.
    if (auto added = registry_->AddDynamic(name, {}, {}); added.ok()) {
      free_accounts_.push_back(std::move(name));
    } else {
      GA_LOG(kWarn, "dynamic-accounts")
          << "could not create pool account: " << added.error();
    }
  }
}

Expected<std::string> DynamicAccountPool::Lease(
    const std::string& grid_identity, std::vector<std::string> groups,
    os::ResourceLimits limits) {
  if (free_accounts_.empty()) {
    return Error{ErrCode::kResourceExhausted, "dynamic account pool empty"};
  }
  std::string account = std::move(free_accounts_.back());
  free_accounts_.pop_back();
  GA_TRY_VOID(registry_->Configure(account, std::move(groups), limits));
  leases_.emplace(account, grid_identity);
  ++total_leases_;
  GA_LOG(kInfo, "dynamic-accounts")
      << "leased account '" << account << "' to " << grid_identity;
  return account;
}

Expected<void> DynamicAccountPool::Release(const std::string& account) {
  auto it = leases_.find(account);
  if (it == leases_.end()) {
    return Error{ErrCode::kNotFound, "account not leased: " + account};
  }
  leases_.erase(it);
  // Reset configuration before recycling.
  GA_TRY_VOID(registry_->Configure(account, {}, {}));
  free_accounts_.push_back(account);
  return Ok();
}

std::optional<std::string> DynamicAccountPool::Holder(
    const std::string& account) const {
  auto it = leases_.find(account);
  if (it == leases_.end()) return std::nullopt;
  return it->second;
}

int DynamicAccountPool::available() const {
  return static_cast<int>(free_accounts_.size());
}

namespace {
std::optional<std::int64_t> ToInt(const std::string& s) {
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}
}  // namespace

SandboxPolicy SandboxFromAssertions(const rsl::Conjunction& assertions) {
  SandboxPolicy policy;
  for (const rsl::Relation& r : assertions.relations()) {
    if (r.attribute == "executable" && r.op == rsl::RelOp::kEq) {
      for (const std::string& v : r.values) policy.allowed_executables.insert(v);
    } else if (r.attribute == "directory" && r.op == rsl::RelOp::kEq) {
      for (const std::string& v : r.values) {
        policy.allowed_directory_prefixes.insert(v);
      }
    } else if (r.attribute == "count") {
      auto v = r.single_value();
      auto n = v ? ToInt(*v) : std::nullopt;
      if (!n) continue;
      switch (r.op) {
        case rsl::RelOp::kLt:
          policy.max_count = static_cast<int>(*n - 1);
          break;
        case rsl::RelOp::kLe:
        case rsl::RelOp::kEq:
          policy.max_count = static_cast<int>(*n);
          break;
        default:
          break;
      }
    } else if (r.attribute == "maxtime") {
      auto v = r.single_value();
      auto n = v ? ToInt(*v) : std::nullopt;
      if (!n) continue;
      if (r.op == rsl::RelOp::kLt) policy.max_wall_time = *n - 1;
      if (r.op == rsl::RelOp::kLe || r.op == rsl::RelOp::kEq) {
        policy.max_wall_time = *n;
      }
    } else if (r.attribute == "maxmemory") {
      auto v = r.single_value();
      auto n = v ? ToInt(*v) : std::nullopt;
      if (!n) continue;
      if (r.op == rsl::RelOp::kLt) policy.max_memory_mb = *n - 1;
      if (r.op == rsl::RelOp::kLe || r.op == rsl::RelOp::kEq) {
        policy.max_memory_mb = *n;
      }
    }
  }
  return policy;
}

Sandbox::Sandbox(SandboxPolicy policy) : policy_(std::move(policy)) {}

Expected<os::JobSpec> Sandbox::Apply(const os::JobSpec& spec) const {
  if (!policy_.allowed_executables.empty() &&
      !policy_.allowed_executables.contains(spec.executable)) {
    return Error{ErrCode::kPermissionDenied,
                 "sandbox: executable '" + spec.executable + "' not allowed"};
  }
  if (!policy_.allowed_directory_prefixes.empty()) {
    bool allowed = false;
    for (const std::string& prefix : policy_.allowed_directory_prefixes) {
      if (strings::StartsWith(spec.directory, prefix)) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      return Error{ErrCode::kPermissionDenied,
                   "sandbox: directory '" + spec.directory + "' not allowed"};
    }
  }
  if (policy_.max_count && spec.count > *policy_.max_count) {
    return Error{ErrCode::kPermissionDenied,
                 "sandbox: count " + std::to_string(spec.count) +
                     " exceeds sandbox cap " + std::to_string(*policy_.max_count)};
  }
  os::JobSpec tightened = spec;
  if (policy_.max_memory_mb && spec.memory_mb > *policy_.max_memory_mb) {
    return Error{ErrCode::kPermissionDenied,
                 "sandbox: memory " + std::to_string(spec.memory_mb) +
                     " MB exceeds sandbox cap"};
  }
  if (policy_.max_wall_time) {
    // Continuous enforcement: the scheduler kills the job at the cap even
    // if the request claimed a shorter duration.
    if (!tightened.max_wall_time ||
        *tightened.max_wall_time > *policy_.max_wall_time) {
      tightened.max_wall_time = *policy_.max_wall_time;
    }
  }
  return tightened;
}

}  // namespace gridauthz::sandbox
