// Enforcement mechanisms from the paper's analysis (section 6.1):
//
//  * DYNAMIC ACCOUNTS — "accounts created and configured on the fly by a
//    resource management facility", enabling jobs for users with no static
//    account and per-request account configuration (group membership,
//    limits) instead of a static user configuration.
//  * SANDBOXES — "an environment that imposes restrictions on resource
//    usage"; here, per-job restrictions derived from the fine-grain policy
//    and enforced continuously by the (simulated) operating system,
//    complementing the gateway PEP which only decides at request time.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "os/accounts.h"
#include "os/scheduler.h"
#include "rsl/rsl.h"

namespace gridauthz::sandbox {

// A pool of recyclable local accounts leased to Grid identities on
// demand and configured per-request.
class DynamicAccountPool {
 public:
  // Creates `pool_size` dynamic accounts named `<prefix>NNN` in
  // `registry`.
  DynamicAccountPool(os::AccountRegistry* registry, std::string prefix,
                     int pool_size);

  // Leases an account for `grid_identity`, configured with the given
  // groups and limits. kResourceExhausted when the pool is empty.
  Expected<std::string> Lease(const std::string& grid_identity,
                              std::vector<std::string> groups,
                              os::ResourceLimits limits);

  // Returns the account to the pool (resetting its configuration).
  Expected<void> Release(const std::string& account);

  // The Grid identity currently holding `account`, if leased.
  std::optional<std::string> Holder(const std::string& account) const;

  int available() const;
  int in_use() const { return static_cast<int>(leases_.size()); }
  std::uint64_t total_leases() const { return total_leases_; }

 private:
  os::AccountRegistry* registry_;
  std::vector<std::string> free_accounts_;
  std::map<std::string, std::string> leases_;  // account -> grid identity
  std::uint64_t total_leases_ = 0;
};

// Restrictions a sandbox imposes on one job.
struct SandboxPolicy {
  std::optional<Duration> max_wall_time;
  std::optional<std::int64_t> max_memory_mb;
  std::optional<int> max_count;
  // Empty set = any executable / directory allowed.
  std::set<std::string> allowed_executables;
  std::set<std::string> allowed_directory_prefixes;
};

// Derives a sandbox from a policy assertion set: "(executable = test1)"
// whitelists the executable, "(count < 4)" caps CPUs, "(maxtime <= 600)"
// caps wall time, "(directory = /sandbox/test)" whitelists the directory.
// This is how the request-time fine-grain decision is carried into
// continuous enforcement.
SandboxPolicy SandboxFromAssertions(const rsl::Conjunction& assertions);

class Sandbox {
 public:
  explicit Sandbox(SandboxPolicy policy);

  const SandboxPolicy& policy() const { return policy_; }

  // Checks a job spec against the sandbox; returns the (possibly
  // tightened) spec to submit, or kPermissionDenied naming the violated
  // restriction. Tightening: wall/memory caps are applied as enforcement
  // limits so the scheduler kills violators at runtime.
  Expected<os::JobSpec> Apply(const os::JobSpec& spec) const;

 private:
  SandboxPolicy policy_;
};

}  // namespace gridauthz::sandbox
