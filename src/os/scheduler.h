// SimScheduler: the local resource manager (the "LSF, PBS" of section 4.2)
// as a deterministic discrete-time simulator. The Job Manager Instance
// submits jobs here, monitors their state transitions, and relays
// management requests (cancel / suspend / resume / priority signals).
//
// The scheduler enforces exactly what a local job-control system can
// enforce: per-account limits and per-job wall/cpu limits tied to the
// *local account* the job runs under — not to the Grid credential — which
// is the enforcement gap the paper analyzes (section 6.1).
//
// Time model: the scheduler owns a simulated clock starting at
// `start_time`; Advance(seconds) dispatches pending jobs, accrues work on
// active jobs, completes finished jobs, and enforces limits, stepping
// event-to-event for efficiency.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "os/accounts.h"

namespace gridauthz::os {

using LocalJobId = std::uint64_t;

enum class JobState {
  kPending,    // queued, waiting for CPU slots
  kActive,     // running
  kSuspended,  // suspended by a management request
  kDone,       // completed normally
  kFailed,     // killed by limit enforcement or failed at dispatch
  kCancelled,  // cancelled by a management request
};

std::string_view to_string(JobState state);
bool IsTerminal(JobState state);

// What the submitter asks for; mirrors the RSL attributes GRAM forwards.
struct JobSpec {
  std::string executable;
  std::string directory;
  std::vector<std::string> arguments;
  int count = 1;                 // CPUs
  Duration wall_duration = 10;   // simulated run length, seconds
  std::int64_t memory_mb = 64;
  int priority = 0;              // larger runs first
  std::string queue;             // empty = default queue
  std::optional<Duration> max_wall_time;  // enforcement limit, seconds
};

struct JobRecord {
  LocalJobId id = 0;
  std::string account;
  JobSpec spec;
  JobState state = JobState::kPending;
  TimePoint submit_time = 0;
  std::optional<TimePoint> start_time;
  std::optional<TimePoint> end_time;
  Duration remaining = 0;        // wall seconds of work left
  Duration consumed_wall = 0;    // wall seconds spent active
  std::int64_t consumed_cpu_seconds = 0;  // wall * count
  std::string failure_reason;
};

struct QueueConfig {
  std::string name;
  int priority_boost = 0;  // added to job priority while queued
};

struct SchedulerConfig {
  int total_cpu_slots = 16;
  std::vector<QueueConfig> queues = {{"default", 0}};
};

// Per-account accounting, the basis for VO allocation reporting.
struct AccountUsage {
  std::int64_t cpu_seconds = 0;
  int jobs_submitted = 0;
  int jobs_completed = 0;
  int jobs_failed = 0;
};

// Thread-safe: every mutating or reading entry point takes one coarse
// recursive lock, so the server front end (gram/server.h) can drive
// Submit/Status/Cancel/Suspend/Resume from concurrent worker threads
// while tests advance simulated time. The mutex is recursive because
// state listeners run with the lock held (they fire mid-transition,
// inside Advance/Cancel loops) and client callbacks occasionally call
// straight back into the scheduler on the same thread. Listeners must
// not block on other threads that touch the scheduler.
class SimScheduler {
 public:
  using StateListener =
      std::function<void(const JobRecord&, JobState previous)>;

  SimScheduler(SchedulerConfig config, const AccountRegistry* accounts,
               TimePoint start_time = 0);

  // Submits a job under `account`. Validates the account exists, the queue
  // is configured, and static per-account limits (max cpus per job,
  // memory, max concurrent jobs) are respected. Dispatch happens on
  // Advance().
  Expected<LocalJobId> Submit(const std::string& account, JobSpec spec);

  Expected<void> Cancel(LocalJobId id);
  Expected<void> Suspend(LocalJobId id);
  Expected<void> Resume(LocalJobId id);
  Expected<void> SetPriority(LocalJobId id, int priority);

  Expected<JobRecord> Status(LocalJobId id) const;
  std::vector<JobRecord> Jobs() const;

  // Advances simulated time by `seconds`.
  void Advance(Duration seconds);

  // Advances until every job is terminal or `max_seconds` elapses;
  // returns the simulated seconds consumed.
  Duration DrainAll(Duration max_seconds = 1'000'000);

  TimePoint now() const { return now_.load(std::memory_order_relaxed); }
  const AccountRegistry* accounts() const { return accounts_; }
  int free_slots() const {
    return config_.total_cpu_slots - used_slots();
  }
  int used_slots() const {
    return used_slots_.load(std::memory_order_relaxed);
  }
  bool AllTerminal() const;

  AccountUsage Usage(const std::string& account) const;

  // Registers a listener invoked on every job state transition.
  void AddStateListener(StateListener listener);

  bool HasQueue(const std::string& name) const;

 private:
  // The *Locked helpers assume mu_ is held by the caller.
  JobRecord* FindJob(LocalJobId id);
  const JobRecord* FindJob(LocalJobId id) const;
  void Transition(JobRecord& job, JobState next, std::string reason = "");
  void ReleaseSlots(const JobRecord& job);
  void DispatchPending();
  int EffectivePriority(const JobRecord& job) const;
  // Seconds until the next completion or limit event among active jobs,
  // capped at `cap`; `cap` if there is none sooner.
  Duration NextEventDelta(Duration cap) const;
  void AccrueWork(Duration seconds);
  void AdvanceLocked(Duration seconds);
  bool AllTerminalLocked() const;

  mutable std::recursive_mutex mu_;
  SchedulerConfig config_;
  const AccountRegistry* accounts_;
  std::map<LocalJobId, JobRecord> jobs_;
  std::vector<LocalJobId> pending_order_;
  LocalJobId next_id_ = 1;
  // Atomic so the inline accessors stay lock-free for observers; all
  // writes happen under mu_.
  std::atomic<int> used_slots_{0};
  std::atomic<TimePoint> now_;
  std::map<std::string, AccountUsage> usage_;
  std::vector<StateListener> listeners_;
};

}  // namespace gridauthz::os
