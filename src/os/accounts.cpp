#include "os/accounts.h"

#include <algorithm>

namespace gridauthz::os {

Expected<void> AccountRegistry::Add(const std::string& name,
                                    std::vector<std::string> groups,
                                    ResourceLimits limits) {
  return AddImpl(name, std::move(groups), limits, /*dynamic=*/false);
}

Expected<void> AccountRegistry::AddDynamic(const std::string& name,
                                           std::vector<std::string> groups,
                                           ResourceLimits limits) {
  return AddImpl(name, std::move(groups), limits, /*dynamic=*/true);
}

Expected<void> AccountRegistry::AddImpl(const std::string& name,
                                        std::vector<std::string> groups,
                                        ResourceLimits limits, bool dynamic) {
  if (name.empty()) {
    return Error{ErrCode::kInvalidArgument, "empty account name"};
  }
  if (accounts_.contains(name)) {
    return Error{ErrCode::kAlreadyExists, "account exists: " + name};
  }
  LocalAccount account;
  account.name = name;
  account.uid = next_uid_++;
  account.groups = std::move(groups);
  account.limits = limits;
  account.dynamic = dynamic;
  accounts_.emplace(name, std::move(account));
  return Ok();
}

Expected<void> AccountRegistry::Remove(const std::string& name) {
  if (accounts_.erase(name) == 0) {
    return Error{ErrCode::kNotFound, "no such account: " + name};
  }
  return Ok();
}

bool AccountRegistry::Exists(const std::string& name) const {
  return accounts_.contains(name);
}

Expected<const LocalAccount*> AccountRegistry::Lookup(
    const std::string& name) const {
  auto it = accounts_.find(name);
  if (it == accounts_.end()) {
    return Error{ErrCode::kNotFound, "no such account: " + name};
  }
  return &it->second;
}

Expected<void> AccountRegistry::Configure(const std::string& name,
                                          std::vector<std::string> groups,
                                          ResourceLimits limits) {
  auto it = accounts_.find(name);
  if (it == accounts_.end()) {
    return Error{ErrCode::kNotFound, "no such account: " + name};
  }
  it->second.groups = std::move(groups);
  it->second.limits = limits;
  return Ok();
}

std::vector<std::string> AccountRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(accounts_.size());
  for (const auto& [name, account] : accounts_) out.push_back(name);
  return out;
}

}  // namespace gridauthz::os
