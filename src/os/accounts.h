// Local Unix-style accounts: the enforcement vehicle stock GT2 relies on
// ("enforcement is implemented chiefly through the medium of privileges
// tied to a statically configured local account", section 4.3). Accounts
// carry group membership and static resource limits; the scheduler
// enforces the limits, reproducing the paper's point that account-based
// enforcement is coarse-grained.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace gridauthz::os {

// -1 means unlimited.
struct ResourceLimits {
  int max_concurrent_jobs = -1;
  int max_cpus_per_job = -1;
  std::int64_t max_memory_mb = -1;
  // Aggregate cpu-second quota across ALL of the account's jobs — the
  // coarse, account-level enforcement granularity of section 4.3.
  std::int64_t max_cpu_seconds = -1;
  // Highest scheduler priority this account may request. The GT2 Job
  // Manager runs with the job initiator's local credential, so even a
  // VO-authorized manager "may not apply their higher resource rights to,
  // for example, raise the job's priority" (section 6.2) — this field is
  // what caps them. -1 = unlimited.
  int max_priority = -1;

  friend bool operator==(const ResourceLimits&, const ResourceLimits&) = default;
};

struct LocalAccount {
  std::string name;
  int uid = 0;
  std::vector<std::string> groups;
  ResourceLimits limits;
  // Dynamic accounts (section 6.1) are created on the fly by the resource
  // management facility and recycled afterwards.
  bool dynamic = false;

  bool InGroup(const std::string& group) const {
    return std::find(groups.begin(), groups.end(), group) != groups.end();
  }
};

class AccountRegistry {
 public:
  // Adds a static account; uid assigned automatically.
  Expected<void> Add(const std::string& name,
                     std::vector<std::string> groups = {},
                     ResourceLimits limits = {});
  // Adds a dynamic account (marks it recyclable).
  Expected<void> AddDynamic(const std::string& name,
                            std::vector<std::string> groups,
                            ResourceLimits limits);
  Expected<void> Remove(const std::string& name);

  bool Exists(const std::string& name) const;
  Expected<const LocalAccount*> Lookup(const std::string& name) const;

  // Reconfigures an account in place (dynamic-account configuration:
  // group membership and limits tailored to one request).
  Expected<void> Configure(const std::string& name,
                           std::vector<std::string> groups,
                           ResourceLimits limits);

  std::size_t size() const { return accounts_.size(); }
  std::vector<std::string> names() const;

 private:
  Expected<void> AddImpl(const std::string& name,
                         std::vector<std::string> groups,
                         ResourceLimits limits, bool dynamic);

  std::map<std::string, LocalAccount> accounts_;
  int next_uid_ = 1000;
};

}  // namespace gridauthz::os
