#include "os/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace gridauthz::os {

std::string_view to_string(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "PENDING";
    case JobState::kActive:
      return "ACTIVE";
    case JobState::kSuspended:
      return "SUSPENDED";
    case JobState::kDone:
      return "DONE";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "?";
}

bool IsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

SimScheduler::SimScheduler(SchedulerConfig config,
                           const AccountRegistry* accounts,
                           TimePoint start_time)
    : config_(std::move(config)), accounts_(accounts), now_(start_time) {
  if (config_.queues.empty()) {
    config_.queues.push_back(QueueConfig{"default", 0});
  }
}

bool SimScheduler::HasQueue(const std::string& name) const {
  if (name.empty()) return true;
  return std::any_of(config_.queues.begin(), config_.queues.end(),
                     [&](const QueueConfig& q) { return q.name == name; });
}

Expected<LocalJobId> SimScheduler::Submit(const std::string& account,
                                          JobSpec spec) {
  std::lock_guard lock(mu_);
  GA_TRY(const LocalAccount* acct, accounts_->Lookup(account));
  if (spec.count < 1) {
    return Error{ErrCode::kInvalidArgument, "job count must be >= 1"};
  }
  if (spec.count > config_.total_cpu_slots) {
    return Error{ErrCode::kResourceExhausted,
                 "job requests " + std::to_string(spec.count) +
                     " cpus but the machine has " +
                     std::to_string(config_.total_cpu_slots)};
  }
  if (!HasQueue(spec.queue)) {
    return Error{ErrCode::kInvalidArgument, "no such queue: " + spec.queue};
  }
  const ResourceLimits& limits = acct->limits;
  if (limits.max_cpus_per_job >= 0 && spec.count > limits.max_cpus_per_job) {
    return Error{ErrCode::kResourceExhausted,
                 "account " + account + " limited to " +
                     std::to_string(limits.max_cpus_per_job) + " cpus per job"};
  }
  if (limits.max_memory_mb >= 0 && spec.memory_mb > limits.max_memory_mb) {
    return Error{ErrCode::kResourceExhausted,
                 "account " + account + " limited to " +
                     std::to_string(limits.max_memory_mb) + " MB"};
  }
  if (limits.max_concurrent_jobs >= 0) {
    int live = 0;
    for (const auto& [id, job] : jobs_) {
      if (job.account == account && !IsTerminal(job.state)) ++live;
    }
    if (live >= limits.max_concurrent_jobs) {
      return Error{ErrCode::kResourceExhausted,
                   "account " + account + " at its concurrent-job limit (" +
                       std::to_string(limits.max_concurrent_jobs) + ")"};
    }
  }

  JobRecord job;
  job.id = next_id_++;
  job.account = account;
  job.spec = std::move(spec);
  job.state = JobState::kPending;
  job.submit_time = now_;
  job.remaining = job.spec.wall_duration;
  LocalJobId id = job.id;
  pending_order_.push_back(id);
  usage_[account].jobs_submitted++;
  jobs_.emplace(id, std::move(job));
  GA_LOG(kDebug, "lrm") << "job " << id << " submitted by account " << account;
  DispatchPending();
  return id;
}

JobRecord* SimScheduler::FindJob(LocalJobId id) {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const JobRecord* SimScheduler::FindJob(LocalJobId id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

void SimScheduler::Transition(JobRecord& job, JobState next,
                              std::string reason) {
  JobState previous = job.state;
  if (previous == next) return;
  job.state = next;
  if (!reason.empty()) job.failure_reason = std::move(reason);
  if (next == JobState::kActive && !job.start_time) job.start_time = now_;
  if (IsTerminal(next)) {
    job.end_time = now_;
    if (next == JobState::kDone) usage_[job.account].jobs_completed++;
    if (next == JobState::kFailed) usage_[job.account].jobs_failed++;
  }
  GA_LOG(kDebug, "lrm") << "job " << job.id << ": " << to_string(previous)
                        << " -> " << to_string(next)
                        << (job.failure_reason.empty()
                                ? ""
                                : " (" + job.failure_reason + ")");
  for (const auto& listener : listeners_) listener(job, previous);
}

void SimScheduler::ReleaseSlots(const JobRecord& job) {
  used_slots_.fetch_sub(job.spec.count, std::memory_order_relaxed);
}

Expected<void> SimScheduler::Cancel(LocalJobId id) {
  std::lock_guard lock(mu_);
  JobRecord* job = FindJob(id);
  if (job == nullptr) {
    return Error{ErrCode::kNotFound, "no such job: " + std::to_string(id)};
  }
  if (IsTerminal(job->state)) {
    return Error{ErrCode::kFailedPrecondition,
                 "job " + std::to_string(id) + " already terminal"};
  }
  if (job->state == JobState::kActive) ReleaseSlots(*job);
  std::erase(pending_order_, id);
  Transition(*job, JobState::kCancelled);
  DispatchPending();
  return Ok();
}

Expected<void> SimScheduler::Suspend(LocalJobId id) {
  std::lock_guard lock(mu_);
  JobRecord* job = FindJob(id);
  if (job == nullptr) {
    return Error{ErrCode::kNotFound, "no such job: " + std::to_string(id)};
  }
  if (job->state != JobState::kActive) {
    return Error{ErrCode::kFailedPrecondition,
                 "job " + std::to_string(id) + " is not active"};
  }
  ReleaseSlots(*job);
  Transition(*job, JobState::kSuspended);
  DispatchPending();
  return Ok();
}

Expected<void> SimScheduler::Resume(LocalJobId id) {
  std::lock_guard lock(mu_);
  JobRecord* job = FindJob(id);
  if (job == nullptr) {
    return Error{ErrCode::kNotFound, "no such job: " + std::to_string(id)};
  }
  if (job->state != JobState::kSuspended) {
    return Error{ErrCode::kFailedPrecondition,
                 "job " + std::to_string(id) + " is not suspended"};
  }
  // Back to the queue; it resumes when slots free up.
  Transition(*job, JobState::kPending);
  pending_order_.push_back(id);
  DispatchPending();
  return Ok();
}

Expected<void> SimScheduler::SetPriority(LocalJobId id, int priority) {
  std::lock_guard lock(mu_);
  JobRecord* job = FindJob(id);
  if (job == nullptr) {
    return Error{ErrCode::kNotFound, "no such job: " + std::to_string(id)};
  }
  if (IsTerminal(job->state)) {
    return Error{ErrCode::kFailedPrecondition,
                 "job " + std::to_string(id) + " already terminal"};
  }
  job->spec.priority = priority;
  return Ok();
}

Expected<JobRecord> SimScheduler::Status(LocalJobId id) const {
  std::lock_guard lock(mu_);
  const JobRecord* job = FindJob(id);
  if (job == nullptr) {
    return Error{ErrCode::kNotFound, "no such job: " + std::to_string(id)};
  }
  return *job;
}

std::vector<JobRecord> SimScheduler::Jobs() const {
  std::lock_guard lock(mu_);
  std::vector<JobRecord> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job);
  return out;
}

int SimScheduler::EffectivePriority(const JobRecord& job) const {
  int boost = 0;
  for (const QueueConfig& q : config_.queues) {
    if (q.name == job.spec.queue) {
      boost = q.priority_boost;
      break;
    }
  }
  return job.spec.priority + boost;
}

void SimScheduler::DispatchPending() {
  // Highest effective priority first; FIFO within a priority level.
  std::stable_sort(pending_order_.begin(), pending_order_.end(),
                   [this](LocalJobId a, LocalJobId b) {
                     const JobRecord* ja = FindJob(a);
                     const JobRecord* jb = FindJob(b);
                     return EffectivePriority(*ja) > EffectivePriority(*jb);
                   });
  std::vector<LocalJobId> still_pending;
  for (LocalJobId id : pending_order_) {
    JobRecord* job = FindJob(id);
    if (job == nullptr || job->state != JobState::kPending) continue;
    if (job->spec.count <= free_slots()) {
      used_slots_.fetch_add(job->spec.count, std::memory_order_relaxed);
      Transition(*job, JobState::kActive);
    } else {
      still_pending.push_back(id);
    }
  }
  pending_order_ = std::move(still_pending);
}

Duration SimScheduler::NextEventDelta(Duration cap) const {
  Duration next = cap;
  // Aggregate cpu-second accrual rate per account (for quota events).
  std::map<std::string, std::int64_t> account_rate;
  for (const auto& [id, job] : jobs_) {
    if (job.state != JobState::kActive) continue;
    account_rate[job.account] += job.spec.count;
    next = std::min(next, job.remaining);
    if (job.spec.max_wall_time) {
      Duration until_limit = *job.spec.max_wall_time - job.consumed_wall;
      next = std::min(next, std::max<Duration>(until_limit, 1));
    }
  }
  for (const auto& [account, rate] : account_rate) {
    const auto acct = accounts_->Lookup(account);
    if (!acct.ok() || (*acct)->limits.max_cpu_seconds < 0 || rate <= 0) {
      continue;
    }
    auto usage_it = usage_.find(account);
    std::int64_t used =
        usage_it == usage_.end() ? 0 : usage_it->second.cpu_seconds;
    std::int64_t until_cpu =
        ((*acct)->limits.max_cpu_seconds - used + rate - 1) / rate;
    next = std::min(next, std::max<Duration>(until_cpu, 1));
  }
  return std::max<Duration>(next, 1);
}

void SimScheduler::AccrueWork(Duration seconds) {
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kActive) continue;
    job.remaining -= seconds;
    job.consumed_wall += seconds;
    job.consumed_cpu_seconds += seconds * job.spec.count;
    usage_[job.account].cpu_seconds += seconds * job.spec.count;
  }
  // Completion and limit enforcement after accrual. Account cpu-second
  // quotas are COARSE: they aggregate across every job of the account, so
  // exceeding the quota kills jobs regardless of their individual
  // behaviour — exactly the account-level enforcement granularity the
  // paper criticizes (section 4.3, shortcoming 3).
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kActive) continue;
    const auto acct = accounts_->Lookup(job.account);
    bool over_wall = job.spec.max_wall_time &&
                     job.consumed_wall >= *job.spec.max_wall_time &&
                     job.remaining > 0;
    bool over_cpu = acct.ok() && (*acct)->limits.max_cpu_seconds >= 0 &&
                    usage_[job.account].cpu_seconds >=
                        (*acct)->limits.max_cpu_seconds &&
                    job.remaining > 0;
    if (over_wall) {
      ReleaseSlots(job);
      Transition(job, JobState::kFailed, "wall-time limit exceeded");
    } else if (over_cpu) {
      ReleaseSlots(job);
      Transition(job, JobState::kFailed, "account cpu-second limit exceeded");
    } else if (job.remaining <= 0) {
      ReleaseSlots(job);
      Transition(job, JobState::kDone);
    }
  }
}

void SimScheduler::AdvanceLocked(Duration seconds) {
  Duration left = seconds;
  while (left > 0) {
    DispatchPending();
    Duration step = NextEventDelta(left);
    step = std::min(step, left);
    now_.fetch_add(step, std::memory_order_relaxed);
    AccrueWork(step);
    left -= step;
  }
  DispatchPending();
}

void SimScheduler::Advance(Duration seconds) {
  std::lock_guard lock(mu_);
  AdvanceLocked(seconds);
}

bool SimScheduler::AllTerminalLocked() const {
  return std::all_of(jobs_.begin(), jobs_.end(), [](const auto& entry) {
    return IsTerminal(entry.second.state);
  });
}

bool SimScheduler::AllTerminal() const {
  std::lock_guard lock(mu_);
  return AllTerminalLocked();
}

Duration SimScheduler::DrainAll(Duration max_seconds) {
  std::lock_guard lock(mu_);
  Duration consumed = 0;
  while (consumed < max_seconds && !AllTerminalLocked()) {
    // Suspended jobs never finish on their own; they do not count as
    // drainable work.
    bool progressing = false;
    for (const auto& [id, job] : jobs_) {
      if (job.state == JobState::kActive || job.state == JobState::kPending) {
        progressing = true;
        break;
      }
    }
    if (!progressing) break;
    Duration step = NextEventDelta(max_seconds - consumed);
    AdvanceLocked(step);
    consumed += step;
  }
  return consumed;
}

AccountUsage SimScheduler::Usage(const std::string& account) const {
  std::lock_guard lock(mu_);
  auto it = usage_.find(account);
  return it == usage_.end() ? AccountUsage{} : it->second;
}

void SimScheduler::AddStateListener(StateListener listener) {
  std::lock_guard lock(mu_);
  listeners_.push_back(std::move(listener));
}

}  // namespace gridauthz::os
