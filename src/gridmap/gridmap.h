// The grid-mapfile: GT2's access-control list and identity-mapping policy
// (section 4.1). Each line maps a quoted Grid DN to one or more local
// accounts; presence in the file is what authorizes a user at the
// Gatekeeper in stock GT2 (the "coarse-grained" authorization the paper
// extends).
//
//   "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu" boliu,guest
//   "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" keahey
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "gsi/dn.h"

namespace gridauthz::gridmap {

struct MapEntry {
  gsi::DistinguishedName subject;
  std::vector<std::string> accounts;  // first account is the default
};

class GridMap {
 public:
  // Parses grid-mapfile text. Lines are `"DN" account[,account...]`;
  // '#' starts a comment. Duplicate subjects are rejected.
  static Expected<GridMap> Parse(std::string_view text);

  // Builds programmatically.
  Expected<void> Add(const gsi::DistinguishedName& subject,
                     std::vector<std::string> accounts);

  bool Contains(const gsi::DistinguishedName& subject) const;

  // The default (first) local account for `subject`;
  // kAuthorizationDenied if the subject is not listed — this is exactly
  // the stock GT2 Gatekeeper authorization failure.
  Expected<std::string> DefaultAccount(const gsi::DistinguishedName& subject) const;

  // All accounts the subject may map to.
  Expected<std::vector<std::string>> Accounts(
      const gsi::DistinguishedName& subject) const;

  // True if `subject` may map to `account`.
  bool Allows(const gsi::DistinguishedName& subject,
              const std::string& account) const;

  std::size_t size() const { return entries_.size(); }

  // Serializes back to grid-mapfile text.
  std::string ToString() const;

 private:
  std::map<std::string, MapEntry> entries_;  // keyed by subject DN string
};

}  // namespace gridauthz::gridmap
