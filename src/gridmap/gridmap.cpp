#include "gridmap/gridmap.h"

#include <algorithm>

#include "common/strings.h"

namespace gridauthz::gridmap {

Expected<GridMap> GridMap::Parse(std::string_view text) {
  GridMap map;
  int line_number = 0;
  for (const std::string& raw : strings::Lines(text)) {
    ++line_number;
    std::string_view line = strings::Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line.front() != '"') {
      return Error{ErrCode::kParseError,
                   "grid-mapfile line " + std::to_string(line_number) +
                       ": subject DN must be quoted"};
    }
    std::size_t close = line.find('"', 1);
    if (close == std::string_view::npos) {
      return Error{ErrCode::kParseError,
                   "grid-mapfile line " + std::to_string(line_number) +
                       ": unterminated quoted DN"};
    }
    std::string_view dn_text = line.substr(1, close - 1);
    GA_TRY(gsi::DistinguishedName subject, gsi::DistinguishedName::Parse(dn_text));
    std::vector<std::string> accounts =
        strings::Split(line.substr(close + 1), ',');
    if (accounts.empty()) {
      return Error{ErrCode::kParseError,
                   "grid-mapfile line " + std::to_string(line_number) +
                       ": no local accounts for " + subject.str()};
    }
    GA_TRY_VOID(map.Add(subject, std::move(accounts)));
  }
  return map;
}

Expected<void> GridMap::Add(const gsi::DistinguishedName& subject,
                            std::vector<std::string> accounts) {
  if (accounts.empty()) {
    return Error{ErrCode::kInvalidArgument,
                 "no accounts for subject " + subject.str()};
  }
  auto [it, inserted] =
      entries_.emplace(subject.str(), MapEntry{subject, std::move(accounts)});
  if (!inserted) {
    return Error{ErrCode::kAlreadyExists,
                 "duplicate grid-mapfile subject: " + subject.str()};
  }
  return Ok();
}

bool GridMap::Contains(const gsi::DistinguishedName& subject) const {
  return entries_.contains(subject.str());
}

Expected<std::string> GridMap::DefaultAccount(
    const gsi::DistinguishedName& subject) const {
  auto it = entries_.find(subject.str());
  if (it == entries_.end()) {
    return Error{ErrCode::kAuthorizationDenied,
                 "subject not in grid-mapfile: " + subject.str()};
  }
  return it->second.accounts.front();
}

Expected<std::vector<std::string>> GridMap::Accounts(
    const gsi::DistinguishedName& subject) const {
  auto it = entries_.find(subject.str());
  if (it == entries_.end()) {
    return Error{ErrCode::kAuthorizationDenied,
                 "subject not in grid-mapfile: " + subject.str()};
  }
  return it->second.accounts;
}

bool GridMap::Allows(const gsi::DistinguishedName& subject,
                     const std::string& account) const {
  auto it = entries_.find(subject.str());
  if (it == entries_.end()) return false;
  const auto& accounts = it->second.accounts;
  return std::find(accounts.begin(), accounts.end(), account) != accounts.end();
}

std::string GridMap::ToString() const {
  std::string out;
  for (const auto& [key, entry] : entries_) {
    out += '"';
    out += key;
    out += "\" ";
    out += strings::Join(entry.accounts, ",");
    out += '\n';
  }
  return out;
}

}  // namespace gridauthz::gridmap
