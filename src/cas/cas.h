// A Community Authorization Service modelled on CAS (Pearlman et al.,
// POLICY 2002), the second third-party authorization system the paper
// integrates "in order to show generality of our approach" (section 5).
//
// CAS shifts policy evaluation to credential issuance: the VO runs a CAS
// server holding the community's policy database; a member asks the
// server for a credential, and the server answers with a RESTRICTED PROXY
// derived from the community's own credential, embedding exactly the
// rights granted to that member. At the resource, the bearer authenticates
// as the community identity, and the PEP enforces the policy carried in
// the credential (intersected with local policy via the combining PDP) —
// the resource never needs the VO's member list.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "core/source.h"
#include "gsi/credential.h"
#include "rsl/rsl.h"

namespace gridauthz::cas {

// One policy entry in the CAS database: `subject` may perform `actions`
// on `resource`, optionally restricted by RSL constraints.
struct CasGrant {
  std::string subject;   // member DN
  std::string resource;  // e.g. "gram/fusion.anl.gov"
  std::vector<std::string> actions;
  std::vector<rsl::Conjunction> constraints;  // alternatives; may be empty
};

class CasServer {
 public:
  // `community_credential` is the VO's own identity; issued credentials
  // are restricted proxies of it.
  CasServer(gsi::Credential community_credential, const Clock* clock);

  const gsi::DistinguishedName& community_identity() const {
    return community_credential_.identity();
  }

  // Membership management.
  void AddMember(const std::string& dn);
  bool IsMember(const std::string& dn) const;

  // Policy management.
  void AddGrant(CasGrant grant);
  std::size_t grant_count() const { return grants_.size(); }

  // Issues a restricted proxy for `member` scoped to `resource`,
  // embedding the member's grants as a policy document. Fails with
  // kAuthorizationDenied if the user is not a member or holds no grants
  // for the resource.
  Expected<gsi::Credential> IssueCredential(const gsi::Credential& member,
                                            const std::string& resource,
                                            Duration lifetime = 12 * 3600);

  // Renders the policy document embedded for (member, resource); exposed
  // for tests and the resource-side evaluator.
  Expected<std::string> EmbeddedPolicyFor(const std::string& member_dn,
                                          const std::string& resource) const;

 private:
  gsi::Credential community_credential_;
  const Clock* clock_;
  std::vector<std::string> members_;
  std::vector<CasGrant> grants_;
};

// Resource-side evaluator: enforces the policy embedded in the bearer's
// restricted proxy. A request without an embedded CAS policy is denied
// (the bearer did not come through CAS); a malformed embedded policy is
// an authorization system failure.
class CasPolicySource final : public core::PolicySource {
 public:
  explicit CasPolicySource(std::string name = "cas");

  const std::string& name() const override { return name_; }
  Expected<core::Decision> Authorize(
      const core::AuthorizationRequest& request) override;

 private:
  std::string name_;
  obs::AuthzInstruments instruments_{name_};  // after name_: init order
};

}  // namespace gridauthz::cas
