#include "cas/cas.h"

#include <algorithm>

#include "common/deadline.h"
#include "common/logging.h"
#include "core/policy.h"
#include "core/provenance.h"
#include "core/source.h"
#include "obs/instrument.h"
#include "obs/metrics.h"

namespace gridauthz::cas {

CasServer::CasServer(gsi::Credential community_credential, const Clock* clock)
    : community_credential_(std::move(community_credential)), clock_(clock) {}

void CasServer::AddMember(const std::string& dn) {
  if (!IsMember(dn)) members_.push_back(dn);
}

bool CasServer::IsMember(const std::string& dn) const {
  return std::find(members_.begin(), members_.end(), dn) != members_.end();
}

void CasServer::AddGrant(CasGrant grant) { grants_.push_back(std::move(grant)); }

Expected<std::string> CasServer::EmbeddedPolicyFor(
    const std::string& member_dn, const std::string& resource) const {
  core::PolicyDocument document;
  for (const CasGrant& grant : grants_) {
    if (grant.subject != member_dn || grant.resource != resource) continue;
    core::PolicyStatement statement;
    statement.kind = core::StatementKind::kPermission;
    // "/" applies to the bearer, whoever presents the credential.
    statement.subject_prefix = "/";
    for (const std::string& action : grant.actions) {
      if (grant.constraints.empty()) {
        rsl::Conjunction set;
        set.Add("action", rsl::RelOp::kEq, action);
        statement.assertion_sets.push_back(std::move(set));
      } else {
        for (const rsl::Conjunction& constraint : grant.constraints) {
          rsl::Conjunction set = constraint;
          set.Remove("action");
          set.Add("action", rsl::RelOp::kEq, action);
          statement.assertion_sets.push_back(std::move(set));
        }
      }
    }
    document.Add(std::move(statement));
  }
  if (document.empty()) {
    return Error{ErrCode::kAuthorizationDenied,
                 "CAS has no grants for " + member_dn + " on " + resource};
  }
  return document.ToString();
}

Expected<gsi::Credential> CasServer::IssueCredential(
    const gsi::Credential& member, const std::string& resource,
    Duration lifetime) {
  const std::string member_dn = member.identity().str();
  if (!IsMember(member_dn)) {
    return Error{ErrCode::kAuthorizationDenied,
                 member_dn + " is not a member of community " +
                     community_identity().str()};
  }
  GA_TRY(std::string policy, EmbeddedPolicyFor(member_dn, resource));
  GA_LOG(kInfo, "cas") << "issuing restricted proxy to " << member_dn
                       << " for resource " << resource;
  return community_credential_.GenerateProxy(clock_->Now(), lifetime,
                                             gsi::CertType::kRestrictedProxy,
                                             std::move(policy));
}

CasPolicySource::CasPolicySource(std::string name) : name_(std::move(name)) {}

Expected<core::Decision> CasPolicySource::Authorize(
    const core::AuthorizationRequest& request) {
  obs::AuthzCallObservation observation{instruments_};
  // Parsing the embedded restricted-proxy policy is CAS's per-request
  // cost; the stage timer surfaces it in decision provenance.
  core::ProvenanceStageTimer stage("cas/authorize");
  if (auto* prov = core::CurrentProvenance()) prov->policy_source = name_;
  Expected<core::Decision> result = [&]() -> Expected<core::Decision> {
    if (DeadlineExpiredAt(obs::ObsClock()->NowMicros())) {
      obs::Metrics()
          .GetCounter("authz_deadline_exceeded_total", {{"source", name_}})
          .Increment();
      return Error{ErrCode::kAuthorizationSystemFailure,
                   std::string{kReasonDeadlineExceeded} + " cas source '" +
                       name_ + "' ran out of deadline budget"};
    }
    if (!request.restriction_policy) {
      return core::Decision::Deny(
          core::DecisionCode::kDenyNoApplicableStatement,
          "cas: request carries no CAS restricted-proxy policy");
    }
    auto document = core::PolicyDocument::Parse(*request.restriction_policy);
    if (!document.ok()) {
      return Error{ErrCode::kAuthorizationSystemFailure,
                   "cas: embedded policy unparsable: " +
                       document.error().message()};
    }
    core::PolicyEvaluator evaluator{std::move(document).value()};
    core::Decision decision = evaluator.Evaluate(request);
    decision.reason = "cas: " + decision.reason;
    return decision;
  }();
  observation.set_outcome(core::MetricOutcome(result));
  return result;
}

}  // namespace gridauthz::cas
