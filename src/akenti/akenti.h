// A certificate-based authorization engine modelled on Akenti (Thompson
// et al., USENIX Security '99), which the paper integrated to represent
// "the same policies as described here" (section 5).
//
// Model:
//  * STAKEHOLDERS (resource owners, the VO) issue signed USE-CONDITION
//    certificates: "for resource R, these ACTIONS are granted to subjects
//    holding ATTRIBUTE a=v issued by one of TRUSTED ISSUERS, subject to
//    optional RSL CONSTRAINTS".
//  * ATTRIBUTE AUTHORITIES issue signed ATTRIBUTE certificates binding a
//    user DN to an attribute ("group=NFC", "role=developer").
//  * The engine gathers the use conditions for a resource, verifies
//    signatures and validity windows, matches the subject's attribute
//    certificates, and computes the subject's allowed actions. Fine-grain
//    job constraints reuse the core RSL assertion semantics, so the same
//    Figure 3 policies are expressible.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "core/source.h"
#include "gsi/credential.h"
#include "rsl/rsl.h"

namespace gridauthz::akenti {

struct AttributeAssertion {
  std::string name;
  std::string value;

  std::string ToString() const { return name + "=" + value; }
  friend bool operator==(const AttributeAssertion&,
                         const AttributeAssertion&) = default;
};

// A signed binding of `subject` to `attribute`, issued by an attribute
// authority.
struct AttributeCertificate {
  gsi::DistinguishedName subject;
  AttributeAssertion attribute;
  gsi::DistinguishedName issuer;
  gsi::PublicKey issuer_key;
  TimePoint not_before = 0;
  TimePoint not_after = 0;
  std::string signature;

  std::string CanonicalEncoding() const;
  bool VerifySignature() const;
  bool ValidAt(TimePoint now) const {
    return now >= not_before && now <= not_after;
  }
};

// Issues an attribute certificate signed by `authority`.
AttributeCertificate IssueAttributeCertificate(
    const gsi::Credential& authority, const gsi::DistinguishedName& subject,
    AttributeAssertion attribute, TimePoint now,
    Duration lifetime = 30L * 24 * 3600);

// A signed use condition for a resource.
struct UseCondition {
  std::string resource;                   // e.g. "gram/fusion.anl.gov"
  std::vector<std::string> actions;       // granted actions
  AttributeAssertion required_attribute;  // what the subject must hold
  // Attribute authorities trusted to assert required_attribute.
  std::vector<gsi::DistinguishedName> trusted_issuers;
  // Optional fine-grain constraints on the request's effective RSL,
  // evaluated with the core assertion semantics (self/NULL included).
  std::optional<rsl::Conjunction> constraints;

  gsi::DistinguishedName stakeholder;
  gsi::PublicKey stakeholder_key;
  TimePoint not_before = 0;
  TimePoint not_after = 0;
  std::string signature;

  std::string CanonicalEncoding() const;
  bool VerifySignature() const;
  bool ValidAt(TimePoint now) const {
    return now >= not_before && now <= not_after;
  }
};

// Builder for signed use conditions.
class UseConditionBuilder {
 public:
  UseConditionBuilder(std::string resource, const gsi::Credential& stakeholder);

  UseConditionBuilder& GrantAction(std::string action);
  UseConditionBuilder& RequireAttribute(AttributeAssertion attribute);
  UseConditionBuilder& TrustIssuer(gsi::DistinguishedName issuer);
  UseConditionBuilder& WithConstraints(rsl::Conjunction constraints);
  UseConditionBuilder& Validity(TimePoint not_before, TimePoint not_after);

  UseCondition Sign() const;

 private:
  UseCondition condition_;
  const gsi::Credential* stakeholder_;
};

// The Akenti policy engine for one resource.
class AkentiEngine {
 public:
  AkentiEngine(std::string resource, const Clock* clock);

  // Stakeholders whose use conditions are honored.
  void TrustStakeholder(const gsi::DistinguishedName& dn);

  // Installs certificates (gathered, in real Akenti, from directories).
  Expected<void> AddUseCondition(UseCondition condition);
  void AddAttributeCertificate(AttributeCertificate certificate);

  // Computes the decision for a request: the action must be granted by at
  // least one valid use condition whose required attribute the subject
  // holds (from a trusted issuer) and whose constraints the request
  // satisfies. Default deny.
  core::Decision Evaluate(const core::AuthorizationRequest& request) const;

  std::size_t use_condition_count() const { return use_conditions_.size(); }
  std::size_t attribute_certificate_count() const {
    return attribute_certs_.size();
  }

 private:
  // Valid attribute certs binding `subject` to `attribute`, restricted to
  // `trusted_issuers`.
  bool SubjectHoldsAttribute(
      std::string_view subject, const AttributeAssertion& attribute,
      const std::vector<gsi::DistinguishedName>& trusted_issuers) const;

  std::string resource_;
  const Clock* clock_;
  std::vector<gsi::DistinguishedName> stakeholders_;
  std::vector<UseCondition> use_conditions_;
  std::vector<AttributeCertificate> attribute_certs_;
};

// Adapts the engine to the core::PolicySource interface so it can sit
// behind the GRAM callout exactly like the file-based PDP.
class AkentiPolicySource final : public core::PolicySource {
 public:
  explicit AkentiPolicySource(std::shared_ptr<AkentiEngine> engine,
                              std::string name = "akenti");

  const std::string& name() const override { return name_; }
  Expected<core::Decision> Authorize(
      const core::AuthorizationRequest& request) override;

 private:
  std::shared_ptr<AkentiEngine> engine_;
  std::string name_;
  obs::AuthzInstruments instruments_{name_};  // after name_: init order
};

}  // namespace gridauthz::akenti
