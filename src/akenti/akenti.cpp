#include "akenti/akenti.h"

#include <algorithm>
#include <limits>

#include "common/deadline.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/evaluator.h"
#include "core/provenance.h"
#include "core/source.h"
#include "obs/instrument.h"
#include "obs/metrics.h"

namespace gridauthz::akenti {

std::string AttributeCertificate::CanonicalEncoding() const {
  return "akenti-attr;subject=" + subject.str() +
         ";attr=" + attribute.ToString() + ";issuer=" + issuer.str() +
         ";key=" + issuer_key.fingerprint + ";nb=" + std::to_string(not_before) +
         ";na=" + std::to_string(not_after);
}

bool AttributeCertificate::VerifySignature() const {
  return gsi::VerifySignature(issuer_key, CanonicalEncoding(), signature);
}

AttributeCertificate IssueAttributeCertificate(
    const gsi::Credential& authority, const gsi::DistinguishedName& subject,
    AttributeAssertion attribute, TimePoint now, Duration lifetime) {
  AttributeCertificate cert;
  cert.subject = subject;
  cert.attribute = std::move(attribute);
  cert.issuer = authority.identity();
  cert.issuer_key = authority.leaf().subject_key;
  cert.not_before = now;
  cert.not_after = now + lifetime;
  cert.signature = authority.Sign(cert.CanonicalEncoding());
  return cert;
}

std::string UseCondition::CanonicalEncoding() const {
  std::string issuers;
  for (const auto& dn : trusted_issuers) issuers += dn.str() + "|";
  return "akenti-uc;resource=" + resource +
         ";actions=" + strings::Join(actions, ",") +
         ";attr=" + required_attribute.ToString() + ";issuers=" + issuers +
         ";constraints=" + (constraints ? constraints->ToString() : "") +
         ";stakeholder=" + stakeholder.str() +
         ";key=" + stakeholder_key.fingerprint +
         ";nb=" + std::to_string(not_before) + ";na=" + std::to_string(not_after);
}

bool UseCondition::VerifySignature() const {
  return gsi::VerifySignature(stakeholder_key, CanonicalEncoding(), signature);
}

UseConditionBuilder::UseConditionBuilder(std::string resource,
                                         const gsi::Credential& stakeholder)
    : stakeholder_(&stakeholder) {
  condition_.resource = std::move(resource);
  condition_.stakeholder = stakeholder.identity();
  condition_.stakeholder_key = stakeholder.leaf().subject_key;
  condition_.not_before = 0;
  condition_.not_after = std::numeric_limits<TimePoint>::max();
}

UseConditionBuilder& UseConditionBuilder::GrantAction(std::string action) {
  condition_.actions.push_back(std::move(action));
  return *this;
}

UseConditionBuilder& UseConditionBuilder::RequireAttribute(
    AttributeAssertion attribute) {
  condition_.required_attribute = std::move(attribute);
  return *this;
}

UseConditionBuilder& UseConditionBuilder::TrustIssuer(
    gsi::DistinguishedName issuer) {
  condition_.trusted_issuers.push_back(std::move(issuer));
  return *this;
}

UseConditionBuilder& UseConditionBuilder::WithConstraints(
    rsl::Conjunction constraints) {
  condition_.constraints = std::move(constraints);
  return *this;
}

UseConditionBuilder& UseConditionBuilder::Validity(TimePoint not_before,
                                                   TimePoint not_after) {
  condition_.not_before = not_before;
  condition_.not_after = not_after;
  return *this;
}

UseCondition UseConditionBuilder::Sign() const {
  UseCondition signed_condition = condition_;
  signed_condition.signature =
      stakeholder_->Sign(signed_condition.CanonicalEncoding());
  return signed_condition;
}

AkentiEngine::AkentiEngine(std::string resource, const Clock* clock)
    : resource_(std::move(resource)), clock_(clock) {}

void AkentiEngine::TrustStakeholder(const gsi::DistinguishedName& dn) {
  stakeholders_.push_back(dn);
}

Expected<void> AkentiEngine::AddUseCondition(UseCondition condition) {
  if (condition.resource != resource_) {
    return Error{ErrCode::kInvalidArgument,
                 "use condition for resource '" + condition.resource +
                     "' installed on engine for '" + resource_ + "'"};
  }
  const bool trusted =
      std::any_of(stakeholders_.begin(), stakeholders_.end(),
                  [&](const gsi::DistinguishedName& dn) {
                    return dn == condition.stakeholder;
                  });
  if (!trusted) {
    return Error{ErrCode::kPermissionDenied,
                 "use condition signed by untrusted stakeholder " +
                     condition.stakeholder.str()};
  }
  if (!condition.VerifySignature()) {
    return Error{ErrCode::kAuthenticationFailed,
                 "bad signature on use condition from " +
                     condition.stakeholder.str()};
  }
  use_conditions_.push_back(std::move(condition));
  return Ok();
}

void AkentiEngine::AddAttributeCertificate(AttributeCertificate certificate) {
  attribute_certs_.push_back(std::move(certificate));
}

bool AkentiEngine::SubjectHoldsAttribute(
    std::string_view subject, const AttributeAssertion& attribute,
    const std::vector<gsi::DistinguishedName>& trusted_issuers) const {
  const TimePoint now = clock_->Now();
  for (const AttributeCertificate& cert : attribute_certs_) {
    if (cert.subject.str() != subject) continue;
    if (!(cert.attribute == attribute)) continue;
    if (!cert.ValidAt(now)) continue;
    if (!cert.VerifySignature()) continue;
    const bool issuer_trusted = std::any_of(
        trusted_issuers.begin(), trusted_issuers.end(),
        [&](const gsi::DistinguishedName& dn) { return dn == cert.issuer; });
    if (issuer_trusted) return true;
  }
  return false;
}

core::Decision AkentiEngine::Evaluate(
    const core::AuthorizationRequest& request) const {
  const TimePoint now = clock_->Now();
  const rsl::Conjunction effective = request.ToEffectiveRsl();
  bool any_action_grant = false;

  for (const UseCondition& condition : use_conditions_) {
    if (!condition.ValidAt(now)) continue;
    const bool grants_action =
        std::find(condition.actions.begin(), condition.actions.end(),
                  request.action) != condition.actions.end();
    if (!grants_action) continue;
    any_action_grant = true;
    if (!SubjectHoldsAttribute(request.subject, condition.required_attribute,
                               condition.trusted_issuers)) {
      continue;
    }
    if (condition.constraints) {
      std::string failed;
      if (!core::PolicyEvaluator::SetSatisfied(*condition.constraints,
                                               effective, request.subject,
                                               &failed)) {
        GA_LOG(kDebug, "akenti")
            << "use condition constraint failed for " << request.subject
            << ": " << failed;
        continue;
      }
    }
    return core::Decision::Permit(
        "akenti: use condition from " + condition.stakeholder.str() +
        " grants '" + request.action + "' via attribute " +
        condition.required_attribute.ToString());
  }

  if (!any_action_grant) {
    return core::Decision::Deny(
        core::DecisionCode::kDenyNoApplicableStatement,
        "akenti: no use condition grants action '" + request.action +
            "' on resource " + resource_);
  }
  return core::Decision::Deny(
      core::DecisionCode::kDenyNoPermission,
      "akenti: " + request.subject + " satisfies no use condition for '" +
          request.action + "'");
}

AkentiPolicySource::AkentiPolicySource(std::shared_ptr<AkentiEngine> engine,
                                       std::string name)
    : engine_(std::move(engine)), name_(std::move(name)) {}

Expected<core::Decision> AkentiPolicySource::Authorize(
    const core::AuthorizationRequest& request) {
  obs::AuthzCallObservation observation{instruments_};
  // Certificate gathering and chain verification dominate Akenti latency;
  // the stage timer makes that visible in decision provenance.
  core::ProvenanceStageTimer stage("akenti/authorize");
  if (auto* prov = core::CurrentProvenance()) prov->policy_source = name_;
  Expected<core::Decision> result = [&]() -> Expected<core::Decision> {
    // Certificate gathering is the expensive part of Akenti evaluation;
    // don't even start it once the caller's budget is spent.
    if (DeadlineExpiredAt(obs::ObsClock()->NowMicros())) {
      obs::Metrics()
          .GetCounter("authz_deadline_exceeded_total", {{"source", name_}})
          .Increment();
      return Error{ErrCode::kAuthorizationSystemFailure,
                   std::string{kReasonDeadlineExceeded} + " akenti source '" +
                       name_ + "' ran out of deadline budget"};
    }
    if (engine_ == nullptr) {
      return Error{ErrCode::kAuthorizationSystemFailure,
                   "akenti engine not configured"};
    }
    return engine_->Evaluate(request);
  }();
  observation.set_outcome(core::MetricOutcome(result));
  return result;
}

}  // namespace gridauthz::akenti
