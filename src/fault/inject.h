// Fault-plan-driven decorators: wrap any PolicySource, authorization
// callout, or wire transport with a FaultInjector so tests and benches
// exercise the pipeline against slow, flaky, dead, or lying backends —
// deterministically.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "core/source.h"
#include "fault/fault.h"
#include "gram/callout.h"
#include "gram/wire_service.h"

namespace gridauthz::fault {

// PolicySource whose backend suffers the injector's faults. Transient
// faults and outages surface with the injector's error code; a corrupt
// reply surfaces as kInternal (an undecodable answer — NOT a decision),
// which the resilient layer treats as retryable and an undecorated
// pipeline reports as an authorization system failure.
class FaultyPolicySource final : public core::PolicySource {
 public:
  FaultyPolicySource(std::shared_ptr<core::PolicySource> inner,
                     std::shared_ptr<FaultInjector> injector);

  const std::string& name() const override { return inner_->name(); }
  Expected<core::Decision> Authorize(
      const core::AuthorizationRequest& request) override;
  // Faults do not change the policy itself; forward the generation so a
  // decision cache layered outside the faulty link still invalidates on
  // real policy changes.
  std::uint64_t policy_generation() const override {
    return inner_->policy_generation();
  }

  const FaultInjector& injector() const { return *injector_; }

 private:
  std::shared_ptr<core::PolicySource> inner_;
  std::shared_ptr<FaultInjector> injector_;
};

// Same over the GRAM callout contract.
gram::AuthorizationCallout MakeFaultyCallout(
    gram::AuthorizationCallout inner, std::shared_ptr<FaultInjector> injector);

// Wire transport whose link suffers the injector's faults: transient
// faults and outages swallow the reply (the caller receives an
// unparseable empty frame, as a dead peer yields), corruption mangles
// the real reply bytes deterministically.
class FaultyTransport final : public gram::wire::WireTransport {
 public:
  FaultyTransport(gram::wire::WireTransport* inner,
                  std::shared_ptr<FaultInjector> injector);

  std::string Handle(const gsi::Credential& peer,
                     std::string_view frame) override;

 private:
  gram::wire::WireTransport* inner_;
  std::shared_ptr<FaultInjector> injector_;
  std::mutex corrupt_mu_;
  FaultRng corrupt_rng_;
};

}  // namespace gridauthz::fault
