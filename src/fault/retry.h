// Retry policy: bounded attempts with exponential backoff, deterministic
// jitter, a per-attempt timeout, and an overall budget. A deny is an
// answer and is never retried; only authorization *system* failures
// (backend unreachable, internal error, corrupt reply) are — exactly the
// deny-vs-failure distinction the paper's extended GRAM error codes draw.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/error.h"
#include "fault/fault.h"

namespace gridauthz::fault {

struct RetryPolicy {
  int max_attempts = 1;                   // 1 = no retries
  std::int64_t initial_backoff_us = 0;    // before attempt 2
  double backoff_multiplier = 2.0;        // geometric growth
  std::int64_t max_backoff_us = 0;        // 0 = uncapped
  double jitter = 0.0;                    // fraction of backoff randomized
  std::uint64_t jitter_seed = 1;          // deterministic jitter stream
  std::int64_t per_attempt_timeout_us = 0;  // 0 = none; a reply slower
                                            // than this is discarded
  std::int64_t overall_budget_us = 0;       // 0 = none; relative deadline
                                            // applied per Authorize call

  // Backoff before attempt `next_attempt` (2-based: the wait after the
  // first failure precedes attempt 2). Jitter subtracts a deterministic
  // uniform share in [0, jitter * base) drawn from `rng`.
  std::int64_t BackoffUs(int next_attempt, FaultRng& rng) const;

  // Parses "key value" config lines:
  //   max-attempts 4
  //   initial-backoff-us 100
  //   backoff-multiplier 2.0
  //   max-backoff-us 5000
  //   jitter 0.5
  //   jitter-seed 7
  //   per-attempt-timeout-us 2000
  //   overall-budget-us 100000
  // Malformed input is kParseError, never a crash.
  static Expected<RetryPolicy> Parse(std::string_view config_text);
};

// True for errors worth retrying: the backend may answer differently
// next time. Denials and client errors are authoritative.
bool IsRetryableError(const Error& error);

// Sleeping between attempts. The simulation never blocks a real thread:
// SimSleeper advances the SimClock (so backoff consumes deadline budget
// deterministically); NullSleeper only counts. A wall-clock sleeper is
// deliberately absent — nothing in this codebase may stall the test
// suite.
class Sleeper {
 public:
  virtual ~Sleeper() = default;
  virtual void SleepMicros(std::int64_t micros) = 0;
};

class NullSleeper final : public Sleeper {
 public:
  void SleepMicros(std::int64_t) override {}
};

class SimSleeper final : public Sleeper {
 public:
  explicit SimSleeper(SimClock* clock) : clock_(clock) {}
  void SleepMicros(std::int64_t micros) override {
    clock_->AdvanceMicros(micros);
  }

 private:
  SimClock* clock_;
};

}  // namespace gridauthz::fault
