#include "fault/retry.h"

#include <charconv>

#include "common/config.h"

namespace gridauthz::fault {

std::int64_t RetryPolicy::BackoffUs(int next_attempt, FaultRng& rng) const {
  if (next_attempt <= 1 || initial_backoff_us <= 0) return 0;
  double base = static_cast<double>(initial_backoff_us);
  for (int i = 2; i < next_attempt; ++i) base *= backoff_multiplier;
  std::int64_t backoff = static_cast<std::int64_t>(base);
  if (max_backoff_us > 0 && backoff > max_backoff_us) backoff = max_backoff_us;
  if (jitter > 0.0 && backoff > 0) {
    const auto spread = static_cast<std::int64_t>(jitter * static_cast<double>(backoff));
    backoff -= rng.NextBelow(spread);
  }
  return backoff;
}

namespace {

Expected<std::int64_t> ParseInt(const std::string& text,
                                std::string_view what) {
  std::int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Error{ErrCode::kParseError, "retry policy: " + std::string{what} +
                                           " is not an integer: " + text};
  }
  return value;
}

Expected<double> ParseDouble(const std::string& text, std::string_view what) {
  double value = 0.0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Error{ErrCode::kParseError, "retry policy: " + std::string{what} +
                                           " is not a number: " + text};
  }
  return value;
}

}  // namespace

Expected<RetryPolicy> RetryPolicy::Parse(std::string_view config_text) {
  GA_TRY(std::vector<ConfigEntry> entries, ParseConfig(config_text, 2));
  RetryPolicy policy;
  for (const ConfigEntry& entry : entries) {
    const std::string line =
        " (line " + std::to_string(entry.line_number) + ")";
    if (entry.tokens.size() != 2) {
      return Error{ErrCode::kParseError,
                   "retry policy: expected '<key> <value>'" + line};
    }
    const std::string& key = entry.tokens[0];
    const std::string& value = entry.tokens[1];
    if (key == "max-attempts") {
      GA_TRY(std::int64_t n, ParseInt(value, key + line));
      if (n < 1 || n > 1000) {
        return Error{ErrCode::kParseError,
                     "retry policy: max-attempts must be in [1, 1000]" + line};
      }
      policy.max_attempts = static_cast<int>(n);
    } else if (key == "initial-backoff-us") {
      GA_TRY(policy.initial_backoff_us, ParseInt(value, key + line));
      if (policy.initial_backoff_us < 0) {
        return Error{ErrCode::kParseError,
                     "retry policy: initial-backoff-us must be >= 0" + line};
      }
    } else if (key == "backoff-multiplier") {
      GA_TRY(policy.backoff_multiplier, ParseDouble(value, key + line));
      if (policy.backoff_multiplier < 1.0) {
        return Error{ErrCode::kParseError,
                     "retry policy: backoff-multiplier must be >= 1" + line};
      }
    } else if (key == "max-backoff-us") {
      GA_TRY(policy.max_backoff_us, ParseInt(value, key + line));
      if (policy.max_backoff_us < 0) {
        return Error{ErrCode::kParseError,
                     "retry policy: max-backoff-us must be >= 0" + line};
      }
    } else if (key == "jitter") {
      GA_TRY(policy.jitter, ParseDouble(value, key + line));
      if (policy.jitter < 0.0 || policy.jitter > 1.0) {
        return Error{ErrCode::kParseError,
                     "retry policy: jitter must be in [0, 1]" + line};
      }
    } else if (key == "jitter-seed") {
      GA_TRY(std::int64_t seed, ParseInt(value, key + line));
      policy.jitter_seed = static_cast<std::uint64_t>(seed);
    } else if (key == "per-attempt-timeout-us") {
      GA_TRY(policy.per_attempt_timeout_us, ParseInt(value, key + line));
      if (policy.per_attempt_timeout_us < 0) {
        return Error{ErrCode::kParseError,
                     "retry policy: per-attempt-timeout-us must be >= 0" +
                         line};
      }
    } else if (key == "overall-budget-us") {
      GA_TRY(policy.overall_budget_us, ParseInt(value, key + line));
      if (policy.overall_budget_us < 0) {
        return Error{ErrCode::kParseError,
                     "retry policy: overall-budget-us must be >= 0" + line};
      }
    } else {
      return Error{ErrCode::kParseError,
                   "retry policy: unknown key '" + key + "'" + line};
    }
  }
  return policy;
}

bool IsRetryableError(const Error& error) {
  // A failure a lower resilience layer already classified as terminal —
  // its breaker is open or the request's budget is gone — will not get
  // better on the next attempt.
  const std::string_view tag = FailureReasonTag(error);
  if (tag == kReasonCircuitOpen || tag == kReasonDeadlineExceeded) {
    return false;
  }
  switch (error.code()) {
    case ErrCode::kUnavailable:
    case ErrCode::kInternal:
    case ErrCode::kAuthorizationSystemFailure:
      return true;
    default:
      return false;
  }
}

}  // namespace gridauthz::fault
