// Fail-closed degradation: a bounded, TTL'd cache of last-good
// authorization decisions. When a policy source is open-circuit or out
// of deadline budget, the pipeline answers kAuthorizationSystemFailure —
// never a fresh permit. The one sanctioned softening is for MANAGEMENT
// actions (cancel / information / signal): an operator who could cancel
// a job two minutes ago may still cancel it while Akenti is down,
// because the cached decision was computed by the real policy. `start`
// is never served from cache — admitting new work on stale policy is
// exactly the fail-open the paper's default-deny stance forbids.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/clock.h"
#include "core/evaluator.h"
#include "core/request.h"

namespace gridauthz::fault {

// True for the actions the degradation cache may serve.
bool IsManagementAction(std::string_view action);

struct LastGoodCacheOptions {
  std::size_t capacity = 1024;       // entries; LRU beyond this
  std::int64_t ttl_us = 60'000'000;  // entry lifetime
};

class LastGoodCache {
 public:
  LastGoodCache(LastGoodCacheOptions options, const Clock* clock);

  // Records the decision for a management request. Start requests and
  // non-management actions are ignored.
  void Record(const core::AuthorizationRequest& request,
              const core::Decision& decision);

  // A fresh cached decision for the request, or nullopt (miss, expired,
  // or a non-management action).
  std::optional<core::Decision> Lookup(
      const core::AuthorizationRequest& request) const;

  std::size_t size() const;

 private:
  static std::string Key(const core::AuthorizationRequest& request);

  LastGoodCacheOptions options_;
  const Clock* clock_;

  struct Entry {
    core::Decision decision;
    std::int64_t stored_at_us = 0;
    std::list<std::string>::iterator lru_it;
  };
  mutable std::mutex mu_;
  mutable std::map<std::string, Entry> entries_;
  mutable std::list<std::string> lru_;  // front = most recent
};

}  // namespace gridauthz::fault
