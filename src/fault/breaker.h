// Per-backend circuit breaker: closed -> open -> half-open, driven by a
// failure-rate threshold over a sliding time window on an injectable
// Clock. A dead Akenti or CAS must stop consuming the latency budget of
// every request: once the breaker opens, calls are rejected immediately
// (and fail closed) until a cooldown passes, after which a bounded
// number of half-open probes decide whether the backend recovered.
//
// State is exported through obs:
//   breaker_state{backend}            gauge: 0 closed, 1 open, 2 half-open
//   breaker_transitions_total{backend,to}
//   breaker_rejected_total{backend}
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>

#include "common/clock.h"

namespace gridauthz::fault {

enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

std::string_view to_string(BreakerState state);

struct CircuitBreakerOptions {
  std::int64_t window_us = 10'000'000;     // failure-rate sliding window
  int min_calls = 5;                       // samples before the rate counts
  double failure_rate_threshold = 0.5;     // open at >= this rate
  std::int64_t open_cooldown_us = 30'000'000;  // open -> half-open delay
  // Consecutive probe successes needed to close from half-open. Probes
  // are strictly serialized: exactly one is in flight at a time, however
  // many callers race Allow() — a backend recovering from an outage must
  // not be thundering-herded by every blocked caller at once.
  int half_open_successes = 1;
};

class CircuitBreaker {
 public:
  CircuitBreaker(std::string backend, CircuitBreakerOptions options,
                 const Clock* clock);

  // Admission check for one call. In the open state this is where the
  // cooldown expiry transitions to half-open. Returns false when the
  // call must be rejected (caller fails closed). Half-open admits via a
  // single probe token taken here and released by the next
  // RecordSuccess/RecordFailure, so concurrent callers racing the
  // cooldown expiry admit exactly one probe.
  bool Allow();

  // Report the fate of an admitted call. A deny counts as success — the
  // backend answered; only system failures push the breaker open.
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const;
  const std::string& backend() const { return backend_; }

  // Forces the breaker open immediately (operator kill switch; also used
  // by tests to pin the degraded path).
  void ForceOpen();

 private:
  struct Sample {
    std::int64_t at_us;
    bool ok;
  };

  void TransitionLocked(BreakerState to);
  void PruneLocked(std::int64_t now_us);
  double FailureRateLocked() const;

  std::string backend_;
  CircuitBreakerOptions options_;
  const Clock* clock_;

  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  std::deque<Sample> window_;
  std::int64_t opened_at_us_ = 0;
  // The half-open probe token: true while the one admitted probe is in
  // flight. A straggler RecordSuccess from a call admitted before the
  // breaker opened can release it early — harmless, the next probe is
  // still admitted one at a time.
  bool probe_in_flight_ = false;
  int half_open_successes_ = 0;
};

}  // namespace gridauthz::fault
