#include "fault/inject.h"

namespace gridauthz::fault {

FaultyPolicySource::FaultyPolicySource(
    std::shared_ptr<core::PolicySource> inner,
    std::shared_ptr<FaultInjector> injector)
    : inner_(std::move(inner)), injector_(std::move(injector)) {}

Expected<core::Decision> FaultyPolicySource::Authorize(
    const core::AuthorizationRequest& request) {
  FaultInjector::Outcome outcome = injector_->NextCall();
  if (outcome.error) return *outcome.error;
  if (outcome.corrupt) {
    return Error{ErrCode::kInternal, "fault: corrupt reply from target '" +
                                         injector_->target() + "'"};
  }
  return inner_->Authorize(request);
}

gram::AuthorizationCallout MakeFaultyCallout(
    gram::AuthorizationCallout inner,
    std::shared_ptr<FaultInjector> injector) {
  return [inner = std::move(inner),
          injector = std::move(injector)](
             const gram::CalloutData& data) -> Expected<void> {
    FaultInjector::Outcome outcome = injector->NextCall();
    if (outcome.error) return *outcome.error;
    if (outcome.corrupt) {
      return Error{ErrCode::kInternal, "fault: corrupt reply from target '" +
                                           injector->target() + "'"};
    }
    return inner(data);
  };
}

FaultyTransport::FaultyTransport(gram::wire::WireTransport* inner,
                                 std::shared_ptr<FaultInjector> injector)
    : inner_(inner),
      injector_(std::move(injector)),
      corrupt_rng_(0xC0FFEE ^ injector_->calls()) {}

std::string FaultyTransport::Handle(const gsi::Credential& peer,
                                    std::string_view frame) {
  FaultInjector::Outcome outcome = injector_->NextCall();
  if (outcome.error) return "";  // the peer never answered
  std::string reply = inner_->Handle(peer, frame);
  if (outcome.corrupt) {
    std::lock_guard lock(corrupt_mu_);
    return CorruptFrame(reply, corrupt_rng_);
  }
  return reply;
}

}  // namespace gridauthz::fault
