// Resilient decorators for the authorization path: RetryPolicy-driven
// attempts with deterministic backoff, circuit-breaker admission, ambient
// deadline enforcement, and fail-closed degradation via the last-good
// cache. ResilientPolicySource wraps any core::PolicySource (local file,
// Akenti, CAS, a whole CombiningPdp); MakeResilientCallout wraps a GRAM
// authorization callout. Both answer every degraded path with
// kAuthorizationSystemFailure carrying a typed reason tag — never a
// fabricated permit.
//
// Metrics (obs):
//   authz_retries_total{source}
//   authz_retry_exhausted_total{source}
//   authz_deadline_exceeded_total{source}
//   authz_degraded_served_total{source,action}
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/deadline.h"
#include "core/provenance.h"
#include "core/source.h"
#include "fault/breaker.h"
#include "fault/degrade.h"
#include "fault/retry.h"
#include "gram/callout.h"
#include "obs/metrics.h"

namespace gridauthz::fault {

struct ResilienceOptions {
  RetryPolicy retry;
  // Shared per-backend breaker; nullptr disables admission control.
  CircuitBreaker* breaker = nullptr;
  // Degradation cache; nullptr means degraded calls always fail closed.
  LastGoodCache* last_good = nullptr;
  // Clock for deadlines and attempt timing; nullptr = obs::ObsClock().
  const Clock* clock = nullptr;
  // Waits between attempts; nullptr = no waiting (attempts back-to-back).
  Sleeper* sleeper = nullptr;
};

// Thread-safe deterministic jitter stream for one decorator instance.
class JitterStream {
 public:
  explicit JitterStream(std::uint64_t seed) : rng_(seed) {}
  std::int64_t BackoffUs(const RetryPolicy& policy, int next_attempt) {
    std::lock_guard lock(mu_);
    return policy.BackoffUs(next_attempt, rng_);
  }

 private:
  std::mutex mu_;
  FaultRng rng_;
};

namespace detail {

// One resilient execution: admission, attempts, backoff, deadline.
// `attempt` runs the underlying operation; `classify` maps its result to
// ok / authoritative-failure / retryable-failure. Returns the final
// result, or the typed system failure for every degraded path.
template <typename T>
Expected<T> Execute(const std::string& op, const ResilienceOptions& options,
                    JitterStream& jitter,
                    const std::function<Expected<T>()>& attempt) {
  const Clock* clock = options.clock ? options.clock : obs::ObsClock();
  NullSleeper null_sleeper;
  Sleeper* sleeper = options.sleeper ? options.sleeper : &null_sleeper;
  const RetryPolicy& retry = options.retry;

  // Effective deadline: the tighter of the ambient (wire-propagated)
  // deadline and this policy's own overall budget.
  std::optional<std::int64_t> deadline = CurrentDeadlineMicros();
  if (retry.overall_budget_us > 0) {
    const std::int64_t budget = clock->NowMicros() + retry.overall_budget_us;
    deadline = deadline ? std::min(*deadline, budget) : budget;
  }
  auto deadline_failure = [&]() -> Error {
    obs::Metrics()
        .GetCounter("authz_deadline_exceeded_total", {{"source", op}})
        .Increment();
    return Error{ErrCode::kAuthorizationSystemFailure,
                 std::string{kReasonDeadlineExceeded} + " '" + op +
                     "' ran out of deadline budget"};
  };

  // Provenance: the record (if a collection scope is active) learns the
  // attempt count, every failed attempt's error, and the breaker state —
  // annotation only, no control-flow change.
  core::DecisionProvenance* prov = core::CurrentProvenance();
  Error last{ErrCode::kAuthorizationSystemFailure, "no attempt ran"};
  for (int attempt_no = 1; attempt_no <= retry.max_attempts; ++attempt_no) {
    if (deadline && clock->NowMicros() >= *deadline) return deadline_failure();
    if (options.breaker != nullptr) {
      const bool admitted = options.breaker->Allow();
      if (prov != nullptr) {
        prov->breaker_state = std::string{to_string(options.breaker->state())};
      }
      if (!admitted) {
        return Error{ErrCode::kAuthorizationSystemFailure,
                     std::string{kReasonCircuitOpen} + " backend '" +
                         options.breaker->backend() + "' circuit is open"};
      }
    }

    const std::int64_t started = clock->NowMicros();
    Expected<T> result = attempt();
    const std::int64_t elapsed = clock->NowMicros() - started;
    if (prov != nullptr) prov->attempts = attempt_no;
    const bool timed_out = retry.per_attempt_timeout_us > 0 &&
                           elapsed > retry.per_attempt_timeout_us;

    if (!timed_out &&
        (result.ok() || !IsRetryableError(result.error()))) {
      // The backend answered (a deny is an answer). Only record breaker
      // health for authoritative outcomes.
      if (options.breaker != nullptr) options.breaker->RecordSuccess();
      return result;
    }

    if (options.breaker != nullptr) options.breaker->RecordFailure();
    last = timed_out
               ? Error{ErrCode::kAuthorizationSystemFailure,
                       std::string{kReasonAttemptTimeout} + " '" + op +
                           "' attempt " + std::to_string(attempt_no) +
                           " took " + std::to_string(elapsed) + "us (limit " +
                           std::to_string(retry.per_attempt_timeout_us) +
                           "us)"}
               : result.error();
    if (prov != nullptr) {
      prov->failed_attempts.push_back(
          core::FailedAttempt{attempt_no, last.to_string()});
    }
    if (attempt_no == retry.max_attempts) break;

    const std::int64_t backoff = jitter.BackoffUs(retry, attempt_no + 1);
    if (deadline && clock->NowMicros() + backoff >= *deadline) {
      return deadline_failure();
    }
    if (backoff > 0) sleeper->SleepMicros(backoff);
    obs::Metrics()
        .GetCounter("authz_retries_total", {{"source", op}})
        .Increment();
  }

  obs::Metrics()
      .GetCounter("authz_retry_exhausted_total", {{"source", op}})
      .Increment();
  return Error{ErrCode::kAuthorizationSystemFailure,
               std::string{kReasonRetriesExhausted} + " '" + op +
                   "' failed after " + std::to_string(retry.max_attempts) +
                   " attempt(s); last: " + last.to_string()};
}

}  // namespace detail

// True when `error` is a typed degraded outcome the last-good cache may
// soften (for management actions only).
bool IsDegradedFailure(const Error& error);

// PolicySource decorator. Shares breaker / cache / clock via options;
// the decorator itself is thread-safe if the inner source is.
class ResilientPolicySource final : public core::PolicySource {
 public:
  ResilientPolicySource(std::shared_ptr<core::PolicySource> inner,
                        ResilienceOptions options, std::string name = "");

  const std::string& name() const override { return name_; }
  Expected<core::Decision> Authorize(
      const core::AuthorizationRequest& request) override;
  // Resilience does not change which policy answers, so the inner
  // source's generation flows through for cache invalidation.
  std::uint64_t policy_generation() const override {
    return inner_->policy_generation();
  }

 private:
  std::shared_ptr<core::PolicySource> inner_;
  ResilienceOptions options_;
  std::string name_;
  obs::AuthzInstruments instruments_{name_};  // after name_: init order
  JitterStream jitter_;
};

// Callout decorator: same machinery over the GRAM callout contract.
// `options` members with shared state (breaker, cache, clock, sleeper)
// must outlive the returned callout.
gram::AuthorizationCallout MakeResilientCallout(gram::AuthorizationCallout inner,
                                                ResilienceOptions options,
                                                std::string name);

}  // namespace gridauthz::fault
