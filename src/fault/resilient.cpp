#include "fault/resilient.h"

#include "gram/pdp_callout.h"
#include "obs/instrument.h"

namespace gridauthz::fault {

bool IsDegradedFailure(const Error& error) {
  if (error.code() != ErrCode::kAuthorizationSystemFailure) return false;
  const std::string_view tag = FailureReasonTag(error);
  return tag == kReasonCircuitOpen || tag == kReasonDeadlineExceeded ||
         tag == kReasonRetriesExhausted || tag == kReasonAttemptTimeout ||
         tag == kReasonOverload;
}

namespace {

void CountDegradedServe(const std::string& source, const std::string& action) {
  obs::Metrics()
      .GetCounter("authz_degraded_served_total",
                  {{"source", source}, {"action", action}})
      .Increment();
}

}  // namespace

ResilientPolicySource::ResilientPolicySource(
    std::shared_ptr<core::PolicySource> inner, ResilienceOptions options,
    std::string name)
    : inner_(std::move(inner)),
      options_(options),
      name_(name.empty() ? inner_->name() + "-resilient" : std::move(name)),
      jitter_(options.retry.jitter_seed) {}

Expected<core::Decision> ResilientPolicySource::Authorize(
    const core::AuthorizationRequest& request) {
  obs::AuthzCallObservation observation{instruments_};
  Expected<core::Decision> result = detail::Execute<core::Decision>(
      name_, options_, jitter_,
      [&]() { return inner_->Authorize(request); });
  if (result.ok()) {
    if (options_.last_good != nullptr) {
      options_.last_good->Record(request, *result);
    }
  } else if (options_.last_good != nullptr &&
             IsDegradedFailure(result.error())) {
    if (auto cached = options_.last_good->Lookup(request)) {
      CountDegradedServe(name_, request.action);
      core::Decision decision = *cached;
      if (auto* prov = core::CurrentProvenance()) {
        prov->degrade_tag = std::string{FailureReasonTag(result.error())};
      }
      decision.reason += " [degraded: last-good cache after " +
                         std::string{FailureReasonTag(result.error())} + "]";
      observation.set_outcome(decision.permitted() ? obs::kOutcomePermit
                                                   : obs::kOutcomeDeny);
      return decision;
    }
  }
  observation.set_outcome(core::MetricOutcome(result));
  return result;
}

gram::AuthorizationCallout MakeResilientCallout(
    gram::AuthorizationCallout inner, ResilienceOptions options,
    std::string name) {
  auto jitter = std::make_shared<JitterStream>(options.retry.jitter_seed);
  return [inner = std::move(inner), options, name = std::move(name),
          jitter](const gram::CalloutData& data) -> Expected<void> {
    Expected<void> result = detail::Execute<void>(
        name, options, *jitter, [&]() { return inner(data); });
    if (options.last_good == nullptr) return result;
    // The cache speaks AuthorizationRequest; rebuild it from the callout
    // data (same translation the PDP callout itself performs).
    auto request = gram::ToAuthorizationRequest(data);
    if (!request.ok()) return result;
    if (result.ok()) {
      options.last_good->Record(
          *request, core::Decision::Permit("callout '" + name + "' permitted"));
    } else if (result.error().code() == ErrCode::kAuthorizationDenied) {
      options.last_good->Record(
          *request, core::Decision::Deny(core::DecisionCode::kDenyNoPermission,
                                         result.error().message()));
    } else if (IsDegradedFailure(result.error())) {
      if (auto cached = options.last_good->Lookup(*request)) {
        CountDegradedServe(name, data.action);
        if (auto* prov = core::CurrentProvenance()) {
          prov->degrade_tag = std::string{FailureReasonTag(result.error())};
        }
        if (cached->permitted()) return Ok();
        return Error{ErrCode::kAuthorizationDenied,
                     cached->reason + " [degraded: last-good cache]"};
      }
    }
    return result;
  };
}

}  // namespace gridauthz::fault
