#include "fault/breaker.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace gridauthz::fault {

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(std::string backend,
                               CircuitBreakerOptions options,
                               const Clock* clock)
    : backend_(std::move(backend)), options_(options), clock_(clock) {
  obs::Metrics()
      .GetGauge("breaker_state", {{"backend", backend_}})
      .Set(static_cast<std::int64_t>(state_));
}

void CircuitBreaker::TransitionLocked(BreakerState to) {
  if (state_ == to) return;
  state_ = to;
  obs::Metrics()
      .GetGauge("breaker_state", {{"backend", backend_}})
      .Set(static_cast<std::int64_t>(to));
  obs::Metrics()
      .GetCounter("breaker_transitions_total",
                  {{"backend", backend_}, {"to", std::string{to_string(to)}}})
      .Increment();
  GA_LOG(kInfo, "fault") << "breaker '" << backend_ << "' -> "
                         << to_string(to);
  if (to == BreakerState::kOpen) {
    opened_at_us_ = clock_->NowMicros();
    window_.clear();
  } else if (to == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;
    half_open_successes_ = 0;
  } else {  // closed
    window_.clear();
  }
}

void CircuitBreaker::PruneLocked(std::int64_t now_us) {
  while (!window_.empty() && window_.front().at_us < now_us - options_.window_us) {
    window_.pop_front();
  }
}

double CircuitBreaker::FailureRateLocked() const {
  if (window_.empty()) return 0.0;
  std::size_t failures = 0;
  for (const Sample& sample : window_) {
    if (!sample.ok) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(window_.size());
}

bool CircuitBreaker::Allow() {
  std::lock_guard lock(mu_);
  const std::int64_t now = clock_->NowMicros();
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now - opened_at_us_ >= options_.open_cooldown_us) {
        TransitionLocked(BreakerState::kHalfOpen);
        probe_in_flight_ = true;
        return true;
      }
      obs::Metrics()
          .GetCounter("breaker_rejected_total", {{"backend", backend_}})
          .Increment();
      return false;
    case BreakerState::kHalfOpen:
      // Compare-and-set on the probe token under the state lock: the
      // first caller takes it, everyone else is rejected until the
      // probe's fate is recorded.
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      obs::Metrics()
          .GetCounter("breaker_rejected_total", {{"backend", backend_}})
          .Increment();
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard lock(mu_);
  const std::int64_t now = clock_->NowMicros();
  if (state_ == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;  // release the token: next probe may go
    if (++half_open_successes_ >= options_.half_open_successes) {
      TransitionLocked(BreakerState::kClosed);
    }
    return;
  }
  window_.push_back({now, true});
  PruneLocked(now);
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard lock(mu_);
  const std::int64_t now = clock_->NowMicros();
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: the backend is still sick.
    TransitionLocked(BreakerState::kOpen);
    return;
  }
  if (state_ == BreakerState::kOpen) return;
  window_.push_back({now, false});
  PruneLocked(now);
  if (static_cast<int>(window_.size()) >= options_.min_calls &&
      FailureRateLocked() >= options_.failure_rate_threshold) {
    TransitionLocked(BreakerState::kOpen);
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard lock(mu_);
  return state_;
}

void CircuitBreaker::ForceOpen() {
  std::lock_guard lock(mu_);
  TransitionLocked(BreakerState::kOpen);
}

}  // namespace gridauthz::fault
