#include "fault/fault.h"

#include <charconv>

#include "common/config.h"
#include "obs/metrics.h"

namespace gridauthz::fault {

namespace {

Expected<std::int64_t> ParseInt(const std::string& text,
                                std::string_view what) {
  std::int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Error{ErrCode::kParseError, "fault plan: " + std::string{what} +
                                           " is not an integer: " + text};
  }
  return value;
}

Expected<double> ParseRate(const std::string& text, std::string_view what) {
  double value = 0.0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Error{ErrCode::kParseError, "fault plan: " + std::string{what} +
                                           " is not a number: " + text};
  }
  if (value < 0.0 || value > 1.0) {
    return Error{ErrCode::kParseError, "fault plan: " + std::string{what} +
                                           " must be in [0, 1]: " + text};
  }
  return value;
}

std::uint64_t HashName(std::string_view name) {
  // FNV-1a, for deriving per-target RNG streams from the plan seed.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void CountInjected(const std::string& target, std::string_view kind) {
  obs::Metrics()
      .GetCounter("fault_injected_total",
                  {{"target", target}, {"kind", std::string{kind}}})
      .Increment();
}

}  // namespace

Expected<FaultPlan> FaultPlan::Parse(std::string_view config_text) {
  GA_TRY(std::vector<ConfigEntry> entries, ParseConfig(config_text, 2));
  FaultPlan plan;
  for (const ConfigEntry& entry : entries) {
    const std::string line = " (line " + std::to_string(entry.line_number) + ")";
    if (entry.tokens.size() == 2 && entry.tokens[0] == "seed") {
      GA_TRY(std::int64_t seed, ParseInt(entry.tokens[1], "seed" + line));
      plan.seed = static_cast<std::uint64_t>(seed);
      continue;
    }
    if (entry.tokens.size() != 3) {
      return Error{ErrCode::kParseError,
                   "fault plan: expected '<target> <directive> <value>'" +
                       line};
    }
    FaultSpec& spec = plan.targets[entry.tokens[0]];
    const std::string& directive = entry.tokens[1];
    const std::string& value = entry.tokens[2];
    if (directive == "latency-us") {
      GA_TRY(spec.latency_us, ParseInt(value, "latency-us" + line));
      if (spec.latency_us < 0) {
        return Error{ErrCode::kParseError,
                     "fault plan: latency-us must be >= 0" + line};
      }
    } else if (directive == "latency-jitter-us") {
      GA_TRY(spec.latency_jitter_us,
             ParseInt(value, "latency-jitter-us" + line));
      if (spec.latency_jitter_us < 0) {
        return Error{ErrCode::kParseError,
                     "fault plan: latency-jitter-us must be >= 0" + line};
      }
    } else if (directive == "transient-rate") {
      GA_TRY(spec.transient_rate, ParseRate(value, "transient-rate" + line));
    } else if (directive == "transient-code") {
      if (value == "unavailable") {
        spec.transient_code = ErrCode::kUnavailable;
      } else if (value == "internal") {
        spec.transient_code = ErrCode::kInternal;
      } else if (value == "system-failure") {
        spec.transient_code = ErrCode::kAuthorizationSystemFailure;
      } else {
        return Error{ErrCode::kParseError,
                     "fault plan: unknown transient-code '" + value + "'" +
                         line};
      }
    } else if (directive == "corrupt-rate") {
      GA_TRY(spec.corrupt_rate, ParseRate(value, "corrupt-rate" + line));
    } else if (directive == "outage-after") {
      GA_TRY(spec.outage_after, ParseInt(value, "outage-after" + line));
      if (spec.outage_after < 0) {
        return Error{ErrCode::kParseError,
                     "fault plan: outage-after must be >= 0" + line};
      }
    } else {
      return Error{ErrCode::kParseError,
                   "fault plan: unknown directive '" + directive + "'" + line};
    }
  }
  return plan;
}

const FaultSpec* FaultPlan::FindTarget(std::string_view name) const {
  auto it = targets.find(std::string{name});
  return it == targets.end() ? nullptr : &it->second;
}

FaultInjector::FaultInjector(std::string target, FaultSpec spec,
                             std::uint64_t plan_seed, SimClock* sim)
    : target_(std::move(target)),
      spec_(spec),
      sim_(sim),
      rng_(plan_seed ^ HashName(target_)) {}

FaultInjector::Outcome FaultInjector::NextCall() {
  std::lock_guard lock(mu_);
  ++calls_;
  Outcome outcome;

  outcome.latency_us = spec_.latency_us;
  if (spec_.latency_jitter_us > 0) {
    outcome.latency_us += rng_.NextBelow(spec_.latency_jitter_us);
  }
  if (outcome.latency_us > 0) {
    if (sim_ != nullptr) sim_->AdvanceMicros(outcome.latency_us);
    CountInjected(target_, "latency");
  }

  if (spec_.outage_after >= 0 &&
      calls_ > static_cast<std::uint64_t>(spec_.outage_after)) {
    CountInjected(target_, "outage");
    outcome.error = Error{ErrCode::kUnavailable,
                          "fault: target '" + target_ + "' is down (outage)"};
    return outcome;
  }
  if (spec_.transient_rate > 0.0 && rng_.NextUnit() < spec_.transient_rate) {
    CountInjected(target_, "transient");
    outcome.error =
        Error{spec_.transient_code,
              "fault: transient failure from target '" + target_ + "'"};
    return outcome;
  }
  if (spec_.corrupt_rate > 0.0 && rng_.NextUnit() < spec_.corrupt_rate) {
    CountInjected(target_, "corrupt");
    outcome.corrupt = true;
  }
  return outcome;
}

std::uint64_t FaultInjector::calls() const {
  std::lock_guard lock(mu_);
  return calls_;
}

std::shared_ptr<FaultInjector> MakeInjector(const FaultPlan& plan,
                                            const std::string& target,
                                            SimClock* sim) {
  const FaultSpec* spec = plan.FindTarget(target);
  return std::make_shared<FaultInjector>(target, spec ? *spec : FaultSpec{},
                                         plan.seed, sim);
}

std::string CorruptFrame(std::string_view frame, FaultRng& rng) {
  // Drop the protocol-version line and splice random bytes: guaranteed
  // unparseable, deterministically shaped.
  std::string out = "x-corrupt ";
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>('!' + rng.NextBelow(90)));
  }
  if (!frame.empty()) {
    out.append(frame.substr(frame.size() / 2));
  }
  return out;
}

}  // namespace gridauthz::fault
