#include "fault/degrade.h"

#include "obs/metrics.h"

namespace gridauthz::fault {

bool IsManagementAction(std::string_view action) {
  return core::IsManagementAction(action);
}

LastGoodCache::LastGoodCache(LastGoodCacheOptions options, const Clock* clock)
    : options_(options), clock_(clock) {}

std::string LastGoodCache::Key(const core::AuthorizationRequest& request) {
  // Subject, action, and job are what management policies key on; the
  // job RSL is fixed for a running job.
  return request.subject + '\n' + request.action + '\n' + request.job_id +
         '\n' + request.job_owner;
}

void LastGoodCache::Record(const core::AuthorizationRequest& request,
                           const core::Decision& decision) {
  if (!IsManagementAction(request.action)) return;
  std::lock_guard lock(mu_);
  const std::string key = Key(request);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.decision = decision;
    it->second.stored_at_us = clock_->NowMicros();
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  if (entries_.size() >= options_.capacity && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entries_[key] = Entry{decision, clock_->NowMicros(), lru_.begin()};
}

std::optional<core::Decision> LastGoodCache::Lookup(
    const core::AuthorizationRequest& request) const {
  if (!IsManagementAction(request.action)) return std::nullopt;
  std::lock_guard lock(mu_);
  auto it = entries_.find(Key(request));
  if (it == entries_.end()) return std::nullopt;
  if (clock_->NowMicros() - it->second.stored_at_us > options_.ttl_us) {
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.decision;
}

std::size_t LastGoodCache::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

}  // namespace gridauthz::fault
