// Deterministic fault injection for the authorization path.
//
// The paper's PDP chain leans on remote services (Akenti certificate
// gathering, CAS credential issuance); the companion Akenti integration
// work reports their latency and availability as the dominant
// operational risk. To reproduce and test that regime without a network,
// a FaultPlan describes — per named target ("akenti", "cas", "wire") —
// injected latency, transient errors, a permanent outage, and corrupt
// replies. Plans parse from config text (same line-oriented surface as
// the callout configuration), drive a seeded PRNG, and advance a
// SimClock for injected latency, so every fault sequence is exactly
// reproducible from (plan text, seed).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/error.h"

namespace gridauthz::fault {

// splitmix64: tiny, seedable, and identical on every platform — fault
// schedules must not depend on libstdc++'s distribution implementations.
class FaultRng {
 public:
  explicit FaultRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  // Uniform in [0, 1).
  double NextUnit() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }
  std::int64_t NextBelow(std::int64_t n) {
    return n <= 0 ? 0 : static_cast<std::int64_t>(Next() % static_cast<std::uint64_t>(n));
  }

 private:
  std::uint64_t state_;
};

// What one target injects. Faults are checked in severity order:
// outage, then transient, then corrupt; latency applies to every call
// that reaches the backend (including failing ones — a slow failure is
// the expensive kind).
struct FaultSpec {
  std::int64_t latency_us = 0;         // fixed injected latency per call
  std::int64_t latency_jitter_us = 0;  // plus uniform [0, jitter)
  double transient_rate = 0.0;         // P(call fails with transient_code)
  ErrCode transient_code = ErrCode::kUnavailable;
  double corrupt_rate = 0.0;           // P(reply is corrupted)
  std::int64_t outage_after = -1;      // calls served before the target
                                       // dies permanently; -1 = never
};

// A parsed fault plan: a PRNG seed plus per-target specs.
//
// Config grammar (line-oriented, '#' comments, like the callout config):
//   seed <uint>
//   <target> latency-us <n>
//   <target> latency-jitter-us <n>
//   <target> transient-rate <0..1>
//   <target> transient-code unavailable|internal|system-failure
//   <target> corrupt-rate <0..1>
//   <target> outage-after <n>
struct FaultPlan {
  std::uint64_t seed = 1;
  std::map<std::string, FaultSpec> targets;

  // Parses config text; anything malformed (unknown directive, rate
  // outside [0,1], non-numeric value) is kParseError, never a crash.
  static Expected<FaultPlan> Parse(std::string_view config_text);

  const FaultSpec* FindTarget(std::string_view name) const;
};

// Stateful per-target injector. Thread-safe; the per-target RNG stream
// is derived from (plan seed, target name) so targets fail independently
// but reproducibly. When `sim` is set, injected latency advances it —
// the simulation's way of making a slow backend consume the caller's
// deadline budget.
class FaultInjector {
 public:
  FaultInjector(std::string target, FaultSpec spec, std::uint64_t plan_seed,
                SimClock* sim = nullptr);

  // The fate of one backend call.
  struct Outcome {
    std::int64_t latency_us = 0;        // already applied to the SimClock
    std::optional<Error> error;         // transient or outage failure
    bool corrupt = false;               // deliver a mangled reply instead
  };
  Outcome NextCall();

  const std::string& target() const { return target_; }
  std::uint64_t calls() const;

 private:
  std::string target_;
  FaultSpec spec_;
  SimClock* sim_;
  mutable std::mutex mu_;
  FaultRng rng_;
  std::uint64_t calls_ = 0;
};

// Builds the injector for `target` out of `plan` (an empty spec — no
// faults — when the plan does not mention the target).
std::shared_ptr<FaultInjector> MakeInjector(const FaultPlan& plan,
                                            const std::string& target,
                                            SimClock* sim = nullptr);

// Deterministically mangles `frame` (used for corrupt wire replies): the
// result is never a parseable wire frame.
std::string CorruptFrame(std::string_view frame, FaultRng& rng);

}  // namespace gridauthz::fault
