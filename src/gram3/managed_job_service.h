// A GT3-style Managed Job Service — the architecture the paper's
// conclusion points to: "a new version of GRAM ... as part of GT3 ...
// offers some enhancements that we see benefiting our work. For example,
// the job description is available to a trusted service as part of job
// creation, which allows it to configure the local account, and creates
// potential for better integration with dynamic accounts."
//
// Differences from the GT2 path (src/gram), each fixing an analysis-
// section problem:
//
//  * TRUST MODEL (section 6.2): the service runs with its own host
//    credential, not the job initiator's delegated credential. Clients
//    authenticate the *service*; management actions authorized by VO
//    policy execute with service privileges, so a VO administrator CAN
//    raise a job's priority beyond the initiator's account rights —
//    impossible through the GT2 JMI.
//  * ACCOUNT CONFIGURATION: because the trusted service sees the job
//    description before the account is chosen, it can lease a dynamic
//    account and configure it for this request, and derive a sandbox from
//    the job description for continuous enforcement (section 6.1).
//  * The PEP is mandatory, not an add-on: every create/management request
//    goes through the authorization callout.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/error.h"
#include "gram/callout.h"
#include "gram/gatekeeper.h"
#include "gram/jobmanager.h"
#include "gram/protocol.h"
#include "gridmap/gridmap.h"
#include "gsi/security_context.h"
#include "os/scheduler.h"
#include "sandbox/sandbox.h"

namespace gridauthz::gram3 {

// One managed job's server-side state.
struct ManagedJob {
  std::string handle;          // service-scoped job handle
  std::string owner_identity;  // Grid identity of the creator
  std::string local_account;
  bool account_leased = false;  // true if from the dynamic pool
  rsl::Conjunction job_rsl;
  os::LocalJobId local_job_id = 0;
};

class ManagedJobService {
 public:
  struct Params {
    std::string service_name = "managed-job-service";
    gsi::Credential service_credential;  // the TRUSTED identity
    const gsi::TrustRegistry* trust = nullptr;
    os::SimScheduler* scheduler = nullptr;
    os::AccountRegistry* accounts = nullptr;
    const Clock* clock = nullptr;
    // Mandatory PEP: the kJobManagerAuthzType binding decides everything.
    gram::CalloutDispatcher* callouts = nullptr;
    // Static mappings still work; users absent from the gridmap get a
    // dynamic account when a pool is configured.
    const gridmap::GridMap* gridmap = nullptr;
    sandbox::DynamicAccountPool* account_pool = nullptr;
    // When true, a sandbox derived from the job's own RSL caps the job at
    // submission (maxtime/maxmemory/count become enforced limits).
    bool derive_sandbox = true;
  };

  explicit ManagedJobService(Params params);

  // Creates (authorizes, places, and starts) a job for the authenticated
  // client. Returns the job handle.
  Expected<std::string> CreateJob(const gsi::Credential& client,
                                  const std::string& rsl_text);

  // Management requests; every one is PEP-authorized for the caller.
  Expected<gram::JobStatusReply> Status(const gsi::Credential& client,
                                        const std::string& handle);
  Expected<void> Cancel(const gsi::Credential& client,
                        const std::string& handle);
  Expected<void> Signal(const gsi::Credential& client,
                        const std::string& handle,
                        const gram::SignalRequest& signal);

  // The identity clients see when they authenticate the service — the
  // service's own, NOT the job owner's (the GT3 trust-model shift).
  const gsi::DistinguishedName& service_identity() const {
    return params_.service_credential.identity();
  }

  // Releases dynamic accounts of terminal jobs back to the pool;
  // returns how many were recycled. (Called internally after state
  // changes; exposed for housekeeping and tests.)
  int ReclaimAccounts();

  std::size_t job_count() const { return jobs_.size(); }

 private:
  struct AuthenticatedClient {
    gram::RequesterInfo requester;
    std::optional<gsi::Credential> delegated;
  };

  Expected<AuthenticatedClient> Authenticate(const gsi::Credential& client,
                                             bool delegate);
  Expected<void> Authorize(const gram::RequesterInfo& requester,
                           std::string_view action, const ManagedJob* job,
                           const rsl::Conjunction& rsl);
  Expected<std::string> PlaceAccount(const std::string& owner_identity,
                                     const rsl::Conjunction& job_rsl,
                                     bool* leased);
  Expected<ManagedJob*> FindJob(const std::string& handle);

  Params params_;
  std::map<std::string, ManagedJob> jobs_;
  std::uint64_t next_handle_ = 1;
};

}  // namespace gridauthz::gram3
