#include "gram3/managed_job_service.h"

#include <charconv>

#include "common/logging.h"
#include "core/request.h"

namespace gridauthz::gram3 {

ManagedJobService::ManagedJobService(Params params)
    : params_(std::move(params)) {}

Expected<ManagedJobService::AuthenticatedClient>
ManagedJobService::Authenticate(const gsi::Credential& client, bool delegate) {
  GA_TRY(gsi::HandshakeResult handshake,
         gsi::EstablishSecurityContext(client, params_.service_credential,
                                       *params_.trust, params_.clock->Now(),
                                       delegate));
  AuthenticatedClient out;
  out.requester = gram::MakeRequesterInfo(handshake.acceptor_view);
  out.delegated = handshake.acceptor_view.delegated_credential;
  return out;
}

Expected<void> ManagedJobService::Authorize(
    const gram::RequesterInfo& requester, std::string_view action,
    const ManagedJob* job, const rsl::Conjunction& rsl) {
  if (params_.callouts == nullptr ||
      !params_.callouts->HasBinding(gram::kJobManagerAuthzType)) {
    // The GT3 design has no pre-PEP fallback: fail closed.
    return Error{ErrCode::kAuthorizationSystemFailure,
                 "managed job service has no authorization callout bound"};
  }
  gram::CalloutData data;
  data.requester_identity = requester.identity;
  data.requester_attributes = requester.attributes;
  data.requester_restriction_policy = requester.restriction_policy;
  data.job_owner_identity =
      job == nullptr ? requester.identity : job->owner_identity;
  data.action = action;
  data.job_id = job == nullptr ? "" : job->handle;
  data.rsl = rsl.empty() ? "" : rsl.ToString();
  return params_.callouts->Invoke(gram::kJobManagerAuthzType, data);
}

Expected<std::string> ManagedJobService::PlaceAccount(
    const std::string& owner_identity, const rsl::Conjunction& job_rsl,
    bool* leased) {
  *leased = false;
  // Static mapping first.
  if (params_.gridmap != nullptr) {
    auto dn = gsi::DistinguishedName::Parse(owner_identity);
    if (dn.ok()) {
      if (auto account = params_.gridmap->DefaultAccount(*dn); account.ok()) {
        return *account;
      }
    }
  }
  // Otherwise lease a dynamic account, configured from the job
  // description the trusted service already holds.
  if (params_.account_pool == nullptr) {
    return Error{ErrCode::kAuthorizationDenied,
                 "no local account for " + owner_identity +
                     " and no dynamic account pool configured"};
  }
  os::ResourceLimits limits;
  sandbox::SandboxPolicy derived = sandbox::SandboxFromAssertions(job_rsl);
  if (derived.max_count) limits.max_cpus_per_job = *derived.max_count;
  if (derived.max_memory_mb) limits.max_memory_mb = *derived.max_memory_mb;
  GA_TRY(std::string account,
         params_.account_pool->Lease(owner_identity, {"vo-dynamic"}, limits));
  *leased = true;
  GA_LOG(kInfo, "mjs") << "leased dynamic account '" << account << "' for "
                       << owner_identity;
  return account;
}

namespace {

Expected<os::JobSpec> BuildJobSpec(const rsl::Conjunction& job_rsl) {
  os::JobSpec spec;
  auto executable = job_rsl.GetValue("executable");
  if (!executable) {
    return Error{ErrCode::kParseError, "RSL must specify an executable"};
  }
  spec.executable = *executable;
  spec.directory = job_rsl.GetValue("directory").value_or("");
  auto parse_int = [&](std::string_view attr) -> std::optional<std::int64_t> {
    auto value = job_rsl.GetValue(attr);
    if (!value) return std::nullopt;
    std::int64_t out = 0;
    auto [ptr, ec] =
        std::from_chars(value->data(), value->data() + value->size(), out);
    if (ec != std::errc{} || ptr != value->data() + value->size()) {
      return std::nullopt;
    }
    return out;
  };
  if (auto count = parse_int("count")) spec.count = static_cast<int>(*count);
  if (auto memory = parse_int("maxmemory")) spec.memory_mb = *memory;
  if (auto max_time = parse_int("maxtime")) spec.max_wall_time = *max_time;
  if (auto duration = parse_int("simduration")) spec.wall_duration = *duration;
  if (auto queue = job_rsl.GetValue("queue")) spec.queue = *queue;
  return spec;
}

}  // namespace

Expected<std::string> ManagedJobService::CreateJob(
    const gsi::Credential& client, const std::string& rsl_text) {
  GA_TRY(AuthenticatedClient authenticated,
         Authenticate(client, /*delegate=*/true));
  if (authenticated.requester.limited_proxy) {
    return Error{ErrCode::kAuthenticationFailed,
                 "limited proxy may not be used to create a job"};
  }

  auto parsed = rsl::ParseConjunction(rsl_text);
  if (!parsed.ok()) return parsed.error();
  rsl::Conjunction job_rsl = std::move(parsed).value();
  if (!job_rsl.GetValue("count")) {
    job_rsl.Add("count", rsl::RelOp::kEq, "1");
  }

  // The PEP sees the full job description at creation time.
  GA_TRY_VOID(Authorize(authenticated.requester, core::kActionStart,
                        /*job=*/nullptr, job_rsl));

  bool leased = false;
  GA_TRY(std::string account,
         PlaceAccount(authenticated.requester.identity, job_rsl, &leased));

  GA_TRY(os::JobSpec spec, BuildJobSpec(job_rsl));
  if (params_.derive_sandbox) {
    sandbox::Sandbox box{sandbox::SandboxFromAssertions(job_rsl)};
    auto tightened = box.Apply(spec);
    if (!tightened.ok()) {
      if (leased) (void)params_.account_pool->Release(account);
      return tightened.error();
    }
    spec = std::move(tightened).value();
  }

  auto submitted = params_.scheduler->Submit(account, spec);
  if (!submitted.ok()) {
    if (leased) (void)params_.account_pool->Release(account);
    return submitted.error();
  }

  ManagedJob job;
  job.handle = "https://" + params_.service_name + "/job/" +
               std::to_string(next_handle_++);
  job.owner_identity = authenticated.requester.identity;
  job.local_account = account;
  job.account_leased = leased;
  job.job_rsl = std::move(job_rsl);
  job.local_job_id = *submitted;
  std::string handle = job.handle;
  jobs_.emplace(handle, std::move(job));
  GA_LOG(kInfo, "mjs") << "created job " << handle << " for "
                       << authenticated.requester.identity << " on account '"
                       << account << "'";
  return handle;
}

Expected<ManagedJob*> ManagedJobService::FindJob(const std::string& handle) {
  auto it = jobs_.find(handle);
  if (it == jobs_.end()) {
    return Error{ErrCode::kNotFound, "no such job handle: " + handle};
  }
  return &it->second;
}

Expected<gram::JobStatusReply> ManagedJobService::Status(
    const gsi::Credential& client, const std::string& handle) {
  GA_TRY(AuthenticatedClient authenticated,
         Authenticate(client, /*delegate=*/false));
  GA_TRY(ManagedJob * job, FindJob(handle));
  GA_TRY_VOID(Authorize(authenticated.requester, core::kActionInformation,
                        job, job->job_rsl));
  GA_TRY(os::JobRecord record, params_.scheduler->Status(job->local_job_id));
  gram::JobStatusReply reply;
  reply.status = gram::FromLrmState(record.state);
  reply.job_contact = job->handle;
  reply.job_owner = job->owner_identity;
  reply.jobtag = job->job_rsl.GetValue("jobtag");
  reply.failure_reason = record.failure_reason;
  ReclaimAccounts();
  return reply;
}

Expected<void> ManagedJobService::Cancel(const gsi::Credential& client,
                                         const std::string& handle) {
  GA_TRY(AuthenticatedClient authenticated,
         Authenticate(client, /*delegate=*/false));
  GA_TRY(ManagedJob * job, FindJob(handle));
  GA_TRY_VOID(
      Authorize(authenticated.requester, core::kActionCancel, job,
                job->job_rsl));
  GA_TRY_VOID(params_.scheduler->Cancel(job->local_job_id));
  ReclaimAccounts();
  return Ok();
}

Expected<void> ManagedJobService::Signal(const gsi::Credential& client,
                                         const std::string& handle,
                                         const gram::SignalRequest& signal) {
  GA_TRY(AuthenticatedClient authenticated,
         Authenticate(client, /*delegate=*/false));
  GA_TRY(ManagedJob * job, FindJob(handle));
  GA_TRY_VOID(
      Authorize(authenticated.requester, core::kActionSignal, job,
                job->job_rsl));
  switch (signal.kind) {
    case gram::SignalKind::kSuspend:
      return params_.scheduler->Suspend(job->local_job_id);
    case gram::SignalKind::kResume:
      return params_.scheduler->Resume(job->local_job_id);
    case gram::SignalKind::kPriority:
      // The trusted service acts with ITS OWN privileges: a VO-authorized
      // priority change is applied even beyond the initiator's account
      // rights — the capability the GT2 JMI cannot provide (section 6.2).
      return params_.scheduler->SetPriority(job->local_job_id,
                                            signal.priority);
  }
  return Error{ErrCode::kInvalidArgument, "unknown signal"};
}

int ManagedJobService::ReclaimAccounts() {
  if (params_.account_pool == nullptr) return 0;
  int reclaimed = 0;
  for (auto& [handle, job] : jobs_) {
    if (!job.account_leased) continue;
    auto record = params_.scheduler->Status(job.local_job_id);
    if (record.ok() && os::IsTerminal(record->state)) {
      if (params_.account_pool->Release(job.local_account).ok()) {
        job.account_leased = false;
        ++reclaimed;
        GA_LOG(kInfo, "mjs") << "recycled account '" << job.local_account
                             << "' from finished job " << handle;
      }
    }
  }
  return reclaimed;
}

}  // namespace gridauthz::gram3
