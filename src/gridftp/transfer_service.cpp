#include "gridftp/transfer_service.h"

#include "common/logging.h"

namespace gridauthz::gridftp {

core::AuthorizationRequest MakeTransferRequest(const std::string& subject,
                                               std::string_view action,
                                               const std::string& path,
                                               std::int64_t size_mb) {
  core::AuthorizationRequest request;
  request.subject = subject;
  request.action = std::string{action};
  request.job_owner = subject;
  rsl::Conjunction description;
  description.Add("path", rsl::RelOp::kEq, path);
  if (size_mb >= 0) {
    description.Add("size", rsl::RelOp::kEq, std::to_string(size_mb));
  }
  request.job_rsl = std::move(description);
  return request;
}

FileTransferService::FileTransferService(Params params)
    : params_(std::move(params)) {}

Expected<FileTransferService::Session> FileTransferService::Authenticate(
    const gsi::Credential& client) {
  GA_TRY(gsi::HandshakeResult handshake,
         gsi::EstablishSecurityContext(client, params_.host_credential,
                                       *params_.trust, params_.clock->Now()));
  const gsi::SecurityContext& context = handshake.acceptor_view;
  Session session;
  session.identity = context.peer_identity.str();
  session.restriction_policy = context.peer_restriction_policy();
  GA_TRY(gsi::DistinguishedName dn,
         gsi::DistinguishedName::Parse(session.identity));
  GA_TRY(session.account, params_.gridmap->DefaultAccount(dn));
  return session;
}

Expected<void> FileTransferService::Authorize(const Session& session,
                                              std::string_view action,
                                              const std::string& path,
                                              std::int64_t size_mb) {
  if (params_.callouts == nullptr ||
      !params_.callouts->HasBinding(kGridFtpAuthzType)) {
    return Ok();  // stock: gridmap + account enforcement only
  }
  core::AuthorizationRequest request =
      MakeTransferRequest(session.identity, action, path, size_mb);
  gram::CalloutData data;
  data.requester_identity = session.identity;
  data.requester_restriction_policy = session.restriction_policy;
  data.job_owner_identity = session.identity;
  data.action = request.action;
  data.rsl = request.job_rsl.ToString();
  GA_LOG(kDebug, "gridftp") << "PEP callout for '" << action << "' on "
                            << path << " by " << session.identity;
  return params_.callouts->Invoke(kGridFtpAuthzType, data);
}

Expected<void> FileTransferService::Put(const gsi::Credential& client,
                                        const std::string& path,
                                        std::int64_t size_mb) {
  GA_TRY(Session session, Authenticate(client));
  GA_TRY_VOID(Authorize(session, kActionPut, path, size_mb));
  GA_TRY_VOID(params_.storage->Put(path, size_mb, session.account));
  GA_LOG(kInfo, "gridftp") << session.identity << " stored " << path << " ("
                           << size_mb << " MB) as account '" << session.account
                           << "'";
  return Ok();
}

Expected<FileInfo> FileTransferService::Get(const gsi::Credential& client,
                                            const std::string& path) {
  GA_TRY(Session session, Authenticate(client));
  GA_TRY_VOID(Authorize(session, kActionGet, path, -1));
  return params_.storage->Stat(path);
}

Expected<void> FileTransferService::Delete(const gsi::Credential& client,
                                           const std::string& path) {
  GA_TRY(Session session, Authenticate(client));
  GA_TRY_VOID(Authorize(session, kActionDelete, path, -1));
  return params_.storage->Delete(path, session.account);
}

Expected<std::vector<FileInfo>> FileTransferService::List(
    const gsi::Credential& client, const std::string& prefix) {
  GA_TRY(Session session, Authenticate(client));
  GA_TRY_VOID(Authorize(session, kActionList, prefix, -1));
  return params_.storage->List(prefix);
}

std::string FileTransferService::ObjectUrl(const std::string& path) const {
  return "gsiftp://" + params_.host + path;
}

Expected<FileTransferService::DataSession> FileTransferService::OpenDataSession(
    const gsi::Credential& client, const std::string& path_base) {
  if (params_.datapath == nullptr) {
    return Error{ErrCode::kFailedPrecondition,
                 "data-path authorizer is not configured"};
  }
  GA_TRY(Session session, Authenticate(client));
  GA_TRY(core::SessionToken minted,
         params_.datapath->MintSession(session.identity,
                                       ObjectUrl(path_base)));
  GA_LOG(kInfo, "gridftp") << session.identity
                           << " opened data session over "
                           << minted.claims.scope << " rights "
                           << core::RightsMaskToString(minted.claims.rights);
  DataSession data;
  data.identity = std::move(session.identity);
  data.account = std::move(session.account);
  data.token = std::move(minted.token);
  return data;
}

Expected<std::string> FileTransferService::NormalizeDataObject(
    const std::string& path) const {
  return core::DataPathAuthorizer::NormalizeObject(ObjectUrl(path));
}

Expected<void> FileTransferService::CheckBlock(DataSession* session,
                                               std::string_view object,
                                               core::RightsMask right) {
  auto checked = params_.datapath->Check(session->token, object, right);
  if (!checked.ok()) {
    return checked.error();
  }
  if (checked.value().refreshed.has_value()) {
    GA_LOG(kInfo, "gridftp") << session->identity
                             << " data token refreshed mid-transfer";
    session->token = std::move(*checked.value().refreshed);
  }
  return Ok();
}

Expected<void> FileTransferService::PutObject(DataSession* session,
                                              const std::string& path,
                                              std::int64_t size_mb) {
  GA_TRY(std::string object, NormalizeDataObject(path));
  GA_TRY_VOID(CheckBlock(session, object, core::kRightWrite));
  return params_.storage->Put(path, size_mb, session->account);
}

Expected<FileInfo> FileTransferService::GetObject(DataSession* session,
                                                  const std::string& path) {
  GA_TRY(std::string object, NormalizeDataObject(path));
  GA_TRY_VOID(CheckBlock(session, object, core::kRightRead));
  return params_.storage->Stat(path);
}

}  // namespace gridauthz::gridftp
