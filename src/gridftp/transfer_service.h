// A GridFTP-style file transfer service with pluggable authorization —
// the paper's conclusion in code: "We are planning to use the same
// mechanism to provide pluggable authorization in other components of
// the Globus Toolkit." The service reuses the GRAM authorization callout
// machinery verbatim (abstract type kGridFtpAuthzType) so the same VO
// policy engines — file PDP, Akenti, CAS, XACML — gate storage
// operations.
//
// Transfer requests are expressed to the PDP as RSL over the attributes
//   action ∈ {put, get, delete, list},  path,  size  (MB, for put).
// Policies govern subtrees with the evaluator's trailing-'*' prefix
// patterns: "(path = /volumes/nfc/*)".
//
// Local enforcement stays account-granular (ownership, quotas, capacity)
// exactly as the paper describes for compute resources; the PEP adds the
// fine grain on top.
#pragma once

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "core/datapath.h"
#include "core/request.h"
#include "gram/callout.h"
#include "gridftp/storage.h"
#include "gridmap/gridmap.h"
#include "gsi/security_context.h"

namespace gridauthz::gridftp {

inline constexpr std::string_view kGridFtpAuthzType = "globus_gridftp_authz";

inline constexpr std::string_view kActionPut = "put";
inline constexpr std::string_view kActionGet = "get";
inline constexpr std::string_view kActionDelete = "delete";
inline constexpr std::string_view kActionList = "list";

// Builds the authorization request the PEP evaluates for one transfer
// operation (exposed for tests and for policy authors to preview).
core::AuthorizationRequest MakeTransferRequest(const std::string& subject,
                                               std::string_view action,
                                               const std::string& path,
                                               std::int64_t size_mb = -1);

class FileTransferService {
 public:
  struct Params {
    std::string host;
    gsi::Credential host_credential;
    const gsi::TrustRegistry* trust = nullptr;
    const gridmap::GridMap* gridmap = nullptr;
    SimStorage* storage = nullptr;
    const Clock* clock = nullptr;
    // PEP; nullptr or no binding = stock behaviour (gridmap + local
    // account enforcement only).
    gram::CalloutDispatcher* callouts = nullptr;
    // Data-path fast path (DESIGN.md §17); nullptr disables
    // OpenDataSession/CheckBlock and transfers fall back to the
    // per-operation callout PEP above.
    core::DataPathAuthorizer* datapath = nullptr;
  };

  explicit FileTransferService(Params params);

  // Uploads `size_mb` to `path` as the authenticated client.
  Expected<void> Put(const gsi::Credential& client, const std::string& path,
                     std::int64_t size_mb);
  // Fetch: returns the file info (the simulated download).
  Expected<FileInfo> Get(const gsi::Credential& client,
                         const std::string& path);
  Expected<void> Delete(const gsi::Credential& client,
                        const std::string& path);
  Expected<std::vector<FileInfo>> List(const gsi::Credential& client,
                                       const std::string& prefix);

  // ----- Data-path fast path (requires Params::datapath) -----
  //
  // A data session is opened once per transfer connection: one GSI
  // handshake, one full path-scope evaluation, one capability token.
  // Every per-file/per-block check afterwards is a token verify — no
  // evaluator, no callout round-trip.
  struct DataSession {
    std::string identity;
    std::string account;
    // The live capability token. CheckBlock swaps in a refreshed token
    // when a policy-generation bump stales this one mid-transfer.
    std::string token;
  };

  // Authenticates the client and mints a capability token scoped to
  // "gsiftp://<host><path_base>". A policy deny produces a typed error
  // and no session.
  Expected<DataSession> OpenDataSession(const gsi::Credential& client,
                                        const std::string& path_base);

  // Normalizes a storage path into the object form CheckBlock expects.
  // Call once per file, then CheckBlock once per block.
  Expected<std::string> NormalizeDataObject(const std::string& path) const;

  // The per-block check: one token verify + scope/rights comparison.
  // Transparently re-mints into `session->token` on generation skew.
  Expected<void> CheckBlock(DataSession* session, std::string_view object,
                            core::RightsMask right);

  // Whole-object conveniences over the fast path; storage enforcement
  // (ownership, quota) still runs under the session account.
  Expected<void> PutObject(DataSession* session, const std::string& path,
                           std::int64_t size_mb);
  Expected<FileInfo> GetObject(DataSession* session, const std::string& path);

 private:
  struct Session {
    std::string identity;
    std::string account;
    std::optional<std::string> restriction_policy;
  };
  // Authenticates and maps the client. Unlike GRAM job startup, LIMITED
  // proxies are accepted: enabling file transfer from delegated
  // credentials is exactly what limited proxies exist for in GT2.
  Expected<Session> Authenticate(const gsi::Credential& client);
  Expected<void> Authorize(const Session& session, std::string_view action,
                           const std::string& path, std::int64_t size_mb);

  // The object URL for a storage path on this service.
  std::string ObjectUrl(const std::string& path) const;

  Params params_;
};

}  // namespace gridauthz::gridftp
