// A GridFTP-style file transfer service with pluggable authorization —
// the paper's conclusion in code: "We are planning to use the same
// mechanism to provide pluggable authorization in other components of
// the Globus Toolkit." The service reuses the GRAM authorization callout
// machinery verbatim (abstract type kGridFtpAuthzType) so the same VO
// policy engines — file PDP, Akenti, CAS, XACML — gate storage
// operations.
//
// Transfer requests are expressed to the PDP as RSL over the attributes
//   action ∈ {put, get, delete, list},  path,  size  (MB, for put).
// Policies govern subtrees with the evaluator's trailing-'*' prefix
// patterns: "(path = /volumes/nfc/*)".
//
// Local enforcement stays account-granular (ownership, quotas, capacity)
// exactly as the paper describes for compute resources; the PEP adds the
// fine grain on top.
#pragma once

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "core/request.h"
#include "gram/callout.h"
#include "gridftp/storage.h"
#include "gridmap/gridmap.h"
#include "gsi/security_context.h"

namespace gridauthz::gridftp {

inline constexpr std::string_view kGridFtpAuthzType = "globus_gridftp_authz";

inline constexpr std::string_view kActionPut = "put";
inline constexpr std::string_view kActionGet = "get";
inline constexpr std::string_view kActionDelete = "delete";
inline constexpr std::string_view kActionList = "list";

// Builds the authorization request the PEP evaluates for one transfer
// operation (exposed for tests and for policy authors to preview).
core::AuthorizationRequest MakeTransferRequest(const std::string& subject,
                                               std::string_view action,
                                               const std::string& path,
                                               std::int64_t size_mb = -1);

class FileTransferService {
 public:
  struct Params {
    std::string host;
    gsi::Credential host_credential;
    const gsi::TrustRegistry* trust = nullptr;
    const gridmap::GridMap* gridmap = nullptr;
    SimStorage* storage = nullptr;
    const Clock* clock = nullptr;
    // PEP; nullptr or no binding = stock behaviour (gridmap + local
    // account enforcement only).
    gram::CalloutDispatcher* callouts = nullptr;
  };

  explicit FileTransferService(Params params);

  // Uploads `size_mb` to `path` as the authenticated client.
  Expected<void> Put(const gsi::Credential& client, const std::string& path,
                     std::int64_t size_mb);
  // Fetch: returns the file info (the simulated download).
  Expected<FileInfo> Get(const gsi::Credential& client,
                         const std::string& path);
  Expected<void> Delete(const gsi::Credential& client,
                        const std::string& path);
  Expected<std::vector<FileInfo>> List(const gsi::Credential& client,
                                       const std::string& prefix);

 private:
  struct Session {
    std::string identity;
    std::string account;
    std::optional<std::string> restriction_policy;
  };
  // Authenticates and maps the client. Unlike GRAM job startup, LIMITED
  // proxies are accepted: enabling file transfer from delegated
  // credentials is exactly what limited proxies exist for in GT2.
  Expected<Session> Authenticate(const gsi::Credential& client);
  Expected<void> Authorize(const Session& session, std::string_view action,
                           const std::string& path, std::int64_t size_mb);

  Params params_;
};

}  // namespace gridauthz::gridftp
