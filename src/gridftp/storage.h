// A simulated storage resource (the "storage" of the paper's
// introduction: VOs share "hardware resources (e.g. CPUs and storage)").
// Files are owned by local accounts; capacity and per-account quotas are
// the local, account-granularity enforcement the paper contrasts with
// fine-grain policy.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/error.h"

namespace gridauthz::gridftp {

struct FileInfo {
  std::string path;
  std::int64_t size_mb = 0;
  std::string owner_account;
  TimePoint created = 0;
};

class SimStorage {
 public:
  explicit SimStorage(std::int64_t capacity_mb, const Clock* clock);

  // Creates or replaces a file. Enforces total capacity and the owner
  // account's quota; replacing requires the same owner account (the
  // unix-permission model — local enforcement is account-granular).
  Expected<void> Put(const std::string& path, std::int64_t size_mb,
                     const std::string& account);
  Expected<FileInfo> Stat(const std::string& path) const;
  // Deletes a file; only the owning account may (account-level rights).
  Expected<void> Delete(const std::string& path, const std::string& account);
  // Files whose path starts with `prefix`.
  std::vector<FileInfo> List(const std::string& prefix) const;

  // Per-account byte quota; -1 (default) = unlimited.
  void SetAccountQuota(const std::string& account, std::int64_t quota_mb);

  std::int64_t used_mb() const { return used_mb_; }
  std::int64_t capacity_mb() const { return capacity_mb_; }
  std::int64_t account_usage_mb(const std::string& account) const;
  std::size_t file_count() const { return files_.size(); }

 private:
  Expected<void> DoPut(const std::string& path, std::int64_t size_mb,
                       const std::string& account);
  Expected<void> DoDelete(const std::string& path, const std::string& account);

  std::int64_t capacity_mb_;
  const Clock* clock_;
  std::int64_t used_mb_ = 0;
  std::map<std::string, FileInfo> files_;
  std::map<std::string, std::int64_t> quotas_;
  std::map<std::string, std::int64_t> usage_;
};

}  // namespace gridauthz::gridftp
