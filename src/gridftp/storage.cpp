#include "gridftp/storage.h"

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::gridftp {

namespace {

std::string_view StorageOutcome(const Expected<void>& result) {
  if (result.ok()) return "ok";
  if (result.error().code() == ErrCode::kPermissionDenied) return "denied";
  return "error";
}

void CountStorageOp(std::string_view op, const Expected<void>& result) {
  obs::Metrics()
      .GetCounter("storage_ops_total", {{"op", std::string{op}},
                                        {"outcome",
                                         std::string{StorageOutcome(result)}}})
      .Increment();
}

}  // namespace

SimStorage::SimStorage(std::int64_t capacity_mb, const Clock* clock)
    : capacity_mb_(capacity_mb), clock_(clock) {}

Expected<void> SimStorage::Put(const std::string& path, std::int64_t size_mb,
                               const std::string& account) {
  obs::ScopedSpan span("storage/put");
  Expected<void> result = DoPut(path, size_mb, account);
  CountStorageOp("put", result);
  return result;
}

Expected<void> SimStorage::DoPut(const std::string& path, std::int64_t size_mb,
                                 const std::string& account) {
  if (path.empty() || path.front() != '/') {
    return Error{ErrCode::kInvalidArgument, "path must be absolute: " + path};
  }
  if (size_mb < 0) {
    return Error{ErrCode::kInvalidArgument, "negative file size"};
  }
  std::int64_t replaced_mb = 0;
  auto existing = files_.find(path);
  if (existing != files_.end()) {
    if (existing->second.owner_account != account) {
      return Error{ErrCode::kPermissionDenied,
                   "file " + path + " is owned by account '" +
                       existing->second.owner_account + "'"};
    }
    replaced_mb = existing->second.size_mb;
  }
  std::int64_t new_used = used_mb_ - replaced_mb + size_mb;
  if (new_used > capacity_mb_) {
    return Error{ErrCode::kResourceExhausted,
                 "storage full: " + std::to_string(new_used) + " of " +
                     std::to_string(capacity_mb_) + " MB"};
  }
  auto quota_it = quotas_.find(account);
  if (quota_it != quotas_.end() && quota_it->second >= 0) {
    std::int64_t account_used = usage_[account] - replaced_mb + size_mb;
    if (account_used > quota_it->second) {
      return Error{ErrCode::kResourceExhausted,
                   "account '" + account + "' over quota (" +
                       std::to_string(account_used) + " of " +
                       std::to_string(quota_it->second) + " MB)"};
    }
  }

  FileInfo info;
  info.path = path;
  info.size_mb = size_mb;
  info.owner_account = account;
  info.created = clock_->Now();
  used_mb_ = new_used;
  usage_[account] += size_mb - replaced_mb;
  files_[path] = std::move(info);
  return Ok();
}

Expected<FileInfo> SimStorage::Stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Error{ErrCode::kNotFound, "no such file: " + path};
  }
  return it->second;
}

Expected<void> SimStorage::Delete(const std::string& path,
                                  const std::string& account) {
  obs::ScopedSpan span("storage/delete");
  Expected<void> result = DoDelete(path, account);
  CountStorageOp("delete", result);
  return result;
}

Expected<void> SimStorage::DoDelete(const std::string& path,
                                    const std::string& account) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Error{ErrCode::kNotFound, "no such file: " + path};
  }
  if (it->second.owner_account != account) {
    return Error{ErrCode::kPermissionDenied,
                 "file " + path + " is owned by account '" +
                     it->second.owner_account + "'"};
  }
  used_mb_ -= it->second.size_mb;
  usage_[account] -= it->second.size_mb;
  files_.erase(it);
  return Ok();
}

std::vector<FileInfo> SimStorage::List(const std::string& prefix) const {
  std::vector<FileInfo> out;
  for (const auto& [path, info] : files_) {
    if (strings::StartsWith(path, prefix)) out.push_back(info);
  }
  return out;
}

void SimStorage::SetAccountQuota(const std::string& account,
                                 std::int64_t quota_mb) {
  quotas_[account] = quota_mb;
}

std::int64_t SimStorage::account_usage_mb(const std::string& account) const {
  auto it = usage_.find(account);
  return it == usage_.end() ? 0 : it->second;
}

}  // namespace gridauthz::gridftp
