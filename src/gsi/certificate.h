// Simulated X.509 certificates, certificate authorities, and the trust
// registry that validates certificate chains (the stand-in for GSI's PKI
// path validation).
//
// Proxy certificates follow the GSI conventions: an impersonation proxy's
// subject is its issuer's subject plus "/CN=proxy"; a limited proxy uses
// "/CN=limited proxy"; a restricted proxy ("/CN=restricted proxy") carries
// an opaque policy payload — CAS credentials are restricted proxies whose
// payload is the VO policy the CAS server granted (section 5, CAS
// integration).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "gsi/dn.h"
#include "gsi/keys.h"

namespace gridauthz::gsi {

enum class CertType {
  kCa,
  kEndEntity,
  kImpersonationProxy,
  kLimitedProxy,
  kRestrictedProxy,
};

std::string_view to_string(CertType type);
bool IsProxyType(CertType type);

struct Certificate {
  std::uint64_t serial = 0;
  CertType type = CertType::kEndEntity;
  DistinguishedName subject;
  DistinguishedName issuer;
  PublicKey subject_key;
  TimePoint not_before = 0;
  TimePoint not_after = 0;
  // Opaque policy payload; only meaningful for kRestrictedProxy.
  std::string restriction_policy;
  std::string signature;  // issuer's signature over CanonicalEncoding()

  // Deterministic byte string covering every signed field.
  std::string CanonicalEncoding() const;

  bool ValidAt(TimePoint now) const {
    return now >= not_before && now <= not_after;
  }
};

// A certificate authority: a self-signed CA certificate plus the key used
// to issue end-entity certificates.
class CertificateAuthority {
 public:
  // Creates a CA with a self-signed certificate valid for `lifetime`
  // seconds from `now`.
  CertificateAuthority(DistinguishedName name, TimePoint now,
                       Duration lifetime = 10L * 365 * 24 * 3600);

  const Certificate& certificate() const { return cert_; }
  const DistinguishedName& name() const { return cert_.subject; }

  // Issues an end-entity certificate binding `subject` to `subject_key`.
  Certificate IssueCertificate(const DistinguishedName& subject,
                               const PublicKey& subject_key,
                               TimePoint not_before, TimePoint not_after) const;

 private:
  PrivateKey key_;
  Certificate cert_;
};

// Holds trusted CA certificates and validates chains.
class TrustRegistry {
 public:
  void AddTrustedCa(Certificate ca_cert);

  // Validates a leaf-first certificate chain at time `now`:
  //   * every certificate's validity window contains `now`,
  //   * every signature verifies against the next certificate's key
  //     (proxies are signed by their parent, the end-entity certificate by
  //     a trusted CA),
  //   * proxy subject names follow the GSI naming convention,
  //   * the end-entity certificate chains to a trusted CA.
  // On success returns the effective Grid identity: the subject of the
  // end-entity certificate, with all proxy components stripped.
  Expected<DistinguishedName> ValidateChain(
      const std::vector<Certificate>& chain, TimePoint now) const;

 private:
  std::map<std::string, Certificate> cas_by_name_;
};

// Issues the next certificate serial number (process-wide).
std::uint64_t NextCertificateSerial();

}  // namespace gridauthz::gsi
