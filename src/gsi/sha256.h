// SHA-256 and HMAC-SHA-256 for the simulated GSI. The implementation
// moved to `common/hmac.{h,cpp}` so the policy core's data-path tokens
// can share it without depending on the GSI layer; this header keeps
// the historical gsi:: names alive for certificate/key code and tests.
#pragma once

#include "common/hmac.h"

namespace gridauthz::gsi {

using crypto::Digest;
using crypto::HmacSha256;
using crypto::Sha256;
using crypto::Sha256Stream;
using crypto::ToHex;

}  // namespace gridauthz::gsi
