// SHA-256 and HMAC-SHA-256, implemented from scratch (FIPS 180-4 /
// RFC 2104). The simulated GSI uses these as the cryptographic primitive
// for key fingerprints and signatures; no external crypto library is
// available offline.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace gridauthz::gsi {

using Digest = std::array<std::uint8_t, 32>;

// One-shot SHA-256 of `data`.
Digest Sha256(std::string_view data);

// HMAC-SHA-256 with arbitrary-length `key`.
Digest HmacSha256(std::string_view key, std::string_view data);

// Lowercase hex rendering of a digest.
std::string ToHex(const Digest& digest);

// Incremental interface, used for canonical certificate encodings.
class Sha256Stream {
 public:
  Sha256Stream();
  void Update(std::string_view data);
  Digest Finish();

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace gridauthz::gsi
