#include "gsi/security_context.h"

#include "common/logging.h"

namespace gridauthz::gsi {

namespace {

// One direction of the handshake: `prover` signs a challenge, `trust`
// validates the chain, and the signature is checked against the leaf key.
Expected<DistinguishedName> AuthenticateOneSide(const Credential& prover,
                                                const TrustRegistry& trust,
                                                TimePoint now,
                                                std::string_view challenge) {
  if (prover.empty()) {
    return Error{ErrCode::kAuthenticationFailed, "no credential presented"};
  }
  GA_TRY(DistinguishedName identity,
         trust.ValidateChain(prover.chain(), now));
  // Proof of possession: signature over the challenge must verify against
  // the leaf certificate's public key.
  std::string signature = prover.Sign(challenge);
  if (!VerifySignature(prover.leaf().subject_key, challenge, signature)) {
    return Error{ErrCode::kAuthenticationFailed,
                 "proof of possession failed for " + identity.str()};
  }
  return identity;
}

}  // namespace

Expected<HandshakeResult> EstablishSecurityContext(
    const Credential& initiator, const Credential& acceptor,
    const TrustRegistry& trust, TimePoint now, bool delegate,
    Duration delegation_lifetime) {
  const std::string challenge =
      "gsi-handshake/" + std::to_string(now) + "/" +
      (initiator.empty() ? "?" : initiator.leaf().subject.str()) + "->" +
      (acceptor.empty() ? "?" : acceptor.leaf().subject.str());

  GA_TRY(DistinguishedName initiator_identity,
         AuthenticateOneSide(initiator, trust, now, challenge));
  GA_TRY(DistinguishedName acceptor_identity,
         AuthenticateOneSide(acceptor, trust, now, challenge));

  HandshakeResult result;
  result.initiator_view.peer_identity = acceptor_identity;
  result.initiator_view.peer_chain = acceptor.chain();
  result.acceptor_view.peer_identity = initiator_identity;
  result.acceptor_view.peer_chain = initiator.chain();

  if (delegate) {
    GA_TRY(Credential delegated,
           initiator.GenerateProxy(now, delegation_lifetime));
    result.acceptor_view.delegated_credential = std::move(delegated);
  }

  GA_LOG(kDebug, "gsi") << "security context established: "
                        << initiator_identity.str() << " <-> "
                        << acceptor_identity.str()
                        << (delegate ? " (with delegation)" : "");
  return result;
}

}  // namespace gridauthz::gsi
