#include "gsi/credential.h"

namespace gridauthz::gsi {

namespace {
DistinguishedName EffectiveIdentity(const std::vector<Certificate>& chain) {
  for (const Certificate& cert : chain) {
    if (!IsProxyType(cert.type)) return cert.subject;
  }
  return chain.empty() ? DistinguishedName{} : chain.back().subject;
}
}  // namespace

Credential::Credential(std::vector<Certificate> chain, PrivateKey key)
    : chain_(std::move(chain)),
      key_(std::move(key)),
      identity_(EffectiveIdentity(chain_)) {}

bool Credential::IsLimited() const {
  for (const Certificate& cert : chain_) {
    if (cert.type == CertType::kLimitedProxy) return true;
  }
  return false;
}

std::optional<std::string> Credential::RestrictionPolicy() const {
  if (!chain_.empty() && chain_.front().type == CertType::kRestrictedProxy) {
    return chain_.front().restriction_policy;
  }
  return std::nullopt;
}

Expected<Credential> Credential::GenerateProxy(
    TimePoint now, Duration lifetime, CertType type,
    std::string restriction_policy) const {
  if (empty()) {
    return Error{ErrCode::kFailedPrecondition, "empty credential"};
  }
  if (!IsProxyType(type)) {
    return Error{ErrCode::kInvalidArgument, "proxy type required"};
  }
  if (type != CertType::kRestrictedProxy && !restriction_policy.empty()) {
    return Error{ErrCode::kInvalidArgument,
                 "restriction policy only valid on restricted proxies"};
  }

  std::string cn;
  switch (type) {
    case CertType::kImpersonationProxy:
      cn = "proxy";
      break;
    case CertType::kLimitedProxy:
      cn = "limited proxy";
      break;
    case CertType::kRestrictedProxy:
      cn = "restricted proxy";
      break;
    default:
      return Error{ErrCode::kInternal, "unreachable"};
  }

  PrivateKey proxy_key = GenerateKey("proxy:" + identity_.str());
  Certificate proxy;
  proxy.serial = NextCertificateSerial();
  proxy.type = type;
  proxy.issuer = leaf().subject;
  proxy.subject = leaf().subject.WithComponent("CN", cn);
  proxy.subject_key = proxy_key.public_key();
  proxy.not_before = now;
  proxy.not_after = now + lifetime;
  proxy.restriction_policy = std::move(restriction_policy);
  proxy.signature = key_.Sign(proxy.CanonicalEncoding());

  std::vector<Certificate> new_chain;
  new_chain.reserve(chain_.size() + 1);
  new_chain.push_back(std::move(proxy));
  new_chain.insert(new_chain.end(), chain_.begin(), chain_.end());
  return Credential{std::move(new_chain), std::move(proxy_key)};
}

Credential IssueCredential(const CertificateAuthority& ca,
                           const DistinguishedName& subject, TimePoint now,
                           Duration lifetime) {
  PrivateKey key = GenerateKey("eec:" + subject.str());
  Certificate cert =
      ca.IssueCertificate(subject, key.public_key(), now, now + lifetime);
  return Credential{{std::move(cert)}, std::move(key)};
}

}  // namespace gridauthz::gsi
