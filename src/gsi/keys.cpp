#include "gsi/keys.h"

#include <atomic>

namespace gridauthz::gsi {

PrivateKey::PrivateKey(std::string bytes) : bytes_(std::move(bytes)) {
  public_key_.fingerprint = ToHex(Sha256(bytes_));
}

std::string PrivateKey::Sign(std::string_view message) const {
  return ToHex(HmacSha256(bytes_, message));
}

PrivateKey GenerateKey(std::string_view label) {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  std::string seed = "gridauthz-key/";
  seed += label;
  seed += '/';
  seed += std::to_string(n);
  PrivateKey key{ToHex(Sha256(seed))};
  KeyStore::Instance().Register(key);
  return key;
}

bool VerifySignature(const PublicKey& key, std::string_view message,
                     std::string_view signature) {
  auto bytes = KeyStore::Instance().PrivateBytes(key);
  if (!bytes.ok()) return false;
  return ToHex(HmacSha256(*bytes, message)) == signature;
}

KeyStore& KeyStore::Instance() {
  static KeyStore instance;
  return instance;
}

void KeyStore::Register(const PrivateKey& key) {
  std::lock_guard lock(mu_);
  bytes_by_fingerprint_[key.public_key().fingerprint] = key.bytes_;
}

Expected<std::string> KeyStore::PrivateBytes(const PublicKey& key) const {
  std::lock_guard lock(mu_);
  auto it = bytes_by_fingerprint_.find(key.fingerprint);
  if (it == bytes_by_fingerprint_.end()) {
    return Error{ErrCode::kNotFound, "unknown key: " + key.fingerprint};
  }
  return it->second;
}

}  // namespace gridauthz::gsi
