#include "gsi/dn.h"

#include <algorithm>
#include <cctype>
#include <ostream>

#include "common/strings.h"

namespace gridauthz::gsi {

namespace {
std::string Render(const std::vector<DnComponent>& components) {
  std::string out;
  for (const auto& c : components) {
    out += '/';
    out += c.type;
    out += '=';
    out += c.value;
  }
  return out;
}

// Parses the component list of a '/'-rooted name. `trimmed` must start
// with '/'. When `allow_empty` is true a bare "/" (or trailing '/')
// yields an empty component list (the root prefix); otherwise at least
// one component is required.
Expected<std::vector<DnComponent>> ParseComponents(std::string_view trimmed,
                                                   bool allow_empty) {
  std::vector<DnComponent> components;
  std::size_t pos = 1;
  while (pos < trimmed.size()) {
    std::size_t next = trimmed.find('/', pos);
    if (next == std::string_view::npos) next = trimmed.size();
    std::string_view piece = trimmed.substr(pos, next - pos);
    if (allow_empty && strings::Trim(piece).empty() && next == trimmed.size()) {
      break;  // trailing '/' on a prefix
    }
    std::size_t eq = piece.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Error{ErrCode::kParseError,
                   "malformed DN component: " + std::string{piece}};
    }
    DnComponent component;
    component.type = std::string{strings::Trim(piece.substr(0, eq))};
    std::transform(component.type.begin(), component.type.end(),
                   component.type.begin(), [](unsigned char c) {
                     return static_cast<char>(std::toupper(c));
                   });
    component.value = std::string{strings::Trim(piece.substr(eq + 1))};
    if (component.value.empty()) {
      return Error{ErrCode::kParseError,
                   "empty DN component value: " + std::string{piece}};
    }
    components.push_back(std::move(component));
    pos = next + 1;
  }
  if (components.empty() && !allow_empty) {
    return Error{ErrCode::kParseError, "distinguished name has no components"};
  }
  return components;
}

// True if `prefix` is a leading run of `identity`'s components.
bool ComponentsArePrefix(const std::vector<DnComponent>& prefix,
                         const std::vector<DnComponent>& identity) {
  if (prefix.size() > identity.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), identity.begin());
}
}  // namespace

DistinguishedName::DistinguishedName(std::vector<DnComponent> components)
    : components_(std::move(components)), text_(Render(components_)) {}

Expected<DistinguishedName> DistinguishedName::Parse(std::string_view text) {
  std::string_view trimmed = strings::Trim(text);
  if (trimmed.empty()) {
    return Error{ErrCode::kParseError, "empty distinguished name"};
  }
  if (trimmed.front() != '/') {
    return Error{ErrCode::kParseError,
                 "distinguished name must start with '/': " + std::string{trimmed}};
  }
  GA_TRY(std::vector<DnComponent> components,
         ParseComponents(trimmed, /*allow_empty=*/false));
  return DistinguishedName{std::move(components)};
}

bool DistinguishedName::IsPrefixOf(const DistinguishedName& other) const {
  if (components_.size() > other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

DistinguishedName DistinguishedName::WithComponent(std::string type,
                                                   std::string value) const {
  std::vector<DnComponent> extended = components_;
  extended.push_back(DnComponent{std::move(type), std::move(value)});
  return DistinguishedName{std::move(extended)};
}

std::ostream& operator<<(std::ostream& os, const DistinguishedName& dn) {
  return os << dn.str();
}

DnPrefix::DnPrefix(std::vector<DnComponent> components)
    : components_(std::move(components)) {}

Expected<DnPrefix> DnPrefix::Parse(std::string_view text) {
  std::string_view trimmed = strings::Trim(text);
  if (trimmed.empty()) {
    return Error{ErrCode::kParseError, "empty DN prefix"};
  }
  if (trimmed.front() != '/') {
    return Error{ErrCode::kParseError,
                 "DN prefix must start with '/': " + std::string{trimmed}};
  }
  GA_TRY(std::vector<DnComponent> components,
         ParseComponents(trimmed, /*allow_empty=*/true));
  return DnPrefix{std::move(components)};
}

std::string DnPrefix::str() const {
  if (components_.empty()) return "/";
  return Render(components_);
}

bool DnPrefix::Matches(const DistinguishedName& identity) const {
  if (is_root()) return !identity.empty();
  return ComponentsArePrefix(components_, identity.components());
}

bool DnPrefix::MatchesText(std::string_view identity) const {
  std::string_view trimmed = strings::Trim(identity);
  if (trimmed.empty() || trimmed.front() != '/') return false;
  if (is_root()) return true;
  auto parsed = DistinguishedName::Parse(trimmed);
  if (!parsed.ok()) return false;  // fail closed on unparseable identities
  return Matches(*parsed);
}

bool DnStringPrefixMatch(std::string_view policy_subject,
                         std::string_view identity) {
  auto prefix = DnPrefix::Parse(policy_subject);
  if (!prefix.ok()) return false;
  return prefix->MatchesText(identity);
}

}  // namespace gridauthz::gsi
