#include "gsi/dn.h"

#include <algorithm>
#include <cctype>
#include <ostream>

#include "common/strings.h"

namespace gridauthz::gsi {

namespace {
std::string Render(const std::vector<DnComponent>& components) {
  std::string out;
  for (const auto& c : components) {
    out += '/';
    out += c.type;
    out += '=';
    out += c.value;
  }
  return out;
}
}  // namespace

DistinguishedName::DistinguishedName(std::vector<DnComponent> components)
    : components_(std::move(components)), text_(Render(components_)) {}

Expected<DistinguishedName> DistinguishedName::Parse(std::string_view text) {
  std::string_view trimmed = strings::Trim(text);
  if (trimmed.empty()) {
    return Error{ErrCode::kParseError, "empty distinguished name"};
  }
  if (trimmed.front() != '/') {
    return Error{ErrCode::kParseError,
                 "distinguished name must start with '/': " + std::string{trimmed}};
  }
  std::vector<DnComponent> components;
  std::size_t pos = 1;
  while (pos < trimmed.size()) {
    std::size_t next = trimmed.find('/', pos);
    if (next == std::string_view::npos) next = trimmed.size();
    std::string_view piece = trimmed.substr(pos, next - pos);
    std::size_t eq = piece.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Error{ErrCode::kParseError,
                   "malformed DN component: " + std::string{piece}};
    }
    DnComponent component;
    component.type = std::string{strings::Trim(piece.substr(0, eq))};
    std::transform(component.type.begin(), component.type.end(),
                   component.type.begin(), [](unsigned char c) {
                     return static_cast<char>(std::toupper(c));
                   });
    component.value = std::string{strings::Trim(piece.substr(eq + 1))};
    if (component.value.empty()) {
      return Error{ErrCode::kParseError,
                   "empty DN component value: " + std::string{piece}};
    }
    components.push_back(std::move(component));
    pos = next + 1;
  }
  if (components.empty()) {
    return Error{ErrCode::kParseError, "distinguished name has no components"};
  }
  return DistinguishedName{std::move(components)};
}

bool DistinguishedName::IsPrefixOf(const DistinguishedName& other) const {
  if (components_.size() > other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

DistinguishedName DistinguishedName::WithComponent(std::string type,
                                                   std::string value) const {
  std::vector<DnComponent> extended = components_;
  extended.push_back(DnComponent{std::move(type), std::move(value)});
  return DistinguishedName{std::move(extended)};
}

std::ostream& operator<<(std::ostream& os, const DistinguishedName& dn) {
  return os << dn.str();
}

bool DnStringPrefixMatch(std::string_view policy_subject,
                         std::string_view identity) {
  policy_subject = strings::Trim(policy_subject);
  identity = strings::Trim(identity);
  if (policy_subject.empty()) return false;
  return strings::StartsWith(identity, policy_subject);
}

}  // namespace gridauthz::gsi
