#include "gsi/certificate.h"

#include <atomic>

namespace gridauthz::gsi {

std::string_view to_string(CertType type) {
  switch (type) {
    case CertType::kCa:
      return "ca";
    case CertType::kEndEntity:
      return "end-entity";
    case CertType::kImpersonationProxy:
      return "proxy";
    case CertType::kLimitedProxy:
      return "limited proxy";
    case CertType::kRestrictedProxy:
      return "restricted proxy";
  }
  return "?";
}

bool IsProxyType(CertType type) {
  return type == CertType::kImpersonationProxy ||
         type == CertType::kLimitedProxy || type == CertType::kRestrictedProxy;
}

std::string Certificate::CanonicalEncoding() const {
  std::string out;
  out += "serial=" + std::to_string(serial);
  out += ";type=" + std::string{to_string(type)};
  out += ";subject=" + subject.str();
  out += ";issuer=" + issuer.str();
  out += ";key=" + subject_key.fingerprint;
  out += ";nb=" + std::to_string(not_before);
  out += ";na=" + std::to_string(not_after);
  out += ";policy=" + restriction_policy;
  return out;
}

std::uint64_t NextCertificateSerial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

CertificateAuthority::CertificateAuthority(DistinguishedName name,
                                           TimePoint now, Duration lifetime)
    : key_(GenerateKey("ca:" + name.str())) {
  cert_.serial = NextCertificateSerial();
  cert_.type = CertType::kCa;
  cert_.subject = name;
  cert_.issuer = std::move(name);
  cert_.subject_key = key_.public_key();
  cert_.not_before = now;
  cert_.not_after = now + lifetime;
  cert_.signature = key_.Sign(cert_.CanonicalEncoding());
}

Certificate CertificateAuthority::IssueCertificate(
    const DistinguishedName& subject, const PublicKey& subject_key,
    TimePoint not_before, TimePoint not_after) const {
  Certificate cert;
  cert.serial = NextCertificateSerial();
  cert.type = CertType::kEndEntity;
  cert.subject = subject;
  cert.issuer = cert_.subject;
  cert.subject_key = subject_key;
  cert.not_before = not_before;
  cert.not_after = not_after;
  cert.signature = key_.Sign(cert.CanonicalEncoding());
  return cert;
}

void TrustRegistry::AddTrustedCa(Certificate ca_cert) {
  cas_by_name_[ca_cert.subject.str()] = std::move(ca_cert);
}

namespace {

// Checks that a proxy certificate's subject is its issuer's subject plus
// the conventional CN component for its type.
Expected<void> CheckProxyNaming(const Certificate& proxy) {
  const DnComponent* last = proxy.subject.last();
  if (last == nullptr || last->type != "CN") {
    return Error{ErrCode::kAuthenticationFailed,
                 "proxy subject missing CN component: " + proxy.subject.str()};
  }
  std::string expected_cn;
  switch (proxy.type) {
    case CertType::kImpersonationProxy:
      expected_cn = "proxy";
      break;
    case CertType::kLimitedProxy:
      expected_cn = "limited proxy";
      break;
    case CertType::kRestrictedProxy:
      expected_cn = "restricted proxy";
      break;
    default:
      return Error{ErrCode::kInternal, "not a proxy certificate"};
  }
  if (last->value != expected_cn) {
    return Error{ErrCode::kAuthenticationFailed,
                 "proxy CN '" + last->value + "' does not match type '" +
                     std::string{to_string(proxy.type)} + "'"};
  }
  DistinguishedName expected =
      proxy.issuer.WithComponent("CN", last->value);
  if (!(expected == proxy.subject)) {
    return Error{ErrCode::kAuthenticationFailed,
                 "proxy subject " + proxy.subject.str() +
                     " is not issuer subject plus CN=" + last->value};
  }
  return Ok();
}

}  // namespace

Expected<DistinguishedName> TrustRegistry::ValidateChain(
    const std::vector<Certificate>& chain, TimePoint now) const {
  if (chain.empty()) {
    return Error{ErrCode::kAuthenticationFailed, "empty certificate chain"};
  }

  // Every certificate must be within its validity window.
  for (const Certificate& cert : chain) {
    if (!cert.ValidAt(now)) {
      return Error{ErrCode::kAuthenticationFailed,
                   "certificate expired or not yet valid: " +
                       cert.subject.str()};
    }
  }

  // Walk leaf-first: each proxy must be signed by the next certificate's
  // key and follow proxy naming; exactly one end-entity certificate ends
  // the proxy run.
  std::size_t i = 0;
  for (; i < chain.size() && IsProxyType(chain[i].type); ++i) {
    if (i + 1 >= chain.size()) {
      return Error{ErrCode::kAuthenticationFailed,
                   "proxy certificate without parent in chain: " +
                       chain[i].subject.str()};
    }
    const Certificate& proxy = chain[i];
    const Certificate& parent = chain[i + 1];
    GA_TRY_VOID(CheckProxyNaming(proxy));
    if (!(proxy.issuer == parent.subject)) {
      return Error{ErrCode::kAuthenticationFailed,
                   "proxy issuer " + proxy.issuer.str() +
                       " does not match parent subject " + parent.subject.str()};
    }
    if (!VerifySignature(parent.subject_key, proxy.CanonicalEncoding(),
                         proxy.signature)) {
      return Error{ErrCode::kAuthenticationFailed,
                   "bad signature on proxy: " + proxy.subject.str()};
    }
  }

  if (i >= chain.size() || chain[i].type != CertType::kEndEntity) {
    return Error{ErrCode::kAuthenticationFailed,
                 "chain has no end-entity certificate"};
  }
  const Certificate& eec = chain[i];
  if (i + 1 != chain.size()) {
    return Error{ErrCode::kAuthenticationFailed,
                 "unexpected certificates after end-entity certificate"};
  }

  auto ca_it = cas_by_name_.find(eec.issuer.str());
  if (ca_it == cas_by_name_.end()) {
    return Error{ErrCode::kAuthenticationFailed,
                 "issuer not a trusted CA: " + eec.issuer.str()};
  }
  const Certificate& ca = ca_it->second;
  if (!ca.ValidAt(now)) {
    return Error{ErrCode::kAuthenticationFailed,
                 "trusted CA certificate expired: " + ca.subject.str()};
  }
  if (!VerifySignature(ca.subject_key, eec.CanonicalEncoding(),
                       eec.signature)) {
    return Error{ErrCode::kAuthenticationFailed,
                 "bad CA signature on certificate: " + eec.subject.str()};
  }

  return eec.subject;
}

}  // namespace gridauthz::gsi
