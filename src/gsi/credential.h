// A credential bundles a leaf-first certificate chain with the private key
// for the leaf certificate — what GSI calls a "proxy credential" when the
// leaf is a proxy. Users sign job requests with it; services authenticate
// with their own host credentials.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "gsi/certificate.h"

namespace gridauthz::gsi {

class Credential {
 public:
  Credential() = default;
  Credential(std::vector<Certificate> chain, PrivateKey key);

  bool empty() const { return chain_.empty(); }
  const std::vector<Certificate>& chain() const { return chain_; }
  const Certificate& leaf() const { return chain_.front(); }
  const PrivateKey& key() const { return key_; }

  // The Grid identity: subject of the end-entity certificate (all proxy
  // components stripped). This is what policies are written against.
  const DistinguishedName& identity() const { return identity_; }

  // Signs a message with the leaf key.
  std::string Sign(std::string_view message) const { return key_.Sign(message); }

  // True if any certificate in the chain is a limited proxy (limited
  // proxies may not be used to start jobs in GT2).
  bool IsLimited() const;

  // The restriction policy carried by the leaf, if it is a restricted
  // proxy (CAS credentials).
  std::optional<std::string> RestrictionPolicy() const;

  // Derives a new proxy credential of `type`, valid for `lifetime` seconds
  // from `now`; for restricted proxies, `restriction_policy` is embedded.
  Expected<Credential> GenerateProxy(TimePoint now, Duration lifetime,
                                     CertType type = CertType::kImpersonationProxy,
                                     std::string restriction_policy = "") const;

 private:
  std::vector<Certificate> chain_;  // leaf first
  PrivateKey key_;
  DistinguishedName identity_;
};

// Creates a user or host credential: generates a key pair and has `ca`
// issue an end-entity certificate for `subject`.
Credential IssueCredential(const CertificateAuthority& ca,
                           const DistinguishedName& subject, TimePoint now,
                           Duration lifetime = 365L * 24 * 3600);

}  // namespace gridauthz::gsi
