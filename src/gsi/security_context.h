// Mutual authentication between a client and a service, modelled on the
// GSI handshake: each side presents its certificate chain, proves
// possession of the leaf key by signing a challenge, and validates the
// peer's chain against the trust registry. The established context carries
// the verified peer identity (what the Gatekeeper authorizes against) and,
// optionally, a credential the client delegates to the service (what the
// Job Manager Instance runs with).
#pragma once

#include <optional>
#include <string>

#include "common/clock.h"
#include "common/error.h"
#include "gsi/credential.h"

namespace gridauthz::gsi {

struct SecurityContext {
  // Verified Grid identity of the peer (proxy components stripped).
  DistinguishedName peer_identity;
  // The peer's full chain, kept for restricted-proxy policy extraction
  // (CAS) and limited-proxy checks.
  std::vector<Certificate> peer_chain;
  // Credential delegated by the initiator, if requested.
  std::optional<Credential> delegated_credential;

  bool peer_is_limited_proxy() const {
    for (const Certificate& c : peer_chain) {
      if (c.type == CertType::kLimitedProxy) return true;
    }
    return false;
  }

  // The restriction policy on the peer's leaf certificate, if any.
  std::optional<std::string> peer_restriction_policy() const {
    if (!peer_chain.empty() &&
        peer_chain.front().type == CertType::kRestrictedProxy) {
      return peer_chain.front().restriction_policy;
    }
    return std::nullopt;
  }
};

struct HandshakeResult {
  SecurityContext initiator_view;  // peer = acceptor
  SecurityContext acceptor_view;   // peer = initiator
};

// Performs mutual authentication at time `now`. If `delegate` is true the
// initiator additionally delegates an impersonation proxy (lifetime
// `delegation_lifetime`) to the acceptor, as GRAM clients do so the JMI can
// act on the user's behalf. Fails with kAuthenticationFailed on any chain
// or proof-of-possession problem.
Expected<HandshakeResult> EstablishSecurityContext(
    const Credential& initiator, const Credential& acceptor,
    const TrustRegistry& trust, TimePoint now, bool delegate = false,
    Duration delegation_lifetime = 12 * 3600);

}  // namespace gridauthz::gsi
