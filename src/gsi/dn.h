// X.500-style distinguished names in the slash-separated rendering GT2
// uses, e.g. "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey".
//
// DN prefix matching is part of the paper's policy language: a policy
// statement whose subject is "/O=Grid/O=Globus/OU=mcs.anl.gov" applies to
// every user whose Grid identity extends that name (Figure 3, first
// statement). Matching is COMPONENT-boundary, not raw string-prefix: the
// subject's components must each equal the identity's leading components.
// "/O=Grid/CN=John" therefore covers "/O=Grid/CN=John" and the proxy
// identity "/O=Grid/CN=John/CN=proxy", but never "/O=Grid/CN=Johnson" —
// the raw string test would, which is an authorization bypass.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace gridauthz::gsi {

struct DnComponent {
  std::string type;   // e.g. "O", "OU", "CN"
  std::string value;  // e.g. "Grid", "mcs.anl.gov"

  friend bool operator==(const DnComponent&, const DnComponent&) = default;
};

class DistinguishedName {
 public:
  DistinguishedName() = default;

  // Parses "/T=v/T=v/..." form. Component types are uppercased; values keep
  // their case. Fails on empty input, missing leading '/', or components
  // without '='.
  static Expected<DistinguishedName> Parse(std::string_view text);

  // Builds from components directly.
  explicit DistinguishedName(std::vector<DnComponent> components);

  const std::vector<DnComponent>& components() const { return components_; }
  bool empty() const { return components_.empty(); }

  // Canonical "/T=v/..." rendering.
  const std::string& str() const { return text_; }

  // True if this DN's components are a leading subsequence of `other`'s.
  // "/O=Grid/O=Globus" is a prefix of "/O=Grid/O=Globus/CN=Bo Liu".
  bool IsPrefixOf(const DistinguishedName& other) const;

  // Returns this DN extended with one component (used to derive proxy
  // subject names: subject + "/CN=proxy").
  DistinguishedName WithComponent(std::string type, std::string value) const;

  // The last component, if any, e.g. CN=proxy for a proxy certificate.
  const DnComponent* last() const {
    return components_.empty() ? nullptr : &components_.back();
  }

  friend bool operator==(const DistinguishedName& a,
                         const DistinguishedName& b) {
    return a.text_ == b.text_;
  }
  friend auto operator<=>(const DistinguishedName& a,
                          const DistinguishedName& b) {
    return a.text_ <=> b.text_;
  }

 private:
  std::vector<DnComponent> components_;
  std::string text_;
};

std::ostream& operator<<(std::ostream& os, const DistinguishedName& dn);

// A policy subject: a DN prefix in the "/T=v/..." rendering, or the root
// "/" that covers every identity. Parsed once (at policy-document load
// time in the compiled fast path) so matching is a pure component
// comparison. Accepts an optional trailing '/' ("/O=Grid/CN=John/" names
// the same prefix) and the bare root "/".
class DnPrefix {
 public:
  DnPrefix() = default;  // root prefix

  static Expected<DnPrefix> Parse(std::string_view text);

  // Builds from components directly (empty = root).
  explicit DnPrefix(std::vector<DnComponent> components);

  const std::vector<DnComponent>& components() const { return components_; }
  // The root prefix "/" has no components and matches every identity.
  bool is_root() const { return components_.empty(); }

  // Canonical rendering; "/" for the root prefix.
  std::string str() const;

  // True if this prefix's components are a leading run of `identity`'s,
  // compared component-wise (types case-insensitive via parse-time
  // uppercasing; values exact).
  bool Matches(const DistinguishedName& identity) const;

  // Parses `identity` and matches. The root prefix matches any
  // '/'-rooted identity string, parseable or not (the paper's catch-all
  // "/" statement applies to every Grid identity); non-root prefixes
  // never match an unparseable identity (fail closed).
  bool MatchesText(std::string_view identity) const;

 private:
  std::vector<DnComponent> components_;
};

// Component-boundary subject matching for the paper's policy files: true
// when `policy_subject` parses as a DN prefix whose components are a
// leading run of `identity`'s components. An unparseable subject or
// identity matches nothing (except the root subject "/", which matches
// any '/'-rooted identity). This replaces the raw string-prefix test that
// let "/O=Grid/CN=John" authorize "/O=Grid/CN=Johnson".
bool DnStringPrefixMatch(std::string_view policy_subject,
                         std::string_view identity);

}  // namespace gridauthz::gsi
