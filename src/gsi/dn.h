// X.500-style distinguished names in the slash-separated rendering GT2
// uses, e.g. "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey".
//
// DN prefix matching is part of the paper's policy language: a policy
// statement whose subject is "/O=Grid/O=Globus/OU=mcs.anl.gov" applies to
// every user whose Grid identity starts with that string (Figure 3, first
// statement).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace gridauthz::gsi {

struct DnComponent {
  std::string type;   // e.g. "O", "OU", "CN"
  std::string value;  // e.g. "Grid", "mcs.anl.gov"

  friend bool operator==(const DnComponent&, const DnComponent&) = default;
};

class DistinguishedName {
 public:
  DistinguishedName() = default;

  // Parses "/T=v/T=v/..." form. Component types are uppercased; values keep
  // their case. Fails on empty input, missing leading '/', or components
  // without '='.
  static Expected<DistinguishedName> Parse(std::string_view text);

  // Builds from components directly.
  explicit DistinguishedName(std::vector<DnComponent> components);

  const std::vector<DnComponent>& components() const { return components_; }
  bool empty() const { return components_.empty(); }

  // Canonical "/T=v/..." rendering.
  const std::string& str() const { return text_; }

  // True if this DN's components are a leading subsequence of `other`'s.
  // "/O=Grid/O=Globus" is a prefix of "/O=Grid/O=Globus/CN=Bo Liu".
  bool IsPrefixOf(const DistinguishedName& other) const;

  // Returns this DN extended with one component (used to derive proxy
  // subject names: subject + "/CN=proxy").
  DistinguishedName WithComponent(std::string type, std::string value) const;

  // The last component, if any, e.g. CN=proxy for a proxy certificate.
  const DnComponent* last() const {
    return components_.empty() ? nullptr : &components_.back();
  }

  friend bool operator==(const DistinguishedName& a,
                         const DistinguishedName& b) {
    return a.text_ == b.text_;
  }
  friend auto operator<=>(const DistinguishedName& a,
                          const DistinguishedName& b) {
    return a.text_ <=> b.text_;
  }

 private:
  std::vector<DnComponent> components_;
  std::string text_;
};

std::ostream& operator<<(std::ostream& os, const DistinguishedName& dn);

// String-prefix matching as the paper's policy files use it: the policy
// subject is an arbitrary string prefix of the rendered DN (not
// necessarily component-aligned).
bool DnStringPrefixMatch(std::string_view policy_subject,
                         std::string_view identity);

}  // namespace gridauthz::gsi
