// Simulated public-key cryptography.
//
// Substitution note (see DESIGN.md): real GSI uses RSA keys under X.509.
// Offline we simulate asymmetry deterministically: a private key is a
// random byte string; the public key is its SHA-256 fingerprint; a
// signature is HMAC-SHA-256(private, message). Verification resolves the
// fingerprint to the private bytes through a process-wide KeyStore that
// stands in for "the math works". Code outside this file only ever handles
// PublicKey material plus signatures, so every authorization code path is
// shaped exactly as it would be with real crypto.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/error.h"
#include "gsi/sha256.h"

namespace gridauthz::gsi {

struct PublicKey {
  std::string fingerprint;  // hex SHA-256 of the private bytes

  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

class PrivateKey {
 public:
  PrivateKey() = default;
  explicit PrivateKey(std::string bytes);

  const PublicKey& public_key() const { return public_key_; }
  bool empty() const { return bytes_.empty(); }

  // The raw key material, for credential persistence. GT2 likewise wrote
  // delegated proxy keys to disk so a restarted Job Manager could resume
  // managing its job; treat persisted state accordingly.
  const std::string& bytes() const { return bytes_; }

  // HMAC signature over `message`.
  std::string Sign(std::string_view message) const;

 private:
  friend class KeyStore;
  std::string bytes_;
  PublicKey public_key_;
};

// Generates a fresh key pair from a deterministic counter + seed; suitable
// for reproducible tests and benches.
PrivateKey GenerateKey(std::string_view label = "");

// Verifies `signature` over `message` against `key`. Implemented by
// resolving the fingerprint in the global KeyStore; returns false for
// unknown keys or mismatched signatures.
bool VerifySignature(const PublicKey& key, std::string_view message,
                     std::string_view signature);

// Registry of generated keys (the simulation of asymmetric verification).
class KeyStore {
 public:
  static KeyStore& Instance();

  void Register(const PrivateKey& key);
  Expected<std::string> PrivateBytes(const PublicKey& key) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::string> bytes_by_fingerprint_;
};

}  // namespace gridauthz::gsi
