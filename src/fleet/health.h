// Fleet node health: one up/degraded/down score per gatekeeper, fed by
// two independent signals —
//   * active: MDS-published mds-gatekeeper entries (provider.h), each a
//     scrape of the node's /healthz (status, queue depth, open breakers,
//     SLO burn, policy generation);
//   * passive: transport failures observed by the broker while routing
//     (a node that stops answering is down long before the next MDS
//     refresh says so).
// Passive evidence can only worsen the score (consecutive failures force
// kDown); a successful call clears it. The score drives routing: Up
// nodes are preferred, Degraded nodes are failover-only, Down nodes are
// never tried.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mds/mds.h"

namespace gridauthz::fleet {

enum class NodeHealth { kUp = 0, kDegraded = 1, kDown = 2 };

std::string_view to_string(NodeHealth health);

// One node's scored health, parsed from its mds-gatekeeper entry.
struct NodeHealthReport {
  std::string node;
  NodeHealth health = NodeHealth::kDown;
  std::int64_t queue_depth = 0;
  std::int64_t breakers_open = 0;
  std::int64_t slo_burn_milli = 0;  // burn rate x1000
  std::uint64_t policy_generation = 0;
};

// Scores one mds-gatekeeper entry (provider.h attribute names):
//   unreachable                         -> kDown
//   status degraded, any breaker open,
//   or SLO burn rate > 1.0              -> kDegraded
//   otherwise                           -> kUp
NodeHealthReport ScoreGatekeeperEntry(const mds::Entry& entry);

// One node's rolling baselines and fleet-relative outlier score
// (HealthTracker::Scores). Baselines are medians of rolling windows —
// routing latency observed by the broker, SLO burn from MDS refreshes —
// so one slow request or one noisy scrape cannot move them. The z
// fields are one-sided robust modified z-scores against the fleet
// (0.6745 * (baseline - fleet median) / MAD): only a node SLOWER or
// BURNING HOTTER than its peers scores, a fast node is never an
// "outlier". A node is flagged when either z crosses the threshold.
struct NodeScore {
  std::string node;
  std::size_t latency_samples = 0;
  std::int64_t baseline_latency_us = 0;  // 0 until enough samples
  std::size_t burn_samples = 0;
  std::int64_t baseline_burn_milli = 0;
  double latency_z = 0.0;
  double burn_z = 0.0;
  bool outlier = false;
};

// Thread-safe per-node health state. Exported as the gauge
// fleet_node_health{node} (0 up, 1 degraded, 2 down).
class HealthTracker {
 public:
  // `failure_threshold` consecutive transport failures force kDown.
  explicit HealthTracker(int failure_threshold = 3);

  // Rolling-window sizes and scoring thresholds. The latency window is
  // small enough that a recovered node sheds its slow history within
  // ~64 routed calls; minimums keep one-sample "baselines" and
  // two-node "fleets" from producing junk scores.
  static constexpr std::size_t kLatencyWindow = 64;
  static constexpr std::size_t kMinLatencySamples = 8;
  static constexpr std::size_t kBurnWindow = 16;
  static constexpr std::size_t kMinBurnSamples = 3;
  static constexpr std::size_t kMinFleetForScoring = 3;
  static constexpr double kOutlierZ = 3.5;

  // Active refresh: installs the scored report. A reachable report
  // clears accumulated passive failures (the node answered its probe).
  void Update(NodeHealthReport report);

  // Passive signals from the routing path.
  void RecordFailure(const std::string& node);
  void RecordSuccess(const std::string& node);

  // Routing-observed latency of one successful call to `node`; feeds
  // the rolling baseline behind Scores().
  void RecordLatency(const std::string& node, std::int64_t latency_us);

  // Current per-node baselines and outlier flags, fleet-relative,
  // recomputed from the rolling windows on every call (fleets here are
  // small; freshness beats caching). Also exports the gauge
  // fleet_node_outlier{node} (0/1). Ordered by node name.
  std::vector<NodeScore> Scores() const;

  // True when Scores() currently flags `node`.
  bool IsOutlier(const std::string& node) const;

  // Operator/chaos override: force kDown until the next reachable
  // Update() or RecordSuccess().
  void ForceDown(const std::string& node);

  // Combined score. A node never seen is kUp — a fresh fleet must route
  // before its first refresh.
  NodeHealth HealthOf(const std::string& node) const;

  // Last active report (default-constructed, health kDown, if the node
  // was never refreshed).
  NodeHealthReport ReportOf(const std::string& node) const;

 private:
  struct State {
    NodeHealthReport report;
    bool refreshed = false;
    int consecutive_failures = 0;
    // Rolling windows (rings once full; *_next is the overwrite slot).
    std::vector<std::int64_t> latency_window;
    std::size_t latency_next = 0;
    std::vector<std::int64_t> burn_window;
    std::size_t burn_next = 0;
  };

  void ExportGaugeLocked(const std::string& node, const State& state) const;
  NodeHealth CombinedLocked(const State& state) const;

  const int failure_threshold_;
  mutable std::mutex mu_;
  std::map<std::string, State> states_;
};

}  // namespace gridauthz::fleet
