#include "fleet/chaos.h"

#include <algorithm>

#include "common/error.h"
#include "common/json.h"
#include "fleet/node.h"
#include "gram/obs_service.h"
#include "obs/metrics.h"

namespace gridauthz::fleet {

namespace wire = gram::wire;

ChaosTransport::ChaosTransport(wire::WireTransport* inner, SimClock* clock)
    : inner_(inner), clock_(clock) {}

std::string ChaosTransport::Handle(const gsi::Credential& peer,
                                   std::string_view frame) {
  ChaosMode mode;
  std::int64_t hang_us, slow_us;
  {
    std::lock_guard lock(mu_);
    ++calls_;
    mode = mode_;
    hang_us = hang_us_;
    slow_us = slow_us_;
    if (mode == ChaosMode::kDead || mode == ChaosMode::kHang) ++dropped_;
  }
  switch (mode) {
    case ChaosMode::kHealthy:
      return inner_->Handle(peer, frame);
    case ChaosMode::kDead:
      return {};  // the peer never answers
    case ChaosMode::kHang:
      // Accept-but-never-reply: the node holds the connection until the
      // caller's patience (modelled as hang_us of shared clock) runs
      // out, then yields nothing.
      clock_->AdvanceMicros(hang_us);
      return {};
    case ChaosMode::kSlow:
      clock_->AdvanceMicros(slow_us);
      return inner_->Handle(peer, frame);
  }
  return {};
}

void ChaosTransport::SetMode(ChaosMode mode) {
  std::lock_guard lock(mu_);
  mode_ = mode;
}

ChaosMode ChaosTransport::mode() const {
  std::lock_guard lock(mu_);
  return mode_;
}

void ChaosTransport::set_hang_us(std::int64_t us) {
  std::lock_guard lock(mu_);
  hang_us_ = us;
}

void ChaosTransport::set_slow_us(std::int64_t us) {
  std::lock_guard lock(mu_);
  slow_us_ = us;
}

std::uint64_t ChaosTransport::calls() const {
  std::lock_guard lock(mu_);
  return calls_;
}

std::uint64_t ChaosTransport::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

std::string_view to_string(ChaosScenarioKind kind) {
  switch (kind) {
    case ChaosScenarioKind::kNodeKill:
      return "node-kill";
    case ChaosScenarioKind::kNodeHang:
      return "node-hang";
    case ChaosScenarioKind::kPartition:
      return "partition";
    case ChaosScenarioKind::kSlowNode:
      return "slow-node";
  }
  return "unknown";
}

namespace {

// Draws `count` distinct victim indices from the seeded stream — the
// whole scenario's nondeterminism lives in this one RNG.
std::vector<std::size_t> DrawVictims(fault::FaultRng& rng, std::size_t fleet,
                                     std::size_t count) {
  std::vector<std::size_t> victims;
  while (victims.size() < count && victims.size() < fleet) {
    const auto pick = static_cast<std::size_t>(
        rng.NextBelow(static_cast<std::int64_t>(fleet)));
    bool seen = false;
    for (const std::size_t v : victims) seen = seen || v == pick;
    if (!seen) victims.push_back(pick);
  }
  return victims;
}

// Classifies one management outcome. Success and denial are answers; a
// failure is acceptable only when it carries a typed bracketed reason —
// anything else is a silently-lost request, the invariant violation.
enum class Outcome { kOk, kDenied, kTyped, kLost };

Outcome Classify(const Expected<wire::ManagementReply>& reply) {
  if (reply.ok()) return Outcome::kOk;
  const Error& error = reply.error();
  if (error.code() == ErrCode::kAuthorizationDenied) return Outcome::kDenied;
  if (!FailureReasonTag(error).empty()) return Outcome::kTyped;
  // WireClient surfaces GRAM protocol failures with the wire error name
  // followed by the reply's reason field; the broker's typed reasons
  // travel there.
  if (error.message().find("[") != std::string::npos &&
      error.message().find("]") != std::string::npos) {
    return Outcome::kTyped;
  }
  return Outcome::kLost;
}

// True when the broker's federated /trace/<id> proves the failover:
// one stitched document whose flat span list holds both a [fleet]-noted
// span tagged with a victim node (the dead-air attempt) and a span from
// a non-victim node (the sibling that actually served).
bool StitchedFailoverTrace(Fleet& fleet, const gsi::Credential& user,
                           const std::string& trace_id,
                           const std::vector<std::string>& victims) {
  auto reply =
      wire::ObsRequest(fleet.broker(), user, "/trace/" + trace_id);
  if (!reply.ok() || reply->status != 200) return false;
  auto doc = json::ParseValue(reply->body);
  if (!doc.ok()) return false;
  const json::Value* spans = doc->Find("spans");
  if (spans == nullptr) return false;
  const auto is_victim = [&victims](const std::string& node) {
    return std::find(victims.begin(), victims.end(), node) != victims.end();
  };
  bool victim_attempt = false;
  bool sibling_answer = false;
  for (const json::Value& span : spans->items()) {
    const std::string node = span.FindString("node").value_or("");
    const std::string note = span.FindString("note").value_or("");
    if (is_victim(node) && note.find("[fleet]") != std::string::npos) {
      victim_attempt = true;
    }
    if (!node.empty() && node != "fleet-broker" && !is_victim(node)) {
      sibling_answer = true;
    }
  }
  return victim_attempt && sibling_answer;
}

}  // namespace

ChaosReport RunChaosScenario(Fleet& fleet,
                             const std::vector<gsi::Credential>& users,
                             const std::vector<std::string>& rsls,
                             const ChaosScenarioOptions& options) {
  ChaosReport report;
  fault::FaultRng rng(options.seed);

  // Phase 1: a healthy fleet accepts every submission through the
  // broker; remember who owns what.
  struct SubmittedJob {
    std::size_t user;
    std::string contact;
  };
  std::vector<SubmittedJob> jobs;
  for (std::size_t u = 0; u < users.size(); ++u) {
    wire::WireClient client{users[u], &fleet.broker()};
    for (const std::string& rsl : rsls) {
      auto contact = client.Submit(rsl);
      if (contact.ok()) {
        ++report.jobs_submitted;
        jobs.push_back({u, *contact});
      }
    }
  }
  fleet.broker().RefreshHealth();

  // Phase 2: the seeded stream picks the victims; the scenario kind
  // picks the failure mode.
  const std::size_t victim_count =
      options.kind == ChaosScenarioKind::kPartition
          ? static_cast<std::size_t>(options.partition_size)
          : 1;
  const std::vector<std::size_t> victims =
      DrawVictims(rng, fleet.size(), victim_count);
  for (const std::size_t v : victims) {
    report.victims.push_back(fleet.node(v).name());
    ChaosTransport& link = fleet.chaos(v);
    switch (options.kind) {
      case ChaosScenarioKind::kNodeKill:
      case ChaosScenarioKind::kPartition:
        link.SetMode(ChaosMode::kDead);
        break;
      case ChaosScenarioKind::kNodeHang:
        link.set_hang_us(options.hang_us);
        link.SetMode(ChaosMode::kHang);
        break;
      case ChaosScenarioKind::kSlowNode:
        link.set_slow_us(options.slow_us);
        link.SetMode(ChaosMode::kSlow);
        break;
    }
  }

  // Phase 3a: during-fault submissions, the stitched-trace invariant.
  // Runs before the management sweep so passive detection has not yet
  // benched the victims — a submission only "fails over" when the
  // broker actually burned a dead-air attempt on a victim, which the
  // fleet_failover_total{node} counter records per attempt; once the
  // failure threshold marks the victim down, routing avoids it and
  // there is no failover to stitch. Only dropping faults force
  // failover; a merely slow victim still answers.
  if (options.kind != ChaosScenarioKind::kSlowNode) {
    const auto victim_failovers = [&report]() {
      std::uint64_t total = 0;
      for (const std::string& victim : report.victims) {
        total += obs::Metrics().CounterValue("fleet_failover_total",
                                             {{"node", victim}});
      }
      return total;
    };
    for (const gsi::Credential& user : users) {
      wire::WireClient client{user, &fleet.broker()};
      for (const std::string& rsl : rsls) {
        const std::uint64_t before = victim_failovers();
        if (!client.Submit(rsl).ok()) continue;
        if (victim_failovers() == before) continue;  // routed clean
        ++report.failover_submissions;
        if (StitchedFailoverTrace(fleet, user, client.last_trace_id(),
                                  report.victims)) {
          ++report.failover_traces_stitched;
        }
      }
    }
  }

  // Phase 3: every job's management is driven through the broker while
  // the fault is live, and every outcome is classified. Nothing may be
  // silently lost.
  for (const SubmittedJob& job : jobs) {
    wire::WireClient client{users[job.user], &fleet.broker()};
    switch (Classify(client.Status(job.contact))) {
      case Outcome::kOk:
        ++report.management_ok;
        break;
      case Outcome::kDenied:
        ++report.management_denied;
        break;
      case Outcome::kTyped:
        ++report.management_typed_failures;
        break;
      case Outcome::kLost:
        ++report.management_lost;
        break;
    }
  }

  // Phase 4: the fault heals; victims reattach and the fleet must serve
  // every pre-fault job again within the recovery budget.
  for (const std::size_t v : victims) {
    fleet.chaos(v).SetMode(ChaosMode::kHealthy);
    fleet.broker().ReattachNode(fleet.node(v).name());
  }
  std::int64_t elapsed = 0;
  while (elapsed <= options.recovery_budget_us) {
    fleet.broker().RefreshHealth();
    bool all_ok = true;
    for (const SubmittedJob& job : jobs) {
      wire::WireClient client{users[job.user], &fleet.broker()};
      if (!client.Status(job.contact).ok()) {
        all_ok = false;
        break;
      }
    }
    if (all_ok) {
      report.recovered = true;
      report.recovery_us = elapsed;
      break;
    }
    fleet.clock().AdvanceMicros(options.recovery_step_us);
    elapsed += options.recovery_step_us;
  }
  obs::Metrics()
      .GetCounter("fleet_chaos_runs_total",
                  {{"scenario", std::string{to_string(options.kind)}},
                   {"recovered", report.recovered ? "true" : "false"}})
      .Increment();
  return report;
}

}  // namespace gridauthz::fleet
