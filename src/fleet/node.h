// GatekeeperNode: one fleet member's full serving stack — a
// SimulatedSite (own CA, accounts, scheduler, gatekeeper) on the
// fleet's shared clock, a StaticPolicySource as its job-manager PEP
// (the rollout target), and the wire stack layered per DESIGN.md §11:
// ObsService -> [ServerTransport] -> WireEndpoint, so /healthz stays
// responsive under overload.
//
// Fleet: the assembled federation — N nodes cross-trusting each other's
// CAs, one ChaosTransport per node (pass-through until a scenario flips
// it), an MDS directory aggregating per-node mds-gatekeeper providers
// probed through those same chaos transports (a killed node is
// unreachable to discovery exactly like to traffic), and a FleetBroker
// over the lot. User management (accounts, mappings) replicates
// fleet-wide: any node must be able to serve any member.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/source.h"
#include "fleet/broker.h"
#include "fleet/chaos.h"
#include "gram/obs_service.h"
#include "gram/server.h"
#include "gram/site.h"
#include "gram/wire_service.h"
#include "mds/mds.h"
#include "obs/domain.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace gridauthz::fleet {

// Installs an observability domain (obs/domain.h) around every frame an
// inner transport handles, so the metrics, spans, and SLO accounting the
// frame produces land in that domain's registries instead of the
// process singletons. A node needs TWO of these: one at the stack top
// (obs scrapes render the node's own registries, on whatever thread
// calls in) and — when a ServerTransport is in play — one directly
// around the WireEndpoint, because the endpoint then runs on worker
// threads that never pass through the outer wrapper's scope.
class DomainTransport final : public gram::wire::WireTransport {
 public:
  DomainTransport(gram::wire::WireTransport* inner,
                  const obs::ObsDomain* domain)
      : inner_(inner), domain_(domain) {}

  std::string Handle(const gsi::Credential& peer,
                     std::string_view frame) override {
    obs::ObsDomainScope scope(domain_);
    return inner_->Handle(peer, frame);
  }

 private:
  gram::wire::WireTransport* inner_;
  const obs::ObsDomain* domain_;
};


struct NodeOptions {
  std::string name;            // e.g. "gk-0"
  std::string host;            // e.g. "gk-0.anl.gov" — the contact key
  SimClock* clock = nullptr;   // required: the fleet's shared clock
  int cpu_slots = 16;
  // When true a ServerTransport worker pool fronts the endpoint
  // (concurrent serving); when false calls run on the caller's thread
  // (deterministic single-threaded chaos runs).
  bool use_server = false;
  gram::wire::ServerOptions server;
};

class GatekeeperNode {
 public:
  GatekeeperNode(NodeOptions options, const core::PolicyDocument& policy);

  const std::string& name() const { return options_.name; }
  const std::string& host() const { return options_.host; }
  gram::SimulatedSite& site() { return site_; }

  // The node's serving stack top (the outer DomainTransport over
  // ObsService). Everything — jobs, management, obs — enters here and
  // runs under this node's observability domain.
  gram::wire::WireTransport& transport() { return outer_; }

  // This node's private observability plane (what the broker's
  // federated endpoints scrape and stitch).
  const obs::ObsDomain& domain() const { return domain_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::SpanStore& spans() { return spans_; }

  // Policy rollout target: replaces the document, bumping the
  // generation /healthz reports.
  void InstallPolicy(const core::PolicyDocument& document);
  std::uint64_t policy_generation() const {
    return policy_->policy_generation();
  }
  const std::shared_ptr<core::StaticPolicySource>& policy() const {
    return policy_;
  }

 private:
  NodeOptions options_;
  gram::SimulatedSite site_;
  std::shared_ptr<core::StaticPolicySource> policy_;
  // The node's own observability plane, declared before the transports
  // whose domain scopes point into it.
  obs::MetricsRegistry metrics_;
  obs::SpanStore spans_;
  obs::SloTracker slo_;
  obs::ObsDomain domain_;
  gram::wire::WireEndpoint endpoint_;
  // Inner scope: covers the endpoint when ServerTransport workers call
  // it from threads the outer wrapper never sees.
  DomainTransport endpoint_domain_;
  std::unique_ptr<gram::wire::ServerTransport> server_;
  gram::wire::ObsService obs_;
  // Outer scope: covers ObsService itself, so /metrics.json and
  // /trace/<id> render THIS node's registries.
  DomainTransport outer_;
};

struct FleetOptions {
  int nodes = 4;
  std::string name_prefix = "gk-";
  std::string host_suffix = ".anl.gov";  // host = name + suffix
  int cpu_slots = 16;
  bool use_server = false;
  gram::wire::ServerOptions server;
  FleetBrokerOptions broker;
};

class Fleet {
 public:
  // `clock` must outlive the fleet; `initial_policy` is installed on
  // every node (generation 1).
  Fleet(FleetOptions options, SimClock* clock,
        const core::PolicyDocument& initial_policy);

  std::size_t size() const { return nodes_.size(); }
  GatekeeperNode& node(std::size_t i) { return *nodes_[i]; }
  ChaosTransport& chaos(std::size_t i) { return *chaos_[i]; }
  FleetBroker& broker() { return *broker_; }
  mds::DirectoryService& directory() { return directory_; }
  SimClock& clock() { return *clock_; }

  // Replicated user management: the credential is issued by node 0's CA
  // (trusted fleet-wide); accounts and mappings land on every node.
  Expected<gsi::Credential> CreateUser(const std::string& dn);
  Expected<void> AddAccount(const std::string& account);
  Expected<void> MapUser(const gsi::Credential& user,
                         const std::string& account);

  // Fleet-wide rollout through the broker.
  void PushPolicy(const core::PolicyDocument& document) {
    broker_->PushPolicy(document);
  }

 private:
  FleetOptions options_;
  SimClock* clock_;
  std::vector<std::unique_ptr<GatekeeperNode>> nodes_;
  std::vector<std::unique_ptr<ChaosTransport>> chaos_;
  mds::DirectoryService directory_{"fleet-giis"};
  std::unique_ptr<FleetBroker> broker_;
};

}  // namespace gridauthz::fleet
