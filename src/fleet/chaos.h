// Fleet chaos harness: deterministic node-level failure modes on the
// WireTransport seam, plus a scripted scenario driver that asserts the
// fleet's robustness invariants —
//   * decisions fail CLOSED (never a permit out of a broken path),
//   * no management request is silently lost (every outcome is a
//     success, a denial, or a typed bracketed reason),
//   * the fleet recovers within a deadline budget after the fault heals.
//
// ChaosTransport wraps one node's serving stack with a switchable mode:
//   kHealthy      forward untouched
//   kDead         node killed: the peer never answers (empty reply)
//   kHang         accept-but-never-reply: burns `hang_us` of the shared
//                 SimClock (the caller's patience), then no answer
//   kSlow         adds `slow_us` latency, then forwards
// A network partition is kDead applied to a subset of nodes.
//
// Scenarios draw their victims from a seeded FaultRng, so every run of
// (scenario kind, seed, fleet size) injects the same faults at the same
// points — reproducible under ASan, TSan, and in CI.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "fault/fault.h"
#include "gram/wire_service.h"
#include "gsi/credential.h"

namespace gridauthz::fleet {

class Fleet;

enum class ChaosMode { kHealthy, kDead, kHang, kSlow };

class ChaosTransport final : public gram::wire::WireTransport {
 public:
  // `clock` is the fleet's shared SimClock; kHang/kSlow advance it.
  ChaosTransport(gram::wire::WireTransport* inner, SimClock* clock);

  std::string Handle(const gsi::Credential& peer,
                     std::string_view frame) override;

  void SetMode(ChaosMode mode);
  ChaosMode mode() const;
  void set_hang_us(std::int64_t us);
  void set_slow_us(std::int64_t us);

  std::uint64_t calls() const;
  std::uint64_t dropped() const;  // calls swallowed by kDead/kHang

 private:
  gram::wire::WireTransport* inner_;
  SimClock* clock_;
  mutable std::mutex mu_;
  ChaosMode mode_ = ChaosMode::kHealthy;
  std::int64_t hang_us_ = 200'000;
  std::int64_t slow_us_ = 50'000;
  std::uint64_t calls_ = 0;
  std::uint64_t dropped_ = 0;
};

enum class ChaosScenarioKind { kNodeKill, kNodeHang, kPartition, kSlowNode };

std::string_view to_string(ChaosScenarioKind kind);

struct ChaosScenarioOptions {
  ChaosScenarioKind kind = ChaosScenarioKind::kNodeKill;
  std::uint64_t seed = 1;     // FaultRng stream choosing the victims
  int partition_size = 2;     // victims for kPartition
  std::int64_t hang_us = 200'000;
  std::int64_t slow_us = 50'000;
  // Recovery probing after the fault heals: the fleet must serve every
  // pre-fault job's management again within this budget of simulated
  // time, probed every step.
  std::int64_t recovery_budget_us = 5'000'000;
  std::int64_t recovery_step_us = 250'000;
};

// What happened, classified. `lost` counts management outcomes that
// were neither success, denial, nor typed (bracketed) failure — the
// invariant every scenario asserts to be zero.
//
// The failover_* pair is the observability invariant (DESIGN.md §15):
// while a dropping fault (kill/hang/partition) is live, a submission
// counts as failed-over when it succeeded AND the broker burned a
// dead-air attempt on a victim getting there (observed as a
// fleet_failover_total{node=victim} increment — once passive detection
// benches the victim, routing avoids it and there is no failover). For
// each such submission the broker's federated /trace/<id> must return
// ONE stitched tree holding both the dead-air attempt on the victim (a
// [fleet]-noted span tagged with the victim's name) and a span from
// the sibling that answered. Scenarios assert the two counts are
// equal — a failover whose trace cannot prove what happened is an
// observability loss even when no request was.
struct ChaosReport {
  std::vector<std::string> victims;
  int jobs_submitted = 0;
  int management_ok = 0;
  int management_denied = 0;
  int management_typed_failures = 0;
  int management_lost = 0;
  int failover_submissions = 0;
  int failover_traces_stitched = 0;
  bool recovered = false;
  std::int64_t recovery_us = -1;
};

// Runs one scenario against `fleet` through its broker:
//   1. each credential in `users` submits one job per RSL in `rsls`
//      (all must succeed — the fleet starts healthy);
//   2. victims drawn from FaultRng(seed) get the scenario's mode;
//   3. every job's status is queried through the broker and classified;
//   4. the fault heals, victims reattach, and recovery is probed until
//      every job answers again or the budget is spent.
// The caller owns policy/accounts: `users` must be permitted to submit
// the `rsls` and query their own jobs.
ChaosReport RunChaosScenario(Fleet& fleet,
                             const std::vector<gsi::Credential>& users,
                             const std::vector<std::string>& rsls,
                             const ChaosScenarioOptions& options);

}  // namespace gridauthz::fleet
