#include "fleet/health.h"

#include <cstdlib>

#include "obs/metrics.h"

namespace gridauthz::fleet {

std::string_view to_string(NodeHealth health) {
  switch (health) {
    case NodeHealth::kUp:
      return "up";
    case NodeHealth::kDegraded:
      return "degraded";
    case NodeHealth::kDown:
      return "down";
  }
  return "unknown";
}

namespace {

std::int64_t AttrInt(const mds::Entry& entry, std::string_view name) {
  return std::strtoll(entry.GetFirst(name, "0").c_str(), nullptr, 10);
}

}  // namespace

NodeHealthReport ScoreGatekeeperEntry(const mds::Entry& entry) {
  NodeHealthReport report;
  report.node = entry.GetFirst("mds-gatekeeper-node");
  const std::string status = entry.GetFirst("mds-health-status", "unreachable");
  if (status == "unreachable") {
    report.health = NodeHealth::kDown;
    return report;
  }
  report.queue_depth = AttrInt(entry, "mds-queue-depth");
  report.breakers_open = AttrInt(entry, "mds-breakers-open");
  report.slo_burn_milli = AttrInt(entry, "mds-slo-burn-milli");
  report.policy_generation =
      static_cast<std::uint64_t>(AttrInt(entry, "mds-policy-generation"));
  if (status != "ok" || report.breakers_open > 0 ||
      report.slo_burn_milli > 1000) {
    report.health = NodeHealth::kDegraded;
  } else {
    report.health = NodeHealth::kUp;
  }
  return report;
}

HealthTracker::HealthTracker(int failure_threshold)
    : failure_threshold_(failure_threshold) {}

NodeHealth HealthTracker::CombinedLocked(const State& state) const {
  if (state.consecutive_failures >= failure_threshold_) {
    return NodeHealth::kDown;
  }
  if (!state.refreshed) return NodeHealth::kUp;
  return state.report.health;
}

void HealthTracker::ExportGaugeLocked(const std::string& node,
                                      const State& state) const {
  obs::Metrics()
      .GetGauge("fleet_node_health", {{"node", node}})
      .Set(static_cast<std::int64_t>(CombinedLocked(state)));
}

void HealthTracker::Update(NodeHealthReport report) {
  std::lock_guard lock(mu_);
  State& state = states_[report.node];
  const std::string node = report.node;
  const bool reachable = report.health != NodeHealth::kDown;
  state.report = std::move(report);
  state.refreshed = true;
  if (reachable) state.consecutive_failures = 0;
  ExportGaugeLocked(node, state);
}

void HealthTracker::RecordFailure(const std::string& node) {
  std::lock_guard lock(mu_);
  State& state = states_[node];
  ++state.consecutive_failures;
  ExportGaugeLocked(node, state);
}

void HealthTracker::RecordSuccess(const std::string& node) {
  std::lock_guard lock(mu_);
  State& state = states_[node];
  state.consecutive_failures = 0;
  ExportGaugeLocked(node, state);
}

void HealthTracker::ForceDown(const std::string& node) {
  std::lock_guard lock(mu_);
  State& state = states_[node];
  state.consecutive_failures = failure_threshold_;
  ExportGaugeLocked(node, state);
}

NodeHealth HealthTracker::HealthOf(const std::string& node) const {
  std::lock_guard lock(mu_);
  const auto it = states_.find(node);
  if (it == states_.end()) return NodeHealth::kUp;
  return CombinedLocked(it->second);
}

NodeHealthReport HealthTracker::ReportOf(const std::string& node) const {
  std::lock_guard lock(mu_);
  const auto it = states_.find(node);
  if (it == states_.end()) return NodeHealthReport{};
  return it->second.report;
}

}  // namespace gridauthz::fleet
