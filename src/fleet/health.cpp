#include "fleet/health.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "obs/metrics.h"

namespace gridauthz::fleet {

std::string_view to_string(NodeHealth health) {
  switch (health) {
    case NodeHealth::kUp:
      return "up";
    case NodeHealth::kDegraded:
      return "degraded";
    case NodeHealth::kDown:
      return "down";
  }
  return "unknown";
}

namespace {

std::int64_t AttrInt(const mds::Entry& entry, std::string_view name) {
  return std::strtoll(entry.GetFirst(name, "0").c_str(), nullptr, 10);
}

// Appends to a rolling window, overwriting the oldest sample once full.
void PushWindow(std::vector<std::int64_t>& window, std::size_t& next,
                std::size_t capacity, std::int64_t value) {
  if (window.size() < capacity) {
    window.push_back(value);
  } else {
    window[next] = value;
    next = (next + 1) % capacity;
  }
}

std::int64_t Median(std::vector<std::int64_t> values) {
  if (values.empty()) return 0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

// One-sided robust modified z: 0.6745 * (value - median) / MAD, zero
// for values at or below the median. With MAD == 0 (several identical
// baselines) the denominator degenerates; fall back to 5% of the fleet
// median (floored at 1) so a genuinely deviant node still scores
// instead of dividing by zero.
double OneSidedModifiedZ(std::int64_t value, std::int64_t median,
                         std::int64_t mad) {
  const double deviation = static_cast<double>(value - median);
  if (deviation <= 0.0) return 0.0;
  if (mad > 0) return 0.6745 * deviation / static_cast<double>(mad);
  const double scale =
      std::max(1.0, 0.05 * std::abs(static_cast<double>(median)));
  return deviation / scale;
}

}  // namespace

NodeHealthReport ScoreGatekeeperEntry(const mds::Entry& entry) {
  NodeHealthReport report;
  report.node = entry.GetFirst("mds-gatekeeper-node");
  const std::string status = entry.GetFirst("mds-health-status", "unreachable");
  if (status == "unreachable") {
    report.health = NodeHealth::kDown;
    return report;
  }
  report.queue_depth = AttrInt(entry, "mds-queue-depth");
  report.breakers_open = AttrInt(entry, "mds-breakers-open");
  report.slo_burn_milli = AttrInt(entry, "mds-slo-burn-milli");
  report.policy_generation =
      static_cast<std::uint64_t>(AttrInt(entry, "mds-policy-generation"));
  if (status != "ok" || report.breakers_open > 0 ||
      report.slo_burn_milli > 1000) {
    report.health = NodeHealth::kDegraded;
  } else {
    report.health = NodeHealth::kUp;
  }
  return report;
}

HealthTracker::HealthTracker(int failure_threshold)
    : failure_threshold_(failure_threshold) {}

NodeHealth HealthTracker::CombinedLocked(const State& state) const {
  if (state.consecutive_failures >= failure_threshold_) {
    return NodeHealth::kDown;
  }
  if (!state.refreshed) return NodeHealth::kUp;
  return state.report.health;
}

void HealthTracker::ExportGaugeLocked(const std::string& node,
                                      const State& state) const {
  obs::Metrics()
      .GetGauge("fleet_node_health", {{"node", node}})
      .Set(static_cast<std::int64_t>(CombinedLocked(state)));
}

void HealthTracker::Update(NodeHealthReport report) {
  std::lock_guard lock(mu_);
  State& state = states_[report.node];
  const std::string node = report.node;
  const bool reachable = report.health != NodeHealth::kDown;
  if (reachable) {
    PushWindow(state.burn_window, state.burn_next, kBurnWindow,
               report.slo_burn_milli);
  }
  state.report = std::move(report);
  state.refreshed = true;
  if (reachable) state.consecutive_failures = 0;
  ExportGaugeLocked(node, state);
}

void HealthTracker::RecordLatency(const std::string& node,
                                  std::int64_t latency_us) {
  std::lock_guard lock(mu_);
  State& state = states_[node];
  PushWindow(state.latency_window, state.latency_next, kLatencyWindow,
             latency_us);
}

std::vector<NodeScore> HealthTracker::Scores() const {
  std::lock_guard lock(mu_);
  std::vector<NodeScore> out;
  out.reserve(states_.size());
  for (const auto& [node, state] : states_) {
    NodeScore score;
    score.node = node;
    score.latency_samples = state.latency_window.size();
    if (score.latency_samples >= kMinLatencySamples) {
      score.baseline_latency_us = Median(state.latency_window);
    }
    score.burn_samples = state.burn_window.size();
    if (score.burn_samples >= kMinBurnSamples) {
      score.baseline_burn_milli = Median(state.burn_window);
    }
    out.push_back(std::move(score));
  }

  // Fleet-relative scoring per signal: median and MAD over the nodes
  // that have a baseline for that signal; each such node's one-sided
  // modified z against them. Fewer than kMinFleetForScoring baselines
  // is no fleet to deviate from — a 2-node comparison cannot say which
  // of the two is the odd one out.
  auto score_signal = [&](auto baseline_of, auto z_of) {
    std::vector<std::int64_t> baselines;
    std::vector<NodeScore*> scored;
    for (NodeScore& score : out) {
      if (auto baseline = baseline_of(score)) {
        baselines.push_back(*baseline);
        scored.push_back(&score);
      }
    }
    if (baselines.size() < kMinFleetForScoring) return;
    const std::int64_t median = Median(baselines);
    std::vector<std::int64_t> deviations;
    deviations.reserve(baselines.size());
    for (std::int64_t baseline : baselines) {
      deviations.push_back(std::abs(baseline - median));
    }
    const std::int64_t mad = Median(deviations);
    for (std::size_t i = 0; i < scored.size(); ++i) {
      z_of(*scored[i]) = OneSidedModifiedZ(baselines[i], median, mad);
    }
  };
  score_signal(
      [](const NodeScore& s) -> std::optional<std::int64_t> {
        if (s.latency_samples < kMinLatencySamples) return std::nullopt;
        return s.baseline_latency_us;
      },
      [](NodeScore& s) -> double& { return s.latency_z; });
  score_signal(
      [](const NodeScore& s) -> std::optional<std::int64_t> {
        if (s.burn_samples < kMinBurnSamples) return std::nullopt;
        return s.baseline_burn_milli;
      },
      [](NodeScore& s) -> double& { return s.burn_z; });

  for (NodeScore& score : out) {
    score.outlier = score.latency_z > kOutlierZ || score.burn_z > kOutlierZ;
    obs::Metrics()
        .GetGauge("fleet_node_outlier", {{"node", score.node}})
        .Set(score.outlier ? 1 : 0);
  }
  return out;
}

bool HealthTracker::IsOutlier(const std::string& node) const {
  for (const NodeScore& score : Scores()) {
    if (score.node == node) return score.outlier;
  }
  return false;
}

void HealthTracker::RecordFailure(const std::string& node) {
  std::lock_guard lock(mu_);
  State& state = states_[node];
  ++state.consecutive_failures;
  ExportGaugeLocked(node, state);
}

void HealthTracker::RecordSuccess(const std::string& node) {
  std::lock_guard lock(mu_);
  State& state = states_[node];
  state.consecutive_failures = 0;
  ExportGaugeLocked(node, state);
}

void HealthTracker::ForceDown(const std::string& node) {
  std::lock_guard lock(mu_);
  State& state = states_[node];
  state.consecutive_failures = failure_threshold_;
  ExportGaugeLocked(node, state);
}

NodeHealth HealthTracker::HealthOf(const std::string& node) const {
  std::lock_guard lock(mu_);
  const auto it = states_.find(node);
  if (it == states_.end()) return NodeHealth::kUp;
  return CombinedLocked(it->second);
}

NodeHealthReport HealthTracker::ReportOf(const std::string& node) const {
  std::lock_guard lock(mu_);
  const auto it = states_.find(node);
  if (it == states_.end()) return NodeHealthReport{};
  return it->second.report;
}

}  // namespace gridauthz::fleet
