#include "fleet/node.h"

#include "fleet/hash.h"
#include "mds/provider.h"

namespace gridauthz::fleet {

namespace wire = gram::wire;

namespace {

gram::SiteOptions SiteOptionsFor(const NodeOptions& options) {
  gram::SiteOptions site;
  site.host = options.host;
  site.ca_name = "/O=Grid/CN=" + options.name + " CA";
  site.cpu_slots = options.cpu_slots;
  site.shared_clock = options.clock;
  return site;
}

wire::ObsServiceOptions ObsOptionsFor(
    const NodeOptions& options,
    const std::shared_ptr<core::StaticPolicySource>& policy,
    wire::WireTransport* inner, const wire::ServerTransport* server) {
  wire::ObsServiceOptions obs;
  obs.node_name = options.name;
  obs.policy = policy;
  obs.inner = inner;
  obs.server = server;
  return obs;
}

}  // namespace

GatekeeperNode::GatekeeperNode(NodeOptions options,
                               const core::PolicyDocument& policy)
    : options_(std::move(options)),
      site_(SiteOptionsFor(options_)),
      policy_(std::make_shared<core::StaticPolicySource>(options_.name + "-pep",
                                                         policy)),
      domain_{options_.name, &metrics_, &spans_, &slo_,
              SpanSeedFor(options_.name)},
      endpoint_(&site_.gatekeeper(), &site_.jmis(), &site_.trust(),
                &site_.clock()),
      endpoint_domain_(&endpoint_, &domain_),
      server_(options_.use_server
                  ? std::make_unique<wire::ServerTransport>(&endpoint_domain_,
                                                            options_.server)
                  : nullptr),
      obs_(ObsOptionsFor(options_, policy_,
                         server_ ? static_cast<wire::WireTransport*>(
                                       server_.get())
                                 : &endpoint_,
                         server_.get())),
      outer_(&obs_, &domain_) {
  site_.UseJobManagerPep(policy_);
}

void GatekeeperNode::InstallPolicy(const core::PolicyDocument& document) {
  policy_->Replace(document);
}

Fleet::Fleet(FleetOptions options, SimClock* clock,
             const core::PolicyDocument& initial_policy)
    : options_(std::move(options)), clock_(clock) {
  for (int i = 0; i < options_.nodes; ++i) {
    NodeOptions node;
    node.name = options_.name_prefix + std::to_string(i);
    node.host = node.name + options_.host_suffix;
    node.clock = clock_;
    node.cpu_slots = options_.cpu_slots;
    node.use_server = options_.use_server;
    node.server = options_.server;
    nodes_.push_back(std::make_unique<GatekeeperNode>(node, initial_policy));
  }

  // Cross-trust: a credential issued by any node's CA is accepted
  // everywhere — one federation, N certificate authorities.
  for (auto& issuing : nodes_) {
    for (auto& trusting : nodes_) {
      if (issuing.get() == trusting.get()) continue;
      trusting->site().trust().AddTrustedCa(
          issuing->site().ca().certificate());
    }
  }

  std::vector<FleetNodeHandle> handles;
  for (auto& node : nodes_) {
    chaos_.push_back(
        std::make_unique<ChaosTransport>(&node->transport(), clock_));
    ChaosTransport* link = chaos_.back().get();

    // Discovery probes the node THROUGH its chaos link: a killed node is
    // as unreachable to MDS as it is to traffic.
    directory_.RegisterProvider(
        node->name(),
        mds::MakeGatekeeperProvider(
            node->name(), node->host(), [link]() -> Expected<std::string> {
              GA_TRY(wire::ObsReply reply,
                     wire::ObsRequest(*link, gsi::Credential{}, "/healthz"));
              if (reply.status != 200) {
                return Error{ErrCode::kUnavailable,
                             "healthz status " + std::to_string(reply.status)};
              }
              return reply.body;
            }));

    FleetNodeHandle handle;
    handle.name = node->name();
    handle.host = node->host();
    handle.transport = link;
    handle.install_policy =
        [raw = node.get()](const core::PolicyDocument& document) {
          raw->InstallPolicy(document);
        };
    handles.push_back(std::move(handle));
  }
  broker_ = std::make_unique<FleetBroker>(std::move(handles), &directory_,
                                          options_.broker);
  broker_->RefreshHealth();
}

Expected<gsi::Credential> Fleet::CreateUser(const std::string& dn) {
  return nodes_.front()->site().CreateUser(dn);
}

Expected<void> Fleet::AddAccount(const std::string& account) {
  for (auto& node : nodes_) {
    GA_TRY_VOID(node->site().AddAccount(account));
  }
  return {};
}

Expected<void> Fleet::MapUser(const gsi::Credential& user,
                              const std::string& account) {
  for (auto& node : nodes_) {
    GA_TRY_VOID(node->site().MapUser(user, account));
  }
  return {};
}

}  // namespace gridauthz::fleet
