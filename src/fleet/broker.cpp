#include "fleet/broker.h"

#include <cstdio>
#include <unordered_set>

#include "common/json.h"
#include "common/logging.h"
#include "fleet/hash.h"
#include "gram/obs_service.h"
#include "obs/contention.h"
#include "obs/federate.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace gridauthz::fleet {

namespace wire = gram::wire;

namespace {

// A decodable frame is an answer; an empty or undecodable one is the
// dead-peer signal (exactly what WireClient treats as a transport
// failure, and what FaultyTransport/chaos produce for outages).
bool IsAnswer(std::string_view reply) {
  return wire::MessageView::Parse(reply).ok();
}

std::string EncodeJobFailure(const std::string& reason) {
  wire::JobRequestReply reply;
  reply.code = gram::GramErrorCode::kAuthorizationSystemFailure;
  reply.reason = reason;
  return reply.Encode().Serialize();
}

std::string EncodeManagementFailure(const std::string& reason) {
  wire::ManagementReply reply;
  reply.code = gram::GramErrorCode::kAuthorizationSystemFailure;
  reply.reason = reason;
  return reply.Encode().Serialize();
}

std::string EncodeObsReply(int status, const std::string& content_type,
                           const std::string& body) {
  std::string frame;
  wire::FrameWriter writer(&frame);
  writer.Add("body", body);
  writer.Add("content-type", content_type);
  writer.Add("message-type", "obs-reply");
  writer.AddInt("status", status);
  return frame;
}

std::string RenderDouble3(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

// The frame to forward to a node: the client's frame plus the broker's
// span id as `parent-span-id` (so node-side spans parent the attempt
// span, DESIGN.md §15) and, when the client sent no `trace-id`, the one
// the broker's TraceScope minted (so node spans join the broker's trace
// instead of starting their own). Frames are "key: value" CRLF lines in
// any order, so appending is a cheap copy — no re-encode.
std::string ForwardedFrame(std::string_view frame, bool client_sent_trace,
                           const std::string& trace_id,
                           std::uint64_t parent_span_id) {
  std::string out{frame};
  if (!out.empty() && out.back() != '\n') out += "\r\n";
  if (!client_sent_trace && !trace_id.empty()) {
    out += "trace-id: " + trace_id + "\r\n";
  }
  out += "parent-span-id: " + std::to_string(parent_span_id) + "\r\n";
  return out;
}

constexpr std::string_view kTracePrefix = "/trace/";

}  // namespace

FleetBroker::FleetBroker(std::vector<FleetNodeHandle> nodes,
                         mds::DirectoryService* directory,
                         FleetBrokerOptions options)
    : nodes_(std::move(nodes)),
      directory_(directory),
      options_(options),
      tracker_(options.failure_threshold) {
  names_.reserve(nodes_.size());
  for (const FleetNodeHandle& node : nodes_) names_.push_back(node.name);
  domain_.node = "fleet-broker";
  domain_.span_seed = SpanSeedFor(domain_.node);
}

std::string FleetBroker::Handle(const gsi::Credential& peer,
                                std::string_view frame) {
  auto message = wire::MessageView::Parse(frame);
  if (!message.ok()) {
    wire::JobRequestReply reply;
    reply.code = gram::GramErrorCode::kInvalidRequest;
    reply.reason = std::string{kReasonFleet} + " malformed frame: " +
                   message.error().to_string();
    return reply.Encode().Serialize();
  }
  const std::string type{message->Get("message-type").value_or("")};
  // Broker observability identity for everything below: spans carry
  // node "fleet-broker" and namespaced ids; the client's trace-id is
  // adopted (or one minted) so routing spans and the node-side spans
  // they cause share one trace.
  obs::ObsDomainScope domain_scope(&domain_);
  obs::TraceScope trace(std::string{message->Get("trace-id").value_or("")});
  obs::Metrics()
      .GetCounter("fleet_requests_total", {{"type", type}})
      .Increment();
  if (type == "job-request") return RouteJobRequest(peer, frame);
  if (type == "management-request") {
    return RouteManagement(peer, *message, frame);
  }
  if (type == "obs-request") return HandleObs(peer, *message, frame);
  wire::JobRequestReply reply;
  reply.code = gram::GramErrorCode::kInvalidRequest;
  reply.reason = std::string{kReasonFleet} + " unsupported message-type '" +
                 type + "'";
  return reply.Encode().Serialize();
}

std::vector<std::size_t> FleetBroker::Candidates(std::string_view key) const {
  const std::vector<std::size_t> ranked = RankNodes(key, names_);
  // Outlier routing penalty: an Up node whose latency or SLO-burn
  // baseline deviates from the fleet (HealthTracker::Scores) still
  // serves, but only after every unremarkable Up node has had its
  // chance — a node drifting toward failure sheds first-choice traffic
  // before any health probe calls it degraded.
  std::unordered_set<std::string> outliers;
  for (const NodeScore& score : tracker_.Scores()) {
    if (score.outlier) outliers.insert(score.node);
  }
  std::vector<std::size_t> candidates;
  candidates.reserve(ranked.size());
  for (const std::size_t i : ranked) {
    if (tracker_.HealthOf(names_[i]) == NodeHealth::kUp &&
        outliers.count(names_[i]) == 0) {
      candidates.push_back(i);
    }
  }
  for (const std::size_t i : ranked) {
    if (tracker_.HealthOf(names_[i]) == NodeHealth::kUp &&
        outliers.count(names_[i]) != 0) {
      candidates.push_back(i);
    }
  }
  for (const std::size_t i : ranked) {
    if (tracker_.HealthOf(names_[i]) == NodeHealth::kDegraded) {
      candidates.push_back(i);
    }
  }
  return candidates;
}

std::optional<std::size_t> FleetBroker::NodeByHost(
    std::string_view host) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].host == host) return i;
  }
  return std::nullopt;
}

std::string FleetBroker::Attempt(std::size_t index,
                                 const gsi::Credential& peer,
                                 std::string_view frame) {
  const FleetNodeHandle& node = nodes_[index];
  // The attempt span is tagged with the TARGET node: when the node is
  // dead it records nothing itself, so this span is the only evidence
  // in the stitched trace that the broker tried it.
  obs::ScopedSpan span("fleet/attempt");
  span.set_node(node.name);
  bool client_sent_trace = true;
  if (auto parsed = wire::MessageView::Parse(frame); parsed.ok()) {
    client_sent_trace = parsed->Get("trace-id").has_value();
  }
  const std::string forwarded = ForwardedFrame(
      frame, client_sent_trace, obs::CurrentTraceId(), span.span_id());
  const std::int64_t start_us = obs::ObsClock()->NowMicros();
  std::string reply = node.transport->Handle(peer, forwarded);
  const std::int64_t elapsed_us = obs::ObsClock()->NowMicros() - start_us;
  if (IsAnswer(reply)) {
    tracker_.RecordSuccess(node.name);
    tracker_.RecordLatency(node.name, elapsed_us);
    obs::Metrics()
        .GetCounter("fleet_routed_total", {{"node", node.name}})
        .Increment();
    return reply;
  }
  tracker_.RecordFailure(node.name);
  obs::Metrics()
      .GetCounter("fleet_failover_total", {{"node", node.name}})
      .Increment();
  span.set_note(std::string{kReasonFleet} + " dead air from node '" +
                node.name + "'; failing over");
  GA_LOG(kWarn, "fleet") << "node '" << node.name
                         << "' failed to answer; failing over";
  return {};
}

std::string FleetBroker::RouteJobRequest(const gsi::Credential& peer,
                                         std::string_view frame) {
  const std::string owner = peer.empty() ? "" : peer.identity().str();
  const std::vector<std::size_t> candidates = Candidates(owner);
  int attempts = 0;
  for (const std::size_t index : candidates) {
    if (attempts >= options_.max_route_attempts) break;
    ++attempts;
    std::string reply = Attempt(index, peer, frame);
    if (!reply.empty()) return reply;
  }
  obs::Metrics().GetCounter("fleet_exhausted_total", {}).Increment();
  return EncodeJobFailure(std::string{kReasonFleet} +
                          " no live gatekeeper for owner '" + owner +
                          "' after " + std::to_string(attempts) +
                          " attempt(s); fleet fails closed");
}

std::string FleetBroker::RouteManagement(const gsi::Credential& peer,
                                         const wire::MessageView& message,
                                         std::string_view frame) {
  const std::string contact{message.Get("job-contact").value_or("")};
  const std::string_view host = gram::ContactHost(contact);
  const std::optional<std::size_t> owner = NodeByHost(host);

  // Owner first (when alive), then rendezvous-ranked siblings as hedges.
  std::vector<std::size_t> order;
  if (owner && tracker_.HealthOf(names_[*owner]) != NodeHealth::kDown) {
    order.push_back(*owner);
  }
  for (const std::size_t index : Candidates(contact)) {
    if (owner && index == *owner) continue;
    order.push_back(index);
  }

  int attempts = 0;
  for (const std::size_t index : order) {
    if (attempts >= options_.max_route_attempts) break;
    ++attempts;
    std::string reply = Attempt(index, peer, frame);
    if (reply.empty()) continue;
    // A sibling that does not know the contact has not answered the
    // question "what happened to this job" — only the owner's (or an
    // ownerless fleet's) not-found is authoritative.
    if (owner && index != *owner) {
      auto decoded =
          wire::ManagementReply::Decode(wire::Message::Parse(reply).value());
      if (decoded.ok() &&
          decoded->code == gram::GramErrorCode::kJobNotFound) {
        continue;
      }
    }
    return reply;
  }
  obs::Metrics().GetCounter("fleet_exhausted_total", {}).Increment();
  const std::string owner_label =
      owner ? nodes_[*owner].name : std::string{host};
  return EncodeManagementFailure(
      std::string{kReasonFleet} + " owning gatekeeper '" + owner_label +
      "' unreachable for contact '" + contact + "' after " +
      std::to_string(attempts) + " attempt(s); management fails closed");
}

std::string FleetBroker::HandleObs(const gsi::Credential& peer,
                                   const wire::MessageView& message,
                                   std::string_view frame) {
  const std::string path{message.Get("path").value_or("")};
  if (path == "/healthz") {
    return EncodeObsReply(200, "application/json", FleetHealthz());
  }
  if (path == "/metrics/fleet") return FederatedMetrics(peer);
  if (path.size() > kTracePrefix.size() &&
      path.compare(0, kTracePrefix.size(), kTracePrefix) == 0) {
    return FederatedTrace(peer, path.substr(kTracePrefix.size()));
  }
  if (path == "/contention") return FederatedContention(peer);
  if (path == "/profile") return FederatedProfile(peer, message);
  int attempts = 0;
  for (const std::size_t index : Candidates(path)) {
    if (attempts >= options_.max_route_attempts) break;
    ++attempts;
    std::string reply = Attempt(index, peer, frame);
    if (!reply.empty()) return reply;
  }
  return EncodeObsReply(503, "text/plain",
                        std::string{kReasonFleet} +
                            " no live gatekeeper for obs path '" + path +
                            "'");
}

void FleetBroker::RefreshHealth() {
  if (directory_ == nullptr) return;
  auto entries = directory_->Search("(objectclass=mds-gatekeeper)");
  if (!entries.ok()) {
    GA_LOG(kWarn, "fleet") << "health refresh failed: "
                           << entries.error().to_string();
    return;
  }
  for (const mds::Entry& entry : *entries) {
    tracker_.Update(ScoreGatekeeperEntry(entry));
  }
}

NodeHealth FleetBroker::HealthOf(const std::string& node) const {
  return tracker_.HealthOf(node);
}

void FleetBroker::MarkNodeDown(const std::string& node) {
  tracker_.ForceDown(node);
}

void FleetBroker::ReattachNode(const std::string& node) {
  tracker_.RecordSuccess(node);  // clear the passive down-mark
  std::optional<core::PolicyDocument> to_push;
  {
    std::lock_guard lock(policy_mu_);
    if (last_policy_) to_push = *last_policy_;
  }
  if (to_push) {
    for (const FleetNodeHandle& handle : nodes_) {
      if (handle.name == node && handle.install_policy) {
        handle.install_policy(*to_push);
      }
    }
  }
  RefreshHealth();
}

void FleetBroker::PushPolicy(const core::PolicyDocument& document) {
  {
    std::lock_guard lock(policy_mu_);
    ++pushes_;
    last_policy_ = document;
  }
  for (const FleetNodeHandle& handle : nodes_) {
    if (!handle.install_policy) continue;
    if (tracker_.HealthOf(handle.name) == NodeHealth::kDown) {
      GA_LOG(kWarn, "fleet") << "policy push skipped down node '"
                             << handle.name << "'; will re-sync on reattach";
      continue;
    }
    handle.install_policy(document);
  }
  RefreshHealth();
}

std::uint64_t FleetBroker::expected_policy_generation() const {
  std::lock_guard lock(policy_mu_);
  // StaticPolicySource generations start at 1; each push bumps by one on
  // every node that received it.
  return 1 + pushes_;
}

bool FleetBroker::PolicyConverged() const {
  const std::uint64_t expected = expected_policy_generation();
  for (const std::string& name : names_) {
    if (tracker_.HealthOf(name) == NodeHealth::kDown) continue;
    if (tracker_.ReportOf(name).policy_generation != expected) return false;
  }
  return true;
}

std::string FleetBroker::FederatedMetrics(const gsi::Credential& peer) {
  obs::MetricsFederator federator;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // Conditional scrape (ROADMAP 1e): offer the node the generation of
    // our cached parse. An idle node answers 304 — no render on its
    // side, no re-parse here — and the cached ParsedNodeDoc folds back
    // in through the same AddParsed path a fresh one would take, so the
    // merged document is byte-identical either way.
    CachedNodeDoc cached;
    {
      std::lock_guard lock(scrape_mu_);
      if (auto it = scrape_cache_.find(names_[i]); it != scrape_cache_.end()) {
        cached = it->second;
      }
    }
    std::vector<std::pair<std::string, std::string>> filters;
    if (cached.doc != nullptr) {
      filters.emplace_back("if-generation", cached.generation);
    }
    auto reply = wire::ObsRequest(*nodes_[i].transport, peer, "/metrics.json",
                                  filters);
    if (!reply.ok() || (reply->status != 200 && reply->status != 304)) {
      federator.MarkUnreachable(names_[i]);
      continue;
    }
    std::shared_ptr<const obs::MetricsFederator::ParsedNodeDoc> doc;
    if (reply->status == 304) {
      // A 304 we did not solicit is a protocol violation; treat the
      // node as unreachable rather than merge nothing silently.
      if (cached.doc == nullptr) {
        federator.MarkUnreachable(names_[i]);
        continue;
      }
      doc = cached.doc;
      obs::Metrics()
          .GetCounter("fleet_scrape_cached_total", {{"node", names_[i]}})
          .Increment();
    } else {
      auto parsed = obs::MetricsFederator::ParseNodeDoc(names_[i],
                                                        reply->body);
      if (!parsed.ok()) {
        return EncodeObsReply(500, "text/plain", parsed.error().to_string());
      }
      doc = *parsed;
      obs::Metrics()
          .GetCounter("fleet_scrape_full_total", {{"node", names_[i]}})
          .Increment();
      if (!reply->generation.empty()) {
        std::lock_guard lock(scrape_mu_);
        scrape_cache_[names_[i]] = CachedNodeDoc{reply->generation, doc};
      }
    }
    // Schema disagreement (mismatched histogram bounds, kind conflicts)
    // is a configuration bug, not an outage: refuse the whole scrape
    // with the [federation]-tagged error rather than serve a merged
    // document that silently means nothing.
    auto added = federator.AddParsed(names_[i], *doc);
    if (!added.ok()) {
      return EncodeObsReply(500, "text/plain", added.error().to_string());
    }
  }
  return EncodeObsReply(200, "application/json", federator.RenderJson());
}

std::string FleetBroker::FederatedTrace(const gsi::Credential& peer,
                                        const std::string& trace_id) {
  // The broker's own route/attempt spans live in the process-global
  // store (domain_.spans is null); each node contributes through its
  // /trace/<id> endpoint, tagged with its name. A dead node simply has
  // nothing to say — its failed attempt survives as the broker-side
  // span noted with the [fleet] dead-air reason.
  std::vector<obs::Span> spans = obs::Tracer().ForTrace(trace_id);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto reply = wire::ObsRequest(*nodes_[i].transport, peer,
                                  std::string{kTracePrefix} + trace_id);
    if (!reply.ok() || reply->status != 200) continue;
    auto parsed = obs::ParseTraceJson(reply->body, names_[i]);
    if (!parsed.ok()) {
      return EncodeObsReply(500, "text/plain", parsed.error().to_string());
    }
    spans.insert(spans.end(), parsed->begin(), parsed->end());
  }
  if (spans.empty()) {
    return EncodeObsReply(404, "text/plain",
                          "no spans recorded for trace '" + trace_id + "'");
  }
  return EncodeObsReply(200, "application/json",
                        obs::RenderStitchedTrace(trace_id, std::move(spans)));
}

std::string FleetBroker::FederatedContention(const gsi::Credential& peer) {
  std::string nodes_json = "[";
  std::string unreachable = "[";
  bool first_node = true, first_unreachable = true;
  {
    json::ObjectWriter entry;
    entry.String("node", "fleet-broker");
    entry.Raw("contention", obs::Contention().RenderJson());
    nodes_json += entry.Take();
    first_node = false;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto reply = wire::ObsRequest(*nodes_[i].transport, peer, "/contention");
    if (!reply.ok() || reply->status != 200) {
      if (!first_unreachable) unreachable += ",";
      first_unreachable = false;
      unreachable += "\"" + json::Escape(names_[i]) + "\"";
      continue;
    }
    if (!first_node) nodes_json += ",";
    first_node = false;
    json::ObjectWriter entry;
    entry.String("node", names_[i]);
    entry.Raw("contention", reply->body);
    nodes_json += entry.Take();
  }
  nodes_json += "]";
  unreachable += "]";
  json::ObjectWriter out;
  out.Raw("nodes", nodes_json);
  out.Raw("unreachable", unreachable);
  return EncodeObsReply(200, "application/json", out.Take());
}

std::string FleetBroker::FederatedProfile(const gsi::Credential& peer,
                                          const wire::MessageView& message) {
  if (auto target = message.Get("node")) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (names_[i] != *target) continue;
      auto reply = wire::ObsRequest(*nodes_[i].transport, peer, "/profile");
      if (!reply.ok()) {
        return EncodeObsReply(503, "text/plain",
                              std::string{kReasonFleet} + " node '" +
                                  names_[i] + "' unreachable: " +
                                  reply.error().to_string());
      }
      return EncodeObsReply(reply->status, reply->content_type, reply->body);
    }
    return EncodeObsReply(404, "text/plain",
                          "unknown node '" + std::string{*target} + "'");
  }
  // Merged mode: the broker's own stage stacks plus every reachable
  // node's, identical paths summed — one collapsed document feedable to
  // a flamegraph renderer for the whole fleet.
  std::vector<std::string> docs;
  docs.push_back(obs::Profiler().RenderCollapsed());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto reply = wire::ObsRequest(*nodes_[i].transport, peer, "/profile");
    if (!reply.ok() || reply->status != 200) continue;
    docs.push_back(reply->body);
  }
  return EncodeObsReply(200, "text/plain",
                        obs::MergeCollapsedStacks(docs));
}

std::string FleetBroker::FleetHealthz() {
  RefreshHealth();
  const std::vector<NodeScore> scores = tracker_.Scores();
  const auto score_of = [&scores](const std::string& name) -> const NodeScore* {
    for (const NodeScore& score : scores) {
      if (score.node == name) return &score;
    }
    return nullptr;
  };
  std::size_t up = 0, degraded = 0, down = 0, outliers = 0;
  std::string nodes_json = "[";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const std::string& name = names_[i];
    const NodeHealth health = tracker_.HealthOf(name);
    if (health == NodeHealth::kUp) ++up;
    if (health == NodeHealth::kDegraded) ++degraded;
    if (health == NodeHealth::kDown) ++down;
    const NodeHealthReport report = tracker_.ReportOf(name);
    if (i > 0) nodes_json += ",";
    json::ObjectWriter entry;
    entry.String("node", name);
    entry.String("host", nodes_[i].host);
    entry.String("health", std::string{to_string(health)});
    entry.Int("queue_depth", report.queue_depth);
    entry.Int("breakers_open", report.breakers_open);
    entry.UInt("policy_generation", report.policy_generation);
    // Fleet-relative outlier score (HealthTracker::Scores): robust
    // z-scores of this node's rolling latency / SLO-burn baselines
    // against the fleet median. Zeros until enough samples accumulate.
    const NodeScore* score = score_of(name);
    entry.Bool("outlier", score != nullptr && score->outlier);
    if (score != nullptr && score->outlier) ++outliers;
    entry.Int("baseline_latency_us",
              score != nullptr ? score->baseline_latency_us : 0);
    entry.Raw("latency_z",
              RenderDouble3(score != nullptr ? score->latency_z : 0.0));
    entry.Int("baseline_burn_milli",
              score != nullptr ? score->baseline_burn_milli : 0);
    entry.Raw("burn_z", RenderDouble3(score != nullptr ? score->burn_z : 0.0));
    nodes_json += entry.Take();
  }
  nodes_json += "]";

  const bool converged = PolicyConverged();
  json::ObjectWriter out;
  out.String("node", "fleet-broker");
  out.String("status",
             (down == 0 && degraded == 0 && converged) ? "ok" : "degraded");
  out.UInt("fleet_size", nodes_.size());
  out.UInt("up", up);
  out.UInt("degraded", degraded);
  out.UInt("down", down);
  out.UInt("outliers", outliers);
  out.UInt("policy_generation", expected_policy_generation());
  out.Bool("policy_converged", converged);
  out.Raw("nodes", nodes_json);
  return out.Take();
}

}  // namespace gridauthz::fleet
