#include "fleet/broker.h"

#include "common/json.h"
#include "common/logging.h"
#include "fleet/hash.h"
#include "gram/obs_service.h"
#include "obs/metrics.h"

namespace gridauthz::fleet {

namespace wire = gram::wire;

namespace {

// A decodable frame is an answer; an empty or undecodable one is the
// dead-peer signal (exactly what WireClient treats as a transport
// failure, and what FaultyTransport/chaos produce for outages).
bool IsAnswer(std::string_view reply) {
  return wire::MessageView::Parse(reply).ok();
}

std::string EncodeJobFailure(const std::string& reason) {
  wire::JobRequestReply reply;
  reply.code = gram::GramErrorCode::kAuthorizationSystemFailure;
  reply.reason = reason;
  return reply.Encode().Serialize();
}

std::string EncodeManagementFailure(const std::string& reason) {
  wire::ManagementReply reply;
  reply.code = gram::GramErrorCode::kAuthorizationSystemFailure;
  reply.reason = reason;
  return reply.Encode().Serialize();
}

std::string EncodeObsReply(int status, const std::string& content_type,
                           const std::string& body) {
  std::string frame;
  wire::FrameWriter writer(&frame);
  writer.Add("body", body);
  writer.Add("content-type", content_type);
  writer.Add("message-type", "obs-reply");
  writer.AddInt("status", status);
  return frame;
}

}  // namespace

FleetBroker::FleetBroker(std::vector<FleetNodeHandle> nodes,
                         mds::DirectoryService* directory,
                         FleetBrokerOptions options)
    : nodes_(std::move(nodes)),
      directory_(directory),
      options_(options),
      tracker_(options.failure_threshold) {
  names_.reserve(nodes_.size());
  for (const FleetNodeHandle& node : nodes_) names_.push_back(node.name);
}

std::string FleetBroker::Handle(const gsi::Credential& peer,
                                std::string_view frame) {
  auto message = wire::MessageView::Parse(frame);
  if (!message.ok()) {
    wire::JobRequestReply reply;
    reply.code = gram::GramErrorCode::kInvalidRequest;
    reply.reason = std::string{kReasonFleet} + " malformed frame: " +
                   message.error().to_string();
    return reply.Encode().Serialize();
  }
  const std::string type{message->Get("message-type").value_or("")};
  obs::Metrics()
      .GetCounter("fleet_requests_total", {{"type", type}})
      .Increment();
  if (type == "job-request") return RouteJobRequest(peer, frame);
  if (type == "management-request") {
    return RouteManagement(peer, *message, frame);
  }
  if (type == "obs-request") return HandleObs(peer, *message, frame);
  wire::JobRequestReply reply;
  reply.code = gram::GramErrorCode::kInvalidRequest;
  reply.reason = std::string{kReasonFleet} + " unsupported message-type '" +
                 type + "'";
  return reply.Encode().Serialize();
}

std::vector<std::size_t> FleetBroker::Candidates(std::string_view key) const {
  const std::vector<std::size_t> ranked = RankNodes(key, names_);
  std::vector<std::size_t> candidates;
  candidates.reserve(ranked.size());
  for (const std::size_t i : ranked) {
    if (tracker_.HealthOf(names_[i]) == NodeHealth::kUp) {
      candidates.push_back(i);
    }
  }
  for (const std::size_t i : ranked) {
    if (tracker_.HealthOf(names_[i]) == NodeHealth::kDegraded) {
      candidates.push_back(i);
    }
  }
  return candidates;
}

std::optional<std::size_t> FleetBroker::NodeByHost(
    std::string_view host) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].host == host) return i;
  }
  return std::nullopt;
}

std::string FleetBroker::Attempt(std::size_t index,
                                 const gsi::Credential& peer,
                                 std::string_view frame) {
  const FleetNodeHandle& node = nodes_[index];
  std::string reply = node.transport->Handle(peer, frame);
  if (IsAnswer(reply)) {
    tracker_.RecordSuccess(node.name);
    obs::Metrics()
        .GetCounter("fleet_routed_total", {{"node", node.name}})
        .Increment();
    return reply;
  }
  tracker_.RecordFailure(node.name);
  obs::Metrics()
      .GetCounter("fleet_failover_total", {{"node", node.name}})
      .Increment();
  GA_LOG(kWarn, "fleet") << "node '" << node.name
                         << "' failed to answer; failing over";
  return {};
}

std::string FleetBroker::RouteJobRequest(const gsi::Credential& peer,
                                         std::string_view frame) {
  const std::string owner = peer.empty() ? "" : peer.identity().str();
  const std::vector<std::size_t> candidates = Candidates(owner);
  int attempts = 0;
  for (const std::size_t index : candidates) {
    if (attempts >= options_.max_route_attempts) break;
    ++attempts;
    std::string reply = Attempt(index, peer, frame);
    if (!reply.empty()) return reply;
  }
  obs::Metrics().GetCounter("fleet_exhausted_total", {}).Increment();
  return EncodeJobFailure(std::string{kReasonFleet} +
                          " no live gatekeeper for owner '" + owner +
                          "' after " + std::to_string(attempts) +
                          " attempt(s); fleet fails closed");
}

std::string FleetBroker::RouteManagement(const gsi::Credential& peer,
                                         const wire::MessageView& message,
                                         std::string_view frame) {
  const std::string contact{message.Get("job-contact").value_or("")};
  const std::string_view host = gram::ContactHost(contact);
  const std::optional<std::size_t> owner = NodeByHost(host);

  // Owner first (when alive), then rendezvous-ranked siblings as hedges.
  std::vector<std::size_t> order;
  if (owner && tracker_.HealthOf(names_[*owner]) != NodeHealth::kDown) {
    order.push_back(*owner);
  }
  for (const std::size_t index : Candidates(contact)) {
    if (owner && index == *owner) continue;
    order.push_back(index);
  }

  int attempts = 0;
  for (const std::size_t index : order) {
    if (attempts >= options_.max_route_attempts) break;
    ++attempts;
    std::string reply = Attempt(index, peer, frame);
    if (reply.empty()) continue;
    // A sibling that does not know the contact has not answered the
    // question "what happened to this job" — only the owner's (or an
    // ownerless fleet's) not-found is authoritative.
    if (owner && index != *owner) {
      auto decoded =
          wire::ManagementReply::Decode(wire::Message::Parse(reply).value());
      if (decoded.ok() &&
          decoded->code == gram::GramErrorCode::kJobNotFound) {
        continue;
      }
    }
    return reply;
  }
  obs::Metrics().GetCounter("fleet_exhausted_total", {}).Increment();
  const std::string owner_label =
      owner ? nodes_[*owner].name : std::string{host};
  return EncodeManagementFailure(
      std::string{kReasonFleet} + " owning gatekeeper '" + owner_label +
      "' unreachable for contact '" + contact + "' after " +
      std::to_string(attempts) + " attempt(s); management fails closed");
}

std::string FleetBroker::HandleObs(const gsi::Credential& peer,
                                   const wire::MessageView& message,
                                   std::string_view frame) {
  const std::string path{message.Get("path").value_or("")};
  if (path == "/healthz") {
    return EncodeObsReply(200, "application/json", FleetHealthz());
  }
  int attempts = 0;
  for (const std::size_t index : Candidates(path)) {
    if (attempts >= options_.max_route_attempts) break;
    ++attempts;
    std::string reply = Attempt(index, peer, frame);
    if (!reply.empty()) return reply;
  }
  return EncodeObsReply(503, "text/plain",
                        std::string{kReasonFleet} +
                            " no live gatekeeper for obs path '" + path +
                            "'");
}

void FleetBroker::RefreshHealth() {
  if (directory_ == nullptr) return;
  auto entries = directory_->Search("(objectclass=mds-gatekeeper)");
  if (!entries.ok()) {
    GA_LOG(kWarn, "fleet") << "health refresh failed: "
                           << entries.error().to_string();
    return;
  }
  for (const mds::Entry& entry : *entries) {
    tracker_.Update(ScoreGatekeeperEntry(entry));
  }
}

NodeHealth FleetBroker::HealthOf(const std::string& node) const {
  return tracker_.HealthOf(node);
}

void FleetBroker::MarkNodeDown(const std::string& node) {
  tracker_.ForceDown(node);
}

void FleetBroker::ReattachNode(const std::string& node) {
  tracker_.RecordSuccess(node);  // clear the passive down-mark
  std::optional<core::PolicyDocument> to_push;
  {
    std::lock_guard lock(policy_mu_);
    if (last_policy_) to_push = *last_policy_;
  }
  if (to_push) {
    for (const FleetNodeHandle& handle : nodes_) {
      if (handle.name == node && handle.install_policy) {
        handle.install_policy(*to_push);
      }
    }
  }
  RefreshHealth();
}

void FleetBroker::PushPolicy(const core::PolicyDocument& document) {
  {
    std::lock_guard lock(policy_mu_);
    ++pushes_;
    last_policy_ = document;
  }
  for (const FleetNodeHandle& handle : nodes_) {
    if (!handle.install_policy) continue;
    if (tracker_.HealthOf(handle.name) == NodeHealth::kDown) {
      GA_LOG(kWarn, "fleet") << "policy push skipped down node '"
                             << handle.name << "'; will re-sync on reattach";
      continue;
    }
    handle.install_policy(document);
  }
  RefreshHealth();
}

std::uint64_t FleetBroker::expected_policy_generation() const {
  std::lock_guard lock(policy_mu_);
  // StaticPolicySource generations start at 1; each push bumps by one on
  // every node that received it.
  return 1 + pushes_;
}

bool FleetBroker::PolicyConverged() const {
  const std::uint64_t expected = expected_policy_generation();
  for (const std::string& name : names_) {
    if (tracker_.HealthOf(name) == NodeHealth::kDown) continue;
    if (tracker_.ReportOf(name).policy_generation != expected) return false;
  }
  return true;
}

std::string FleetBroker::FleetHealthz() {
  RefreshHealth();
  std::size_t up = 0, degraded = 0, down = 0;
  std::string nodes_json = "[";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const std::string& name = names_[i];
    const NodeHealth health = tracker_.HealthOf(name);
    if (health == NodeHealth::kUp) ++up;
    if (health == NodeHealth::kDegraded) ++degraded;
    if (health == NodeHealth::kDown) ++down;
    const NodeHealthReport report = tracker_.ReportOf(name);
    if (i > 0) nodes_json += ",";
    json::ObjectWriter entry;
    entry.String("node", name);
    entry.String("host", nodes_[i].host);
    entry.String("health", std::string{to_string(health)});
    entry.Int("queue_depth", report.queue_depth);
    entry.Int("breakers_open", report.breakers_open);
    entry.UInt("policy_generation", report.policy_generation);
    nodes_json += entry.Take();
  }
  nodes_json += "]";

  const bool converged = PolicyConverged();
  json::ObjectWriter out;
  out.String("node", "fleet-broker");
  out.String("status",
             (down == 0 && degraded == 0 && converged) ? "ok" : "degraded");
  out.UInt("fleet_size", nodes_.size());
  out.UInt("up", up);
  out.UInt("degraded", degraded);
  out.UInt("down", down);
  out.UInt("policy_generation", expected_policy_generation());
  out.Bool("policy_converged", converged);
  out.Raw("nodes", nodes_json);
  return out.Take();
}

}  // namespace gridauthz::fleet
