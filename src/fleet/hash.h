// Rendezvous (highest-random-weight) hashing for fleet placement: every
// broker computes the same owner node for a key with nothing shared but
// the node list, and removing one node remaps only that node's keys —
// the property that makes node-kill failover cheap. The weight function
// is FNV-1a over key and node name fed through the splitmix64 finalizer,
// fixed and platform-independent for the same reason the fault layer's
// FaultRng is: placement must be byte-for-byte reproducible in tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

namespace gridauthz::fleet {

inline std::uint64_t Fnv1a64(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Deterministic per-node span-id seed in [1, 0x7FFF] (obs::MintSpanId
// folds it into the high bits of minted span ids): distinct node names
// get distinct namespaces, so span ids never collide across the
// simulated fleet, and the IDs stay below 2^63 for int64 JSON / frame
// parsing. 0 is excluded — it would mean "no namespacing".
inline std::uint64_t SpanSeedFor(std::string_view name) {
  return (Fnv1a64(name) % 0x7FFF) + 1;
}

// The rendezvous weight of (key, node): higher wins ownership.
inline std::uint64_t RendezvousWeight(std::string_view key,
                                      std::string_view node) {
  std::uint64_t z = Fnv1a64(key) ^ (Fnv1a64(node) * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Indices into `nodes` ordered by descending weight for `key`: element 0
// is the owner, the rest are the deterministic failover order. Ties (only
// possible with duplicate names) break toward the lower index.
inline std::vector<std::size_t> RankNodes(
    std::string_view key, const std::vector<std::string>& nodes) {
  std::vector<std::size_t> order(nodes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::uint64_t> weights(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    weights[i] = RendezvousWeight(key, nodes[i]);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  return order;
}

}  // namespace gridauthz::fleet
