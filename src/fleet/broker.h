// FleetBroker: one WireTransport fronting N gatekeeper nodes (DESIGN.md
// §13). The broker is itself a transport, so everything that stacks on
// that seam — ServerTransport worker pools, ObsService, the fault
// layer's FaultyTransport, the chaos harness — composes with it on
// either side.
//
// Routing rules:
//   * job-request: placed by rendezvous hash of the submitting owner's
//     DN over the non-down nodes, Up nodes preferred over Degraded. A
//     transport failure (empty or undecodable reply — the dead-peer
//     signal) marks the node and fails over to the next candidate, up
//     to max_route_attempts. A decodable reply is authoritative: an
//     authorization denial is an answer, never a reason to fail over.
//   * management-request: routed to the owning node, identified by the
//     host embedded in the job contact (contacts are minted by the node
//     that owns the job). When the owner is dead the broker hedges to
//     rendezvous-ranked siblings — a restored or stand-in node that
//     re-registered the contact serves it; a sibling's JOB_CONTACT_NOT
//     _FOUND is only authoritative when it IS the owner (or the fleet
//     has no owner for that host), so a dead owner surfaces as a typed
//     [fleet] failure, never a misleading not-found.
//   * exhausted routes fail CLOSED: a synthesized reply with
//     AUTHORIZATION_SYSTEM_FAILURE and a [fleet]-tagged reason. No
//     request is ever silently lost.
//   * obs-request: the broker answers the FEDERATED endpoints itself
//     (DESIGN.md §15) — /healthz (fleet view: per-node health, policy
//     convergence, outlier scores), /metrics/fleet (every node's
//     /metrics.json merged: counters summed, histograms merged
//     bucket-wise, schema mismatches refused with a [federation]
//     error), /trace/<id> (spans gathered from every node plus the
//     broker's own store, stitched into one node-tagged tree),
//     /contention (per-node passthrough array), /profile (merged
//     collapsed stacks, or one node's with a `node` attribute); other
//     obs paths forward to a live node.
//
// Tracing: the broker adopts the client's trace-id, opens a route span,
// and one attempt span per node tried — tagged with the TARGET node and
// noted with the [fleet] reason when the node answered dead air. The
// forwarded frame carries `parent-span-id` (and `trace-id` when the
// client omitted one), so node-side spans parent the attempt span and
// /trace/<id> renders one stitched tree: failed attempt and sibling
// success side by side.
//
// Policy rollout: PushPolicy() replaces the document on every non-down
// node; each node's StaticPolicySource bumps its generation, and since
// every node sees the same push sequence the fleet converges on
// 1 + pushes. A node that was down during a push lags behind — the
// broker /healthz reports policy_converged=false until ReattachNode()
// re-pushes the latest document.
//
// Metrics: fleet_requests_total{type}, fleet_routed_total{node},
// fleet_failover_total{node} (departures), fleet_exhausted_total,
// fleet_node_health{node} (via HealthTracker).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "fleet/health.h"
#include "gram/wire_service.h"
#include "mds/mds.h"
#include "obs/domain.h"
#include "obs/federate.h"

namespace gridauthz::fleet {

// One gatekeeper node as the broker sees it. `transport` is the node's
// whole serving stack (ObsService -> [ServerTransport] -> WireEndpoint,
// possibly wrapped by fault/chaos decorators) and must outlive the
// broker. `install_policy` applies a pushed policy document (unset =
// node opts out of rollout).
struct FleetNodeHandle {
  std::string name;
  std::string host;
  gram::wire::WireTransport* transport = nullptr;
  std::function<void(const core::PolicyDocument&)> install_policy;
};

struct FleetBrokerOptions {
  // Distinct nodes tried per request: the owner plus hedged siblings.
  int max_route_attempts = 2;
  // Consecutive transport failures before passive detection marks a
  // node down (HealthTracker).
  int failure_threshold = 3;
};

class FleetBroker final : public gram::wire::WireTransport {
 public:
  // `directory` is the MDS index aggregating the nodes' mds-gatekeeper
  // providers; RefreshHealth() searches it. May be nullptr (passive
  // detection only). Both it and the node transports must outlive the
  // broker.
  FleetBroker(std::vector<FleetNodeHandle> nodes,
              mds::DirectoryService* directory,
              FleetBrokerOptions options = {});

  std::string Handle(const gsi::Credential& peer,
                     std::string_view frame) override;

  // Active health scan: searches the directory for mds-gatekeeper
  // entries and installs their scores.
  void RefreshHealth();

  NodeHealth HealthOf(const std::string& node) const;

  // Chaos/operator lifecycle. MarkNodeDown forces the node out of every
  // candidate list; ReattachNode clears the mark, re-pushes the latest
  // policy document so the rejoining node converges, and refreshes.
  void MarkNodeDown(const std::string& node);
  void ReattachNode(const std::string& node);

  // Generation-numbered fleet-wide rollout (see file comment).
  void PushPolicy(const core::PolicyDocument& document);
  std::uint64_t expected_policy_generation() const;
  // True when every non-down node's last health report carries the
  // expected generation (call RefreshHealth() first for a live answer).
  bool PolicyConverged() const;

  // Current fleet-relative node scores (HealthTracker::Scores).
  std::vector<NodeScore> NodeScores() const { return tracker_.Scores(); }

  std::size_t size() const { return nodes_.size(); }
  const FleetNodeHandle& node(std::size_t i) const { return nodes_[i]; }

 private:
  std::string RouteJobRequest(const gsi::Credential& peer,
                              std::string_view frame);
  std::string RouteManagement(const gsi::Credential& peer,
                              const gram::wire::MessageView& message,
                              std::string_view frame);
  std::string HandleObs(const gsi::Credential& peer,
                        const gram::wire::MessageView& message,
                        std::string_view frame);
  std::string FleetHealthz();
  // Federated observability endpoints (see file comment).
  std::string FederatedMetrics(const gsi::Credential& peer);
  std::string FederatedTrace(const gsi::Credential& peer,
                             const std::string& trace_id);
  std::string FederatedContention(const gsi::Credential& peer);
  std::string FederatedProfile(const gsi::Credential& peer,
                               const gram::wire::MessageView& message);

  // Candidate indices for `key`: rendezvous-ranked Up non-outlier
  // nodes, then Up outliers (the routing penalty — a node whose latency
  // or SLO-burn baseline deviates from the fleet is tried last among
  // the healthy), then Degraded nodes; Down nodes excluded.
  std::vector<std::size_t> Candidates(std::string_view key) const;
  std::optional<std::size_t> NodeByHost(std::string_view host) const;

  // One routed attempt under its own attempt span (tagged with the
  // target node; parent-span-id and trace-id appended to the forwarded
  // frame). A decodable reply records success + routed latency and is
  // returned; "" means transport failure (already recorded, span noted
  // with the [fleet] dead-air reason).
  std::string Attempt(std::size_t index, const gsi::Credential& peer,
                      std::string_view frame);

  const std::vector<FleetNodeHandle> nodes_;
  std::vector<std::string> names_;  // parallel to nodes_, for RankNodes
  mds::DirectoryService* directory_;
  const FleetBrokerOptions options_;
  HealthTracker tracker_;
  // The broker's observability identity: spans it records (route +
  // attempt) carry node "fleet-broker" and a namespaced span-id seed;
  // metrics/spans/slo stay null so they land in the process singletons.
  obs::ObsDomain domain_;

  mutable std::mutex policy_mu_;
  std::uint64_t pushes_ = 0;                          // guarded by policy_mu_
  std::optional<core::PolicyDocument> last_policy_;   // guarded by policy_mu_

  // Conditional-scrape cache (ROADMAP 1e): each node's last-parsed
  // /metrics.json keyed on the generation the node advertised (its
  // registry ActivityFingerprint). The next scrape offers the cached
  // generation as `if-generation`; an idle node answers 304 and the
  // broker folds the cached ParsedNodeDoc back in — no render on the
  // node, no re-parse here. Cross-node schema checks still run in
  // AddParsed, so a cached document can never bypass them.
  struct CachedNodeDoc {
    std::string generation;
    std::shared_ptr<const obs::MetricsFederator::ParsedNodeDoc> doc;
  };
  mutable std::mutex scrape_mu_;
  std::unordered_map<std::string, CachedNodeDoc>
      scrape_cache_;  // guarded by scrape_mu_
};

}  // namespace gridauthz::fleet
