#include "obs/domain.h"

namespace gridauthz::obs {

namespace {

thread_local const ObsDomain* g_domain = nullptr;

}  // namespace

const ObsDomain* CurrentObsDomain() { return g_domain; }

ObsDomainScope::ObsDomainScope(const ObsDomain* domain)
    : previous_(g_domain) {
  g_domain = domain;
}

ObsDomainScope::~ObsDomainScope() { g_domain = previous_; }

}  // namespace gridauthz::obs
