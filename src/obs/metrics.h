// Observability: process-wide metrics registry.
//
// The paper's accountability argument (section 4.3) needs more than an
// audit trail at production scale: operators must see decision rates,
// outcome mixes, and authorization latency per policy source without
// grepping logs. This registry provides thread-safe counters, gauges,
// and fixed-bucket latency histograms with label support
// (e.g. authz_decisions_total{source,outcome}), a Prometheus-style text
// exposition, and a JSON snapshot. All timing flows through the obs
// clock (SetObsClock) so tests and benches stay deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace gridauthz::obs {

// Ordered key/value labels; canonicalized (sorted by key) on lookup, so
// {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}} name the same series.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram: strictly increasing upper bounds plus an
// implicit +Inf overflow bucket. Observe() is lock-free; percentile
// accessors estimate by linear interpolation inside the owning bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void Observe(std::int64_t value);

  std::uint64_t count() const;
  std::int64_t sum() const;
  // p in [0, 100]. Values in the overflow bucket report the last finite
  // bound (the histogram cannot resolve beyond it). Empty histogram -> 0.
  double Percentile(double p) const;
  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::int64_t> sum_{0};
};

// Microsecond latency buckets: 1us .. 1s, roughly logarithmic.
const std::vector<std::int64_t>& DefaultLatencyBucketsUs();

// Thread-safe registry of named, labelled metrics. Get* creates the
// series on first use and returns a stable reference (valid until
// Reset()). Lookups take a mutex; increments on the returned objects are
// lock-free.
class MetricsRegistry {
 public:
  Counter& GetCounter(std::string_view name, const LabelSet& labels = {});
  Gauge& GetGauge(std::string_view name, const LabelSet& labels = {});
  Histogram& GetHistogram(std::string_view name, const LabelSet& labels = {},
                          const std::vector<std::int64_t>& bounds =
                              DefaultLatencyBucketsUs());

  // Read-side conveniences for tests: 0 / nullptr when the series does
  // not exist.
  std::uint64_t CounterValue(std::string_view name,
                             const LabelSet& labels = {}) const;
  std::int64_t GaugeValue(std::string_view name,
                          const LabelSet& labels = {}) const;
  const Histogram* FindHistogram(std::string_view name,
                                 const LabelSet& labels = {}) const;

  // Every series of one gauge family as (sorted labels, current value);
  // empty when the family does not exist or is not a gauge family. Lets
  // health endpoints enumerate per-backend gauges (e.g. breaker_state)
  // without knowing the backend names up front.
  std::vector<std::pair<LabelSet, std::int64_t>> GaugeSeries(
      std::string_view name) const;

  // Prometheus-style text exposition:
  //   # TYPE authz_decisions_total counter
  //   authz_decisions_total{outcome="permit",source="vo"} 3
  // Histograms render _bucket{le=...}, _sum, and _count series.
  std::string RenderText() const;

  // One JSON object: {"counters":[...],"gauges":[...],"histograms":[...]}
  // with p50/p95/p99 precomputed per histogram.
  std::string RenderJson() const;

  // Drops every series. References returned earlier become invalid;
  // intended for test isolation only.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    std::string name;
    LabelSet labels;  // sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    // Keyed by the rendered label string for deterministic exposition.
    std::map<std::string, Series> series;
  };

  Series& GetSeries(std::string_view name, const LabelSet& labels, Kind kind,
                    const std::vector<std::int64_t>* bounds);
  const Series* FindSeries(std::string_view name, const LabelSet& labels,
                           Kind kind) const;

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

// The process-wide registry every instrumentation point records into.
MetricsRegistry& Metrics();

// Clock used by scoped timers and spans. Defaults to a real
// steady-clock-backed microsecond source; tests and benches inject a
// SimClock for deterministic timing. Passing nullptr restores the default.
const Clock* ObsClock();
void SetObsClock(const Clock* clock);

}  // namespace gridauthz::obs
