// Observability: process-wide metrics registry.
//
// The paper's accountability argument (section 4.3) needs more than an
// audit trail at production scale: operators must see decision rates,
// outcome mixes, and authorization latency per policy source without
// grepping logs. This registry provides thread-safe counters, gauges,
// and fixed-bucket latency histograms with label support
// (e.g. authz_decisions_total{source,outcome}), a Prometheus-style text
// exposition, and a JSON snapshot. All timing flows through the obs
// clock (SetObsClock) so tests and benches stay deterministic.
//
// Hot-path cost model: Get* lookups take the registry mutex and build a
// label string — fine at startup, ruinous per decision. Request paths
// resolve each series once (obs/instrument.h handles) and then touch
// only the returned Counter/Histogram, whose mutators are per-thread
// striped relaxed atomics (obs/stripe.h) so 16 threads don't bounce one
// cache line per observation. The registry's own mutex is a profiled
// contention site ("metrics/registry", obs/contention.h): if scrapes or
// stray per-call lookups ever contend, /contention says so.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "obs/contention.h"
#include "obs/stripe.h"

namespace gridauthz::obs {

// Ordered key/value labels; canonicalized (sorted by key) on lookup, so
// {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}} name the same series.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Increment(std::uint64_t delta = 1) { value_.Add(delta); }
  std::uint64_t value() const { return value_.Sum(); }

 private:
  StripedValue<std::uint64_t> value_;
};

class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket histogram: strictly increasing upper bounds plus an
// implicit +Inf overflow bucket. Observe() is lock-free over per-thread
// stripes; percentile accessors estimate by linear interpolation inside
// the owning bucket. Each bucket can carry an exemplar — the most
// recent trace id observed into it — rendered OpenMetrics-style so a
// tail bucket links straight to /trace/<id>.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void Observe(std::int64_t value);
  // Observe and stamp the owning bucket's exemplar with this trace id
  // (skipped, never blocked on, if another writer holds the slot).
  void ObserveWithExemplar(std::int64_t value, std::string_view trace_id);

  // Folds another histogram's snapshot into this one: per-bucket counts
  // add element-wise (`counts` indexed like SnapshotCounts, last entry =
  // +Inf overflow) and `sum` joins the running sum. The schemas must
  // agree exactly — the bucket counts of two differently-bounded
  // histograms do not compose. This is how the fleet federator
  // (obs/federate.h) rebuilds a merged histogram that renders
  // byte-identically to one registry fed the union of observations.
  Expected<void> Merge(const std::vector<std::int64_t>& bounds,
                       const std::vector<std::uint64_t>& counts,
                       std::int64_t sum);

  std::uint64_t count() const;
  std::int64_t sum() const;
  // Per-bucket counts summed across stripes in one pass; index
  // bounds().size() is the +Inf overflow bucket. Renderers derive
  // _bucket and _count from ONE snapshot so the exposition stays
  // internally consistent under concurrent Observe().
  std::vector<std::uint64_t> SnapshotCounts() const;
  // Observations beyond the last finite bound.
  std::uint64_t overflow_count() const;

  // p in [0, 100]. Values in the overflow bucket report the last finite
  // bound (the histogram cannot resolve beyond it). Empty histogram -> 0.
  double Percentile(double p) const;
  // Same estimate plus whether the rank landed in the +Inf bucket — in
  // which case `value` is a floor, not an estimate, and dashboards
  // should flag the tail as saturated rather than under-report it.
  struct PercentileEstimate {
    double value = 0.0;
    bool overflow = false;
  };
  PercentileEstimate PercentileWithOverflow(double p) const;
  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  std::uint64_t bucket_count(std::size_t i) const;

  struct Exemplar {
    std::int64_t value = 0;
    std::string trace_id;
  };
  // The most recent exemplar observed into bucket i (index
  // bounds().size() = overflow), if any.
  std::optional<Exemplar> bucket_exemplar(std::size_t i) const;

 private:
  // One exemplar slot per bucket, guarded by a tiny spinlock. Writers
  // try once and skip on contention (losing an exemplar is fine;
  // stalling an Observe is not). Readers spin briefly.
  struct ExemplarSlot {
    mutable std::atomic_flag busy;  // default-initialized clear (C++20)
    bool set = false;
    std::int64_t value = 0;
    std::string trace_id;
  };

  std::size_t BucketIndex(std::int64_t value) const;

  std::vector<std::int64_t> bounds_;
  // Stripe-major: stripe s owns counts_[s * stride_ .. s * stride_ +
  // bounds_.size()]; stride_ rounds the bucket row up to whole cache
  // lines so stripes never share one.
  std::size_t stride_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  StripedValue<std::int64_t> sum_;
  std::unique_ptr<ExemplarSlot[]> exemplars_;  // bounds_.size() + 1
};

// Microsecond latency buckets: 1us .. 1s, roughly logarithmic.
const std::vector<std::int64_t>& DefaultLatencyBucketsUs();

// Thread-safe registry of named, labelled metrics. Get* creates the
// series on first use and returns a stable reference (valid until
// Reset()). Lookups take a mutex; increments on the returned objects
// are lock-free.
class MetricsRegistry {
 public:
  Counter& GetCounter(std::string_view name, const LabelSet& labels = {});
  Gauge& GetGauge(std::string_view name, const LabelSet& labels = {});
  Histogram& GetHistogram(std::string_view name, const LabelSet& labels = {},
                          const std::vector<std::int64_t>& bounds =
                              DefaultLatencyBucketsUs());

  // Read-side conveniences for tests: 0 / nullptr when the series does
  // not exist.
  std::uint64_t CounterValue(std::string_view name,
                             const LabelSet& labels = {}) const;
  std::int64_t GaugeValue(std::string_view name,
                          const LabelSet& labels = {}) const;
  const Histogram* FindHistogram(std::string_view name,
                                 const LabelSet& labels = {}) const;

  // Every series of one gauge family as (sorted labels, current value);
  // empty when the family does not exist or is not a gauge family. Lets
  // health endpoints enumerate per-backend gauges (e.g. breaker_state)
  // without knowing the backend names up front.
  std::vector<std::pair<LabelSet, std::int64_t>> GaugeSeries(
      std::string_view name) const;

  // Same for a counter family — the fleet broker's /healthz enumerates
  // per-node routed/failover counters without knowing the node names.
  std::vector<std::pair<LabelSet, std::uint64_t>> CounterSeries(
      std::string_view name) const;

  // Prometheus-style text exposition:
  //   # TYPE authz_decisions_total counter
  //   authz_decisions_total{outcome="permit",source="vo"} 3
  // Histograms render _bucket{le=...}, _sum, and _count series from one
  // bucket snapshot (so _count always equals the +Inf cumulative), with
  // OpenMetrics-style exemplars on buckets that have one:
  //   authz_latency_us_bucket{le="50",source="vo"} 3 # {trace_id="t-1f"} 40
  std::string RenderText() const;

  // One JSON object: {"counters":[...],"gauges":[...],"histograms":[...]}
  // with count/sum/overflow_count and p50/p95/p99 precomputed per
  // histogram; percentile ranks that landed in the +Inf bucket are
  // listed in a "saturated" array.
  std::string RenderJson() const;

  // Content fingerprint of the registry: a 64-bit fold over every
  // series' name, labels, and current value(s), in the deterministic
  // order the renderers use. Any change the rendered document would
  // show — a new series, a counter bump, a gauge move, a histogram
  // observation — changes the fingerprint, so "fingerprint unchanged"
  // is a sound cache key for the rendered /metrics.json (modulo 64-bit
  // collision). Far cheaper than a render: no percentiles, no string
  // building, no allocation — this is what makes a conditional scrape
  // (ROADMAP 1e) worth answering. Never returns 0.
  std::uint64_t ActivityFingerprint() const;

  // Drops every series. References returned earlier become invalid and
  // the reset epoch advances, which tells obs/instrument.h handles to
  // re-resolve. Intended for test isolation only, between traffic
  // phases — not concurrently with writers.
  void Reset();

  // Bumped by Reset(); never 0. Handles compare it to decide whether a
  // cached Counter*/Histogram* still points into the live registry.
  std::uint64_t reset_epoch() const {
    return reset_epoch_.load(std::memory_order_acquire);
  }

  // Process-unique registry identity, never reused. Handles key their
  // caches on this rather than the registry's ADDRESS: with per-node
  // registries (obs/domain.h) coming and going, a fresh registry can be
  // allocated where a destroyed one lived, and an address+epoch check
  // would bless a stale series pointer into freed memory.
  std::uint64_t uid() const { return uid_; }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    std::string name;
    LabelSet labels;  // sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    // Keyed by the rendered label string for deterministic exposition.
    std::map<std::string, Series> series;
  };

  Series& GetSeries(std::string_view name, const LabelSet& labels, Kind kind,
                    const std::vector<std::int64_t>* bounds);
  const Series* FindSeries(std::string_view name, const LabelSet& labels,
                           Kind kind) const;

  mutable ProfiledMutex mu_{"metrics/registry"};
  std::map<std::string, Family> families_;
  std::atomic<std::uint64_t> reset_epoch_{1};
  static inline std::atomic<std::uint64_t> next_uid_{0};
  const std::uint64_t uid_ =
      next_uid_.fetch_add(1, std::memory_order_relaxed) + 1;
};

// The process-wide registry every instrumentation point records into.
MetricsRegistry& Metrics();

// Clock used by scoped timers and spans. Defaults to a real
// steady-clock-backed microsecond source; tests and benches inject a
// SimClock for deterministic timing. Passing nullptr restores the default.
const Clock* ObsClock();
void SetObsClock(const Clock* clock);

}  // namespace gridauthz::obs
