#include "obs/federate.h"

#include <algorithm>
#include <charconv>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/json.h"

namespace gridauthz::obs {

namespace {

constexpr int kKindCounter = 0;
constexpr int kKindGauge = 1;
constexpr int kKindHistogram = 2;

std::string_view KindName(int kind) {
  switch (kind) {
    case kKindCounter:
      return "counter";
    case kKindGauge:
      return "gauge";
    default:
      return "histogram";
  }
}

Error FederationError(ErrCode code, const std::string& node,
                      std::string detail) {
  return Error{code, std::string{kReasonFederation} + " node '" + node +
                         "': " + std::move(detail)};
}

// One node's parsed + validated /metrics.json, staged before any of it
// touches the fleet registries — validation failure must leave the
// federator exactly as it was.
struct StagedCounter {
  std::string name;
  LabelSet labels;
  std::uint64_t value = 0;
};

struct StagedGauge {
  std::string name;
  LabelSet labels;
  std::int64_t value = 0;
};

struct StagedHistogram {
  std::string name;
  LabelSet labels;
  std::int64_t sum = 0;
  std::vector<std::int64_t> bounds;
  std::vector<std::uint64_t> buckets;  // last entry = +Inf overflow
};

Expected<LabelSet> ParseLabels(const json::Value& entry,
                               const std::string& node) {
  const json::Value* labels = entry.Find("labels");
  if (labels == nullptr || !labels->is_object()) {
    return FederationError(ErrCode::kParseError, node,
                           "series entry has no labels object");
  }
  LabelSet out;
  for (const auto& [key, value] : labels->members()) {
    if (value.kind() != json::Value::Kind::kString) {
      return FederationError(ErrCode::kParseError, node,
                             "label '" + key + "' is not a string");
    }
    out.emplace_back(key, value.AsString());
  }
  return out;
}

// `node` appended as a label unless the series already carries one.
LabelSet WithNodeLabel(LabelSet labels, const std::string& node) {
  for (const auto& label : labels) {
    if (label.first == "node") return labels;
  }
  labels.emplace_back("node", node);
  return labels;
}

std::string SeriesDescription(const std::string& name,
                              const LabelSet& labels) {
  std::string out = name + "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=" + value;
  }
  out += "}";
  return out;
}

std::string RenderStringArray(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json::Escape(values[i]) + "\"";
  }
  out += "]";
  return out;
}

// Flat span entry in the exact key set ObsService::HandleTrace emits,
// optionally with a nested "children" array (the stitched tree).
std::string SpanEntry(const Span& span, const std::string* children) {
  json::ObjectWriter entry;
  entry.String("trace", span.trace_id);
  entry.UInt("span", span.span_id);
  entry.UInt("parent", span.parent_span_id);
  entry.String("name", span.name);
  entry.String("node", span.node);
  entry.String("note", span.note);
  entry.Int("start_us", span.start_us);
  entry.Int("end_us", span.end_us);
  entry.Int("duration_us", span.duration_us());
  if (children != nullptr) entry.Raw("children", *children);
  return entry.Take();
}

// Children lists hold indices in stitch order; each span has one parent,
// so subtrees reachable from roots are acyclic and recursion terminates.
std::string RenderSubtree(const std::vector<Span>& spans,
                          const std::vector<std::vector<std::size_t>>& children,
                          std::size_t index) {
  std::string kids = "[";
  bool first = true;
  for (std::size_t child : children[index]) {
    if (!first) kids += ",";
    first = false;
    kids += RenderSubtree(spans, children, child);
  }
  kids += "]";
  return SpanEntry(spans[index], &kids);
}

}  // namespace

struct MetricsFederator::ParsedNodeDoc {
  std::vector<StagedCounter> counters;
  std::vector<StagedGauge> gauges;
  std::vector<StagedHistogram> histograms;
  // name -> kind within this document, for cross-node agreement checks
  // at AddParsed time.
  std::map<std::string, int> kinds;
};

MetricsFederator::MetricsFederator()
    : fleet_(std::make_unique<MetricsRegistry>()) {}

MetricsFederator::~MetricsFederator() = default;

Expected<std::shared_ptr<const MetricsFederator::ParsedNodeDoc>>
MetricsFederator::ParseNodeDoc(const std::string& node,
                               std::string_view metrics_json) {
  auto parsed = json::ParseValue(metrics_json);
  if (!parsed.ok()) {
    return FederationError(ErrCode::kParseError, node,
                           "unparseable /metrics.json: " +
                               parsed.error().to_string());
  }
  const json::Value& doc = *parsed;
  if (!doc.is_object()) {
    return FederationError(ErrCode::kParseError, node,
                           "/metrics.json is not an object");
  }

  // --- Stage: parse every section without touching fleet state. Only
  // document-internal validation runs here; cross-node schema checks
  // depend on the scrape and live in AddParsed. ---
  auto staged = std::make_shared<ParsedNodeDoc>();
  // Series keys guard against duplicate entries within the document.
  std::unordered_set<std::string> doc_series;

  auto claim = [&](const std::string& name, const LabelSet& labels,
                   int kind) -> Expected<void> {
    auto [it, inserted] = staged->kinds.try_emplace(name, kind);
    if (!inserted && it->second != kind) {
      return FederationError(
          ErrCode::kParseError, node,
          "metric '" + name + "' appears as both " +
              std::string{KindName(it->second)} + " and " +
              std::string{KindName(kind)});
    }
    std::string key = std::to_string(kind) + SeriesDescription(name, labels);
    if (!doc_series.insert(std::move(key)).second) {
      return FederationError(ErrCode::kParseError, node,
                             "duplicate series " +
                                 SeriesDescription(name, labels));
    }
    return Ok();
  };

  auto section = [&](std::string_view key) -> Expected<const json::Value*> {
    const json::Value* value = doc.Find(key);
    if (value == nullptr || !value->is_array()) {
      return FederationError(ErrCode::kParseError, node,
                             "missing '" + std::string{key} + "' array");
    }
    return value;
  };

  GA_TRY(const json::Value* counters, section("counters"));
  for (const json::Value& entry : counters->items()) {
    StagedCounter out;
    auto name = entry.FindString("name");
    auto value = entry.FindInt("value");
    if (!name || !value || *value < 0) {
      return FederationError(ErrCode::kParseError, node,
                             "malformed counter entry");
    }
    out.name = *name;
    out.value = static_cast<std::uint64_t>(*value);
    GA_TRY(out.labels, ParseLabels(entry, node));
    GA_TRY_VOID(claim(out.name, out.labels, kKindCounter));
    staged->counters.push_back(std::move(out));
  }

  GA_TRY(const json::Value* gauges, section("gauges"));
  for (const json::Value& entry : gauges->items()) {
    StagedGauge out;
    auto name = entry.FindString("name");
    auto value = entry.FindInt("value");
    if (!name || !value) {
      return FederationError(ErrCode::kParseError, node,
                             "malformed gauge entry");
    }
    out.name = *name;
    out.value = *value;
    GA_TRY(out.labels, ParseLabels(entry, node));
    GA_TRY_VOID(claim(out.name, out.labels, kKindGauge));
    staged->gauges.push_back(std::move(out));
  }

  GA_TRY(const json::Value* histograms, section("histograms"));
  for (const json::Value& entry : histograms->items()) {
    StagedHistogram out;
    auto name = entry.FindString("name");
    auto count = entry.FindInt("count");
    auto sum = entry.FindInt("sum");
    const json::Value* bounds = entry.Find("bounds");
    const json::Value* buckets = entry.Find("buckets");
    if (!name || !count || !sum || bounds == nullptr ||
        !bounds->is_array() || buckets == nullptr || !buckets->is_array()) {
      return FederationError(ErrCode::kParseError, node,
                             "malformed histogram entry");
    }
    out.name = *name;
    out.sum = *sum;
    GA_TRY(out.labels, ParseLabels(entry, node));
    for (const json::Value& bound : bounds->items()) {
      if (bound.kind() != json::Value::Kind::kNumber) {
        return FederationError(ErrCode::kParseError, node,
                               "non-numeric histogram bound");
      }
      out.bounds.push_back(bound.AsInt());
    }
    if (!std::is_sorted(out.bounds.begin(), out.bounds.end()) ||
        std::adjacent_find(out.bounds.begin(), out.bounds.end()) !=
            out.bounds.end()) {
      return FederationError(
          ErrCode::kParseError, node,
          "histogram '" + out.name + "' bounds are not strictly increasing");
    }
    std::uint64_t bucket_total = 0;
    for (const json::Value& bucket : buckets->items()) {
      if (bucket.kind() != json::Value::Kind::kNumber ||
          bucket.AsInt() < 0) {
        return FederationError(ErrCode::kParseError, node,
                               "non-numeric histogram bucket count");
      }
      out.buckets.push_back(static_cast<std::uint64_t>(bucket.AsInt()));
      bucket_total += out.buckets.back();
    }
    if (out.buckets.size() != out.bounds.size() + 1) {
      return FederationError(
          ErrCode::kParseError, node,
          "histogram '" + out.name + "' has " +
              std::to_string(out.buckets.size()) + " buckets for " +
              std::to_string(out.bounds.size()) + " bounds");
    }
    if (bucket_total != static_cast<std::uint64_t>(*count)) {
      return FederationError(
          ErrCode::kParseError, node,
          "histogram '" + out.name + "' bucket counts sum to " +
              std::to_string(bucket_total) + " but count says " +
              std::to_string(*count));
    }
    GA_TRY_VOID(claim(out.name, out.labels, kKindHistogram));
    staged->histograms.push_back(std::move(out));
  }

  return std::shared_ptr<const ParsedNodeDoc>{std::move(staged)};
}

Expected<void> MetricsFederator::AddParsed(const std::string& node,
                                           const ParsedNodeDoc& doc) {
  for (const auto& [existing, registry] : per_node_) {
    if (existing == node) {
      return FederationError(ErrCode::kAlreadyExists, node,
                             "already scraped; a second snapshot would "
                             "double-count the fleet view");
    }
  }

  // --- Cross-node schema agreement: these checks depend on which nodes
  // joined this scrape before us, so a cached ParsedNodeDoc must pass
  // them again every time it is folded in. All-or-nothing: nothing
  // below the checks can fail. ---
  for (const auto& [name, kind] : doc.kinds) {
    for (const auto& [known, known_kind] : kinds_) {
      if (known == name && known_kind != kind) {
        return FederationError(
            ErrCode::kFailedPrecondition, node,
            "metric '" + name + "' is a " + std::string{KindName(kind)} +
                " here but the fleet already holds it as a " +
                std::string{KindName(known_kind)});
      }
    }
  }
  // A merged histogram only means something when every node bucketed
  // the same way. Bounds are compared per series against the fleet
  // registry built up by earlier nodes.
  for (const StagedHistogram& histogram : doc.histograms) {
    if (const Histogram* existing =
            fleet_->FindHistogram(histogram.name, histogram.labels);
        existing != nullptr && existing->bounds() != histogram.bounds) {
      return FederationError(
          ErrCode::kFailedPrecondition, node,
          "histogram " + SeriesDescription(histogram.name, histogram.labels) +
              " disagrees on bucket boundaries with the fleet schema; "
              "refusing a lossy merge");
    }
  }

  // --- Apply: the document is internally consistent and agrees with
  // the fleet schema; fold it in. ---
  MetricsRegistry& node_registry =
      *per_node_.emplace_back(node, std::make_unique<MetricsRegistry>())
           .second;
  for (const auto& [name, kind] : doc.kinds) {
    bool known = false;
    for (const auto& existing : kinds_) {
      if (existing.first == name) known = true;
    }
    if (!known) kinds_.emplace_back(name, kind);
  }
  for (const StagedCounter& counter : doc.counters) {
    fleet_->GetCounter(counter.name, counter.labels)
        .Increment(counter.value);
    node_registry.GetCounter(counter.name,
                             WithNodeLabel(counter.labels, node))
        .Increment(counter.value);
  }
  for (const StagedGauge& gauge : doc.gauges) {
    fleet_->GetGauge(gauge.name, gauge.labels).Add(gauge.value);
    node_registry.GetGauge(gauge.name, WithNodeLabel(gauge.labels, node))
        .Set(gauge.value);
  }
  for (const StagedHistogram& histogram : doc.histograms) {
    auto merged =
        fleet_->GetHistogram(histogram.name, histogram.labels,
                             histogram.bounds)
            .Merge(histogram.bounds, histogram.buckets, histogram.sum);
    auto labelled =
        node_registry
            .GetHistogram(histogram.name,
                          WithNodeLabel(histogram.labels, node),
                          histogram.bounds)
            .Merge(histogram.bounds, histogram.buckets, histogram.sum);
    // Pre-validated above; Merge cannot refuse here.
    (void)merged.ok();
    (void)labelled.ok();
  }
  return Ok();
}

Expected<void> MetricsFederator::AddNode(const std::string& node,
                                         std::string_view metrics_json) {
  GA_TRY(auto doc, ParseNodeDoc(node, metrics_json));
  return AddParsed(node, *doc);
}

void MetricsFederator::MarkUnreachable(const std::string& node) {
  unreachable_.push_back(node);
}

std::string MetricsFederator::RenderJson() const {
  std::vector<std::string> nodes;
  nodes.reserve(per_node_.size());
  for (const auto& [node, registry] : per_node_) nodes.push_back(node);
  std::string out = "{\"nodes\":" + RenderStringArray(nodes);
  out += ",\"unreachable\":" + RenderStringArray(unreachable_);
  out += ",\"fleet\":" + fleet_->RenderJson();
  out += ",\"per_node\":[";
  bool first = true;
  for (const auto& [node, registry] : per_node_) {
    if (!first) out += ",";
    first = false;
    out += "{\"node\":\"" + json::Escape(node) +
           "\",\"metrics\":" + registry->RenderJson() + "}";
  }
  out += "]}";
  return out;
}

Expected<std::vector<Span>> ParseTraceJson(std::string_view trace_json,
                                           const std::string& node) {
  auto parsed = json::ParseValue(trace_json);
  if (!parsed.ok()) {
    return FederationError(ErrCode::kParseError, node,
                           "unparseable trace document: " +
                               parsed.error().to_string());
  }
  if (!parsed->is_array()) {
    return FederationError(ErrCode::kParseError, node,
                           "trace document is not an array");
  }
  std::vector<Span> out;
  out.reserve(parsed->items().size());
  for (const json::Value& entry : parsed->items()) {
    auto trace = entry.FindString("trace");
    auto span_id = entry.FindInt("span");
    auto parent = entry.FindInt("parent");
    auto name = entry.FindString("name");
    auto start_us = entry.FindInt("start_us");
    auto end_us = entry.FindInt("end_us");
    if (!trace || !span_id || !parent || !name || !start_us || !end_us) {
      return FederationError(ErrCode::kParseError, node,
                             "malformed span entry in trace document");
    }
    Span span;
    span.trace_id = *trace;
    span.span_id = static_cast<std::uint64_t>(*span_id);
    span.parent_span_id = static_cast<std::uint64_t>(*parent);
    span.name = *name;
    span.node = entry.FindString("node").value_or("");
    span.note = entry.FindString("note").value_or("");
    span.start_us = *start_us;
    span.end_us = *end_us;
    if (span.node.empty()) span.node = node;
    out.push_back(std::move(span));
  }
  return out;
}

void StitchSpans(std::vector<Span>& spans) {
  // Dedup first (keep the earliest-received copy), then order by start
  // time with span id as the stable tiebreak — concurrent writers can
  // share a start microsecond and the stitched order must still be
  // deterministic.
  std::unordered_set<std::uint64_t> seen;
  std::vector<Span> unique;
  unique.reserve(spans.size());
  for (Span& span : spans) {
    if (seen.insert(span.span_id).second) unique.push_back(std::move(span));
  }
  spans = std::move(unique);
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.span_id < b.span_id;
  });
}

std::string RenderStitchedTrace(const std::string& trace_id,
                                std::vector<Span> spans) {
  StitchSpans(spans);

  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    index.emplace(spans[i].span_id, i);
  }
  std::vector<std::vector<std::size_t>> children(spans.size());
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const std::uint64_t parent = spans[i].parent_span_id;
    auto it = parent == 0 ? index.end() : index.find(parent);
    // A parent the bounded stores already dropped (or one the scrape
    // missed) renders its subtree as a root: an orphaned subtree beats
    // a refused render.
    if (it == index.end() || it->second == i) {
      roots.push_back(i);
    } else {
      children[it->second].push_back(i);
    }
  }

  std::string flat = "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) flat += ",";
    flat += SpanEntry(spans[i], nullptr);
  }
  flat += "]";

  std::string tree = "[";
  bool first = true;
  for (std::size_t root : roots) {
    if (!first) tree += ",";
    first = false;
    tree += RenderSubtree(spans, children, root);
  }
  tree += "]";

  json::ObjectWriter out;
  out.String("trace", trace_id);
  out.UInt("span_count", spans.size());
  out.Raw("spans", flat);
  out.Raw("tree", tree);
  return out.Take();
}

std::string MergeCollapsedStacks(
    const std::vector<std::string>& collapsed_docs) {
  std::map<std::string, std::uint64_t> merged;
  for (const std::string& doc : collapsed_docs) {
    std::size_t begin = 0;
    while (begin < doc.size()) {
      std::size_t end = doc.find('\n', begin);
      if (end == std::string::npos) end = doc.size();
      const std::string_view line{doc.data() + begin, end - begin};
      begin = end + 1;
      const std::size_t space = line.rfind(' ');
      if (space == std::string_view::npos || space == 0) continue;
      std::uint64_t weight = 0;
      const char* first = line.data() + space + 1;
      const char* last = line.data() + line.size();
      auto [ptr, ec] = std::from_chars(first, last, weight);
      if (ec != std::errc{} || ptr != last) continue;
      merged[std::string{line.substr(0, space)}] += weight;
    }
  }
  std::string out;
  for (const auto& [path, weight] : merged) {
    out += path + " " + std::to_string(weight) + "\n";
  }
  return out;
}

}  // namespace gridauthz::obs
