#include "obs/profile.h"

#include <vector>

namespace gridauthz::obs {

namespace {

struct Frame {
  std::string name;
  std::int64_t child_us = 0;  // time attributed to nested stages
};

// Per-thread profiling state. `depth` tracks stage nesting even while
// not sampling, so the every-Nth decision only ever fires at a true
// root stage (a nested stage must never masquerade as a root just
// because its enclosing stage went unsampled).
struct TlsState {
  std::vector<Frame> stack;
  std::uint64_t depth = 0;
  std::uint64_t tick = 0;
  bool sampling = false;
};

TlsState& Tls() {
  thread_local TlsState state;
  return state;
}

}  // namespace

bool StageProfiler::Enter(std::string_view name) {
  TlsState& tls = Tls();
  if (tls.depth++ == 0) {
    const std::uint32_t every = sample_every_.load(std::memory_order_relaxed);
    tls.sampling = every != 0 && tls.tick++ % every == 0;
    if (tls.sampling) samples_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!tls.sampling) return false;
  tls.stack.push_back(Frame{std::string{name}, 0});
  return true;
}

void StageProfiler::Leave(bool recorded, std::int64_t elapsed_us) {
  TlsState& tls = Tls();
  if (tls.depth > 0) --tls.depth;
  if (tls.depth == 0) tls.sampling = false;
  if (!recorded || tls.stack.empty()) return;
  if (elapsed_us < 0) elapsed_us = 0;

  std::string path;
  for (const Frame& frame : tls.stack) {
    if (!path.empty()) path += ';';
    path += frame.name;
  }
  const std::int64_t self_us =
      std::max<std::int64_t>(0, elapsed_us - tls.stack.back().child_us);
  tls.stack.pop_back();
  if (!tls.stack.empty()) tls.stack.back().child_us += elapsed_us;

  std::lock_guard lock(mu_);
  weights_[path] += self_us;
}

std::string StageProfiler::RenderCollapsed() const {
  std::lock_guard lock(mu_);
  std::string out;
  for (const auto& [path, weight] : weights_) {
    out += path + " " + std::to_string(weight) + "\n";
  }
  return out;
}

void StageProfiler::Clear() {
  std::lock_guard lock(mu_);
  weights_.clear();
  samples_.store(0, std::memory_order_relaxed);
}

StageProfiler& Profiler() {
  static StageProfiler* profiler = new StageProfiler();
  return *profiler;
}

}  // namespace gridauthz::obs
