#include "obs/trace.h"

#include <atomic>
#include <cstdio>

#include "common/logging.h"
#include "obs/metrics.h"

namespace gridauthz::obs {

namespace {

thread_local TraceContext g_current;

std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::uint64_t> g_next_span{1};

// Log lines emitted inside a trace carry its id; the logger lives below
// obs in the layer order, so the hookup happens here, once, when tracing
// is first used.
void EnsureLogTraceHook() {
  static const bool installed = [] {
    log::SetTraceIdProvider([] { return CurrentTraceId(); });
    return true;
  }();
  (void)installed;
}

}  // namespace

std::string GenerateTraceId() {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "t-%016llx",
                static_cast<unsigned long long>(
                    g_next_trace.fetch_add(1, std::memory_order_relaxed)));
  return buffer;
}

TraceContext CurrentTrace() { return g_current; }

std::string CurrentTraceId() { return g_current.trace_id; }

TraceScope::TraceScope(std::string trace_id) : previous_(g_current) {
  EnsureLogTraceHook();
  trace_id_ = trace_id.empty() ? GenerateTraceId() : std::move(trace_id);
  g_current = TraceContext{trace_id_, 0};
}

TraceScope::~TraceScope() { g_current = previous_; }

SpanStore::SpanStore(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void SpanStore::Record(Span span) {
  std::lock_guard lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
    return;
  }
  ring_[head_] = std::move(span);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<Span> SpanStore::ForTrace(const std::string& trace_id) const {
  std::lock_guard lock(mu_);
  std::vector<Span> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Span& span = ring_[(head_ + i) % ring_.size()];
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

std::size_t SpanStore::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::size_t SpanStore::capacity() const { return capacity_; }

std::uint64_t SpanStore::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void SpanStore::Clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

SpanStore& Tracer() {
  static SpanStore* store = new SpanStore();
  return *store;
}

ScopedSpan::ScopedSpan(std::string name) : previous_(g_current) {
  EnsureLogTraceHook();
  if (previous_.active()) {
    span_.trace_id = previous_.trace_id;
    span_.parent_span_id = previous_.span_id;
  } else {
    span_.trace_id = GenerateTraceId();
    span_.parent_span_id = 0;
  }
  span_.span_id = g_next_span.fetch_add(1, std::memory_order_relaxed);
  span_.name = std::move(name);
  span_.start_us = ObsClock()->NowMicros();
  g_current = TraceContext{span_.trace_id, span_.span_id};
}

ScopedSpan::~ScopedSpan() {
  span_.end_us = ObsClock()->NowMicros();
  Tracer().Record(std::move(span_));
  g_current = previous_;
}

}  // namespace gridauthz::obs
