#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "common/logging.h"
#include "obs/domain.h"
#include "obs/metrics.h"

namespace gridauthz::obs {

namespace {

thread_local TraceContext g_current;

std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::uint64_t> g_next_span{1};

// Mints the next span id, namespaced by the current domain's seed. Two
// real gatekeeper processes each start their span counter at 1, so one
// trace that crosses both can hold two spans with the same id — the
// stitched tree would then attach children to the wrong parent. Folding
// a per-domain seed into the high bits keeps ids unique across the
// simulated fleet while the low bits stay a cheap relaxed counter. The
// global domain (seed 0) keeps the historical plain-counter ids. The
// seed is clipped to 15 bits so every minted id stays below 2^63:
// span ids cross process boundaries as JSON numbers and frame integers,
// both of which parse as int64.
std::uint64_t MintSpanId() {
  const std::uint64_t counter =
      g_next_span.fetch_add(1, std::memory_order_relaxed);
  const ObsDomain* domain = CurrentObsDomain();
  if (domain == nullptr || domain->span_seed == 0) return counter;
  return ((domain->span_seed & 0x7FFF) << 48) ^
         (counter & 0x0000FFFFFFFFFFFF);
}

// Log lines emitted inside a trace carry its id; the logger lives below
// obs in the layer order, so the hookup happens here, once, when tracing
// is first used.
void EnsureLogTraceHook() {
  static const bool installed = [] {
    log::SetTraceIdProvider([] { return CurrentTraceId(); });
    return true;
  }();
  (void)installed;
}

}  // namespace

std::string GenerateTraceId() {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "t-%016llx",
                static_cast<unsigned long long>(
                    g_next_trace.fetch_add(1, std::memory_order_relaxed)));
  return buffer;
}

TraceContext CurrentTrace() { return g_current; }

std::string CurrentTraceId() { return g_current.trace_id; }

TraceScope::TraceScope(std::string trace_id, std::uint64_t parent_span_id)
    : previous_(g_current) {
  EnsureLogTraceHook();
  trace_id_ = trace_id.empty() ? GenerateTraceId() : std::move(trace_id);
  g_current = TraceContext{trace_id_, parent_span_id};
}

TraceScope::~TraceScope() { g_current = previous_; }

SpanStore::SpanStore(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void SpanStore::EraseIndexLocked(const std::string& trace_id,
                                 std::size_t slot) {
  auto it = by_trace_.find(trace_id);
  if (it == by_trace_.end()) return;
  std::vector<std::size_t>& slots = it->second;
  slots.erase(std::remove(slots.begin(), slots.end(), slot), slots.end());
  if (slots.empty()) by_trace_.erase(it);
}

void SpanStore::Record(Span span) {
  std::lock_guard lock(mu_);
  std::size_t slot;
  if (ring_.size() < capacity_) {
    slot = ring_.size();
    ring_.push_back(std::move(span));
    seq_.push_back(next_seq_++);
  } else {
    slot = head_;
    EraseIndexLocked(ring_[slot].trace_id, slot);
    ring_[slot] = std::move(span);
    seq_[slot] = next_seq_++;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
  by_trace_[ring_[slot].trace_id].push_back(slot);
}

std::vector<Span> SpanStore::ForTrace(const std::string& trace_id) const {
  std::lock_guard lock(mu_);
  auto it = by_trace_.find(trace_id);
  if (it == by_trace_.end()) return {};
  // The index lists ring slots; sort by insertion sequence to restore
  // completion order after ring wrap-around.
  std::vector<std::size_t> slots = it->second;
  std::sort(slots.begin(), slots.end(), [this](std::size_t a, std::size_t b) {
    return seq_[a] < seq_[b];
  });
  std::vector<Span> out;
  out.reserve(slots.size());
  for (std::size_t slot : slots) out.push_back(ring_[slot]);
  return out;
}

std::size_t SpanStore::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::size_t SpanStore::capacity() const { return capacity_; }

std::uint64_t SpanStore::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void SpanStore::Clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  seq_.clear();
  by_trace_.clear();
  head_ = 0;
  next_seq_ = 0;
  dropped_ = 0;
}

SpanStore& Tracer() {
  static SpanStore* store = new SpanStore();
  const ObsDomain* domain = CurrentObsDomain();
  if (domain != nullptr && domain->spans != nullptr) return *domain->spans;
  return *store;
}

ScopedSpan::ScopedSpan(std::string name) : previous_(g_current) {
  EnsureLogTraceHook();
  if (previous_.active()) {
    span_.trace_id = previous_.trace_id;
    span_.parent_span_id = previous_.span_id;
  } else {
    span_.trace_id = GenerateTraceId();
    span_.parent_span_id = 0;
  }
  span_.span_id = MintSpanId();
  span_.name = std::move(name);
  if (const ObsDomain* domain = CurrentObsDomain(); domain != nullptr) {
    span_.node = domain->node;
  }
  span_.start_us = ObsClock()->NowMicros();
  g_current = TraceContext{span_.trace_id, span_.span_id};
}

ScopedSpan::~ScopedSpan() {
  span_.end_us = ObsClock()->NowMicros();
  Tracer().Record(std::move(span_));
  g_current = previous_;
}

}  // namespace gridauthz::obs
