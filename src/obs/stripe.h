// Per-thread striped atomics for hot-path instrumentation.
//
// A single shared std::atomic counter incremented from 16 request
// threads bounces one cache line between every core on every decision;
// at the rates ROADMAP.md targets that bounce *is* the instrumentation
// cost. A StripedValue spreads the increments over a small set of
// cache-line-padded stripes, one picked per thread, so the write path
// is a relaxed fetch_add on a line the thread usually owns. Reads sum
// the stripes: exact once writers are quiescent (joined), and at worst
// a momentarily stale-but-consistent total while they run — the same
// guarantee a relaxed single atomic gives a concurrent reader.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace gridauthz::obs {

// Number of stripes per value. More stripes cost read-time summation
// and memory (64 bytes each); 16 covers the thread counts the server
// runs (threads beyond 16 share stripes round-robin, which only brings
// back a fraction of the bouncing).
inline constexpr std::size_t kStripes = 16;

namespace detail {

// Stable stripe slot for the calling thread, assigned round-robin on
// first use. All StripedValues share the assignment, so one thread
// touches the same stripe index of every metric it updates.
inline std::size_t ThreadStripeSlot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return slot;
}

}  // namespace detail

// T is a 64-bit integral type (std::uint64_t / std::int64_t).
template <typename T>
class StripedValue {
 public:
  StripedValue() : stripes_(new Stripe[kStripes]) {}

  void Add(T delta) {
    stripes_[detail::ThreadStripeSlot()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  // Tracks a maximum instead of a sum (used for max-wait gauges).
  void Max(T candidate) {
    std::atomic<T>& slot = stripes_[detail::ThreadStripeSlot()].value;
    T seen = slot.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !slot.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  T Sum() const {
    T total = 0;
    for (std::size_t i = 0; i < kStripes; ++i) {
      total += stripes_[i].value.load(std::memory_order_relaxed);
    }
    return total;
  }

  T MaxValue() const {
    T best = 0;
    for (std::size_t i = 0; i < kStripes; ++i) {
      const T v = stripes_[i].value.load(std::memory_order_relaxed);
      if (v > best) best = v;
    }
    return best;
  }

  // Zeroes every stripe. Only meaningful while writers are quiescent;
  // intended for test isolation.
  void ResetForTest() {
    for (std::size_t i = 0; i < kStripes; ++i) {
      stripes_[i].value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<T> value{0};
  };
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace gridauthz::obs
