#include "obs/contention.h"

#include <algorithm>

#include "obs/metrics.h"

namespace gridauthz::obs {

const std::vector<std::int64_t>& ContentionWaitBucketsUs() {
  static const std::vector<std::int64_t> kBuckets = {
      1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000};
  return kBuckets;
}

ContentionSite::ContentionSite(std::string name)
    : name_(std::move(name)),
      wait_buckets_(ContentionWaitBucketsUs().size() + 1) {}

void ContentionSite::RecordWait(std::int64_t wait_us) {
  if (wait_us < 0) wait_us = 0;
  acquisitions_.Add(1);
  contended_.Add(1);
  total_wait_us_.Add(wait_us);
  max_wait_us_.Max(wait_us);
  const auto& bounds = ContentionWaitBucketsUs();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), wait_us);
  wait_buckets_[static_cast<std::size_t>(it - bounds.begin())].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t ContentionSite::wait_bucket(std::size_t i) const {
  return wait_buckets_[i].load(std::memory_order_relaxed);
}

void ContentionSite::ResetForTest() {
  acquisitions_.ResetForTest();
  contended_.ResetForTest();
  total_wait_us_.ResetForTest();
  max_wait_us_.ResetForTest();
  for (auto& bucket : wait_buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

ContentionSite& ContentionRegistry::Site(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_
             .emplace(std::string{name},
                      std::make_unique<ContentionSite>(std::string{name}))
             .first;
  }
  return *it->second;
}

std::vector<ContentionRegistry::SiteSnapshot> ContentionRegistry::Snapshot()
    const {
  std::vector<SiteSnapshot> out;
  {
    std::lock_guard lock(mu_);
    out.reserve(sites_.size());
    for (const auto& [name, site] : sites_) {
      out.push_back({name, site->acquisitions(), site->contended(),
                     site->total_wait_us(), site->max_wait_us()});
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.total_wait_us != b.total_wait_us) {
      return a.total_wait_us > b.total_wait_us;
    }
    return a.name < b.name;
  });
  return out;
}

std::string ContentionRegistry::RenderText() const {
  // Site names are operator-chosen literals (no escaping hazards), and
  // map order keeps the exposition stable across scrapes.
  std::lock_guard lock(mu_);
  if (sites_.empty()) return "";
  std::string out;
  out += "# TYPE lock_acquisitions_total counter\n";
  for (const auto& [name, site] : sites_) {
    out += "lock_acquisitions_total{site=\"" + name + "\"} " +
           std::to_string(site->acquisitions()) + "\n";
  }
  out += "# TYPE lock_contended_total counter\n";
  for (const auto& [name, site] : sites_) {
    out += "lock_contended_total{site=\"" + name + "\"} " +
           std::to_string(site->contended()) + "\n";
  }
  out += "# TYPE lock_wait_us histogram\n";
  const auto& bounds = ContentionWaitBucketsUs();
  for (const auto& [name, site] : sites_) {
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += site->wait_bucket(i);
      out += "lock_wait_us_bucket{le=\"" + std::to_string(bounds[i]) +
             "\",site=\"" + name + "\"} " + std::to_string(cumulative) + "\n";
    }
    cumulative += site->wait_bucket(bounds.size());
    out += "lock_wait_us_bucket{le=\"+Inf\",site=\"" + name + "\"} " +
           std::to_string(cumulative) + "\n";
    out += "lock_wait_us_sum{site=\"" + name + "\"} " +
           std::to_string(site->total_wait_us()) + "\n";
    out += "lock_wait_us_count{site=\"" + name + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  return out;
}

std::string ContentionRegistry::RenderJson() const {
  std::string out = "{\"sites\":[";
  bool first = true;
  for (const auto& site : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"site\":\"" + site.name + "\"";
    out += ",\"acquisitions\":" + std::to_string(site.acquisitions);
    out += ",\"contended\":" + std::to_string(site.contended);
    out += ",\"total_wait_us\":" + std::to_string(site.total_wait_us);
    out += ",\"max_wait_us\":" + std::to_string(site.max_wait_us) + "}";
  }
  out += "]}";
  return out;
}

void ContentionRegistry::ResetForTest() {
  std::lock_guard lock(mu_);
  for (auto& [name, site] : sites_) site->ResetForTest();
}

ContentionRegistry& Contention() {
  static ContentionRegistry* registry = new ContentionRegistry();
  return *registry;
}

// The uncontended path must stay near-free: one try_lock plus one
// striped increment, no clock read. Only a blocked acquisition pays for
// timing, and by then the thread is waiting anyway.
void ProfiledMutex::lock() {
  if (mu_.try_lock()) {
    site_->RecordUncontended();
    return;
  }
  const std::int64_t start_us = ObsClock()->NowMicros();
  mu_.lock();
  site_->RecordWait(ObsClock()->NowMicros() - start_us);
}

bool ProfiledMutex::try_lock() {
  if (!mu_.try_lock()) return false;
  site_->RecordUncontended();
  return true;
}

void ProfiledSharedMutex::lock() {
  if (mu_.try_lock()) {
    site_->RecordUncontended();
    return;
  }
  const std::int64_t start_us = ObsClock()->NowMicros();
  mu_.lock();
  site_->RecordWait(ObsClock()->NowMicros() - start_us);
}

bool ProfiledSharedMutex::try_lock() {
  if (!mu_.try_lock()) return false;
  site_->RecordUncontended();
  return true;
}

void ProfiledSharedMutex::lock_shared() {
  if (mu_.try_lock_shared()) {
    site_->RecordUncontended();
    return;
  }
  const std::int64_t start_us = ObsClock()->NowMicros();
  mu_.lock_shared();
  site_->RecordWait(ObsClock()->NowMicros() - start_us);
}

bool ProfiledSharedMutex::try_lock_shared() {
  if (!mu_.try_lock_shared()) return false;
  site_->RecordUncontended();
  return true;
}

}  // namespace gridauthz::obs
