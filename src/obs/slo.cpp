#include "obs/slo.h"

#include <algorithm>
#include <cmath>

#include "obs/domain.h"
#include "obs/metrics.h"

namespace gridauthz::obs {

SloTracker::SloTracker(SloOptions options) : options_(options) {
  if (options_.buckets == 0) options_.buckets = 1;
  if (options_.window_us <= 0) options_.window_us = 1;
  if (!(options_.objective >= 0.0)) options_.objective = 0.0;  // also NaN
  if (options_.objective > 1.0) options_.objective = 1.0;
  ring_.resize(options_.buckets);
}

std::int64_t SloTracker::BucketWidthUs() const {
  const auto width =
      options_.window_us / static_cast<std::int64_t>(options_.buckets);
  return width <= 0 ? 1 : width;
}

void SloTracker::Record(bool ok) {
  const std::int64_t epoch = ObsClock()->NowMicros() / BucketWidthUs();
  std::lock_guard lock(mu_);
  Bucket& bucket = ring_[static_cast<std::size_t>(epoch) % ring_.size()];
  if (bucket.epoch != epoch) {
    bucket.epoch = epoch;
    bucket.total = 0;
    bucket.errors = 0;
  }
  ++bucket.total;
  if (!ok) ++bucket.errors;
}

SloTracker::Snapshot SloTracker::Window() const {
  const std::int64_t now_epoch = ObsClock()->NowMicros() / BucketWidthUs();
  const std::int64_t oldest =
      now_epoch - static_cast<std::int64_t>(ring_.size()) + 1;
  Snapshot snapshot;
  snapshot.objective = options_.objective;
  snapshot.error_budget = 1.0 - options_.objective;
  std::lock_guard lock(mu_);
  for (const Bucket& bucket : ring_) {
    if (bucket.epoch < oldest || bucket.epoch > now_epoch) continue;
    snapshot.total += bucket.total;
    snapshot.errors += bucket.errors;
  }
  if (snapshot.total > 0) {
    snapshot.error_rate = static_cast<double>(snapshot.errors) /
                          static_cast<double>(snapshot.total);
  }
  if (snapshot.error_budget > 0.0) {
    snapshot.burn_rate = snapshot.error_rate / snapshot.error_budget;
  } else if (snapshot.errors > 0) {
    // A 100% objective has no budget; any error burns infinitely fast.
    snapshot.burn_rate = kBurnRateCap;
  }
  // A near-1.0 objective leaves a budget so small the quotient can
  // exceed any sensible scale (or, with pathological inputs, stop being
  // a number at all); the sentinel cap keeps /healthz JSON finite.
  if (std::isnan(snapshot.burn_rate)) snapshot.burn_rate = 0.0;
  snapshot.burn_rate = std::clamp(snapshot.burn_rate, 0.0, kBurnRateCap);
  return snapshot;
}

SloTracker& AuthzSlo() {
  static SloTracker* tracker = new SloTracker();
  const ObsDomain* domain = CurrentObsDomain();
  if (domain != nullptr && domain->slo != nullptr) return *domain->slo;
  return *tracker;
}

}  // namespace gridauthz::obs
