// Sampling stage profiler with flamegraph output.
//
// The decision path is already annotated: every ProvenanceStageTimer
// (pep/callout, pdp/evaluate, cas/authorize, akenti/authorize, ...)
// brackets one stage. This profiler aggregates those brackets into a
// weighted stage tree — self-time per ";"-joined stack path — and
// renders the collapsed-stack format flamegraph.pl consumes, so
// "where does authorize time go" is answered by the service itself
// (GET /profile | flamegraph.pl) with no external tooling attached.
//
// Cost model: sampling is decided once per root stage per thread
// (sample_every, default every 64th); an unsampled request pays one
// thread-local depth bump per stage and never reads the clock on the
// profiler's behalf. A sampled request pushes stack frames and, on each
// stage exit, folds self-time into the shared weight map under a
// profiled mutex ("obs/profiler" — the profiler profiles itself).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/contention.h"

namespace gridauthz::obs {

class StageProfiler {
 public:
  // Sample every Nth root stage per thread. 1 = every request
  // (deterministic tests), 0 = disabled. Default 64.
  void set_sample_every(std::uint32_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  // Stage entry; called by every ProvenanceStageTimer. Returns whether
  // this stage is being recorded — the caller must pass the same flag
  // (and, when true, the stage's elapsed microseconds) to Leave.
  bool Enter(std::string_view name);
  void Leave(bool recorded, std::int64_t elapsed_us);

  // Collapsed-stack rendering, one "path;leaf weight_us" line per
  // stack, sorted by path for deterministic output. Feed directly to
  // flamegraph.pl.
  std::string RenderCollapsed() const;

  // Total sampled root stages (profile coverage indicator).
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

  void Clear();

 private:
  std::atomic<std::uint32_t> sample_every_{64};
  std::atomic<std::uint64_t> samples_{0};
  mutable ProfiledMutex mu_{"obs/profiler"};
  // ";"-joined stage path -> accumulated self-time, microseconds.
  std::map<std::string, std::int64_t> weights_;
};

StageProfiler& Profiler();

}  // namespace gridauthz::obs
