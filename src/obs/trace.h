// Observability: span-based request tracing.
//
// A TraceContext is born at the edge (WireClient / Gatekeeper), travels
// as the `trace-id` extension attribute of the GRAM wire protocol, and is
// re-established server-side so every layer of the request path — wire
// endpoint, gatekeeper, JMI, callout chain, PDP, backend adapters — opens
// a timed child span under it. Finished spans land in a bounded in-memory
// SpanStore queryable by trace id; audit records and log lines carry the
// same id, so the three observability signals join on one key.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace gridauthz::obs {

struct TraceContext {
  std::string trace_id;  // empty = no active trace
  std::uint64_t span_id = 0;

  bool active() const { return !trace_id.empty(); }
};

// Process-unique trace id, e.g. "t-000000000000002a".
std::string GenerateTraceId();

// The context active on this thread (empty TraceContext when none).
TraceContext CurrentTrace();
// Shorthand: the active trace id or "" — what audit records and log
// lines stamp.
std::string CurrentTraceId();

// RAII: installs `trace_id` as this thread's root context and restores
// the previous context on destruction. An empty id generates a fresh
// one. Used by the wire endpoint to adopt a client-sent id and by entry
// points creating a new trace. `parent_span_id` seeds the context's
// span id: when the caller on the far side of a wire hop sent its span
// id along (the `parent-span-id` frame attribute, DESIGN.md §15), spans
// opened under this scope parent the remote span instead of dangling as
// roots — this is what stitches a broker attempt to the node-side work
// it caused.
class TraceScope {
 public:
  explicit TraceScope(std::string trace_id,
                      std::uint64_t parent_span_id = 0);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  const std::string& trace_id() const { return trace_id_; }

 private:
  std::string trace_id_;
  TraceContext previous_;
};

struct Span {
  std::string trace_id;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  // 0 = root span of its trace
  std::string name;                  // e.g. "gatekeeper/submit"
  std::string node;  // recording node ("" until a domain names it)
  std::string note;  // free-form annotation, e.g. "[fleet] dead air"
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;

  std::int64_t duration_us() const { return end_us - start_us; }
};

// Bounded in-memory store of finished spans (ring; oldest dropped).
// ForTrace is served from a trace-id index maintained alongside the
// ring, so lookup cost scales with the trace's own span count rather
// than the store capacity — /trace/<id> queries a 4096-slot store
// without scanning it.
class SpanStore {
 public:
  explicit SpanStore(std::size_t capacity = 4096);

  void Record(Span span);

  // Spans of one trace, in completion order (children close before
  // parents, so the root span is last).
  std::vector<Span> ForTrace(const std::string& trace_id) const;

  std::size_t size() const;
  std::size_t capacity() const;
  std::uint64_t dropped() const;
  void Clear();

 private:
  // Removes `slot` from by_trace_[trace_id]; caller holds mu_.
  void EraseIndexLocked(const std::string& trace_id, std::size_t slot);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<Span> ring_;
  std::vector<std::uint64_t> seq_;  // insertion sequence, parallel to ring_
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  // trace id -> ring slots currently holding that trace's spans.
  std::unordered_map<std::string, std::vector<std::size_t>> by_trace_;
};

// The span store instrumentation records into: the current ObsDomain's
// store when one is installed on this thread (obs/domain.h), otherwise
// the process-wide singleton.
SpanStore& Tracer();

// RAII timed span. Opens as a child of the thread's active span; with no
// active trace it starts a new one (so direct API entry points are traced
// too). Timing reads ObsClock()->NowMicros(); the finished span is
// recorded into Tracer() on destruction and the parent context restored.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  const std::string& trace_id() const { return span_.trace_id; }
  std::uint64_t span_id() const { return span_.span_id; }
  // Annotates the finished span, e.g. with a typed failure reason.
  void set_note(std::string note) { span_.note = std::move(note); }
  // Overrides the node stamp (normally inherited from the current
  // ObsDomain) — the broker tags its per-attempt spans with the TARGET
  // node so a stitched trace shows where each attempt went.
  void set_node(std::string node) { span_.node = std::move(node); }

 private:
  Span span_;
  TraceContext previous_;
};

}  // namespace gridauthz::obs
