#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/domain.h"

namespace gridauthz::obs {

namespace {

// Real-time default for the obs clock: steady (monotonic) microseconds,
// so latency deltas never go backwards under wall-clock adjustment.
class SteadyMicrosClock final : public Clock {
 public:
  TimePoint Now() const override { return NowMicros() / 1'000'000; }
  std::int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

std::atomic<const Clock*> g_obs_clock{nullptr};

LabelSet SortedLabels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// {key="value",key2="value2"} — empty string for no labels.
std::string RenderLabels(const LabelSet& sorted) {
  if (sorted.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

// Same but with an extra label appended (histogram `le`).
std::string RenderLabelsWith(const LabelSet& sorted, std::string_view key,
                             std::string_view value) {
  LabelSet extended = sorted;
  extended.emplace_back(std::string{key}, std::string{value});
  std::sort(extended.begin(), extended.end());
  return RenderLabels(extended);
}

std::string JsonEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string JsonLabels(const LabelSet& sorted) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  out += "}";
  return out;
}

// Fixed-precision rendering without trailing-zero noise.
std::string RenderDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

// Percentile estimate over one bucket-count snapshot (index
// bounds.size() = +Inf). Shared by Percentile and the renderers so all
// derive from the same counts.
Histogram::PercentileEstimate PercentileFromCounts(
    const std::vector<std::int64_t>& bounds,
    const std::vector<std::uint64_t>& counts, double p) {
  Histogram::PercentileEstimate out;
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return out;
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i >= bounds.size()) {
        // Overflow bucket: no finite upper edge to interpolate toward.
        out.value = bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
        out.overflow = true;
        return out;
      }
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      const double upper = static_cast<double>(bounds[i]);
      const double into = std::max(0.0, rank - static_cast<double>(cumulative));
      out.value = lower + (upper - lower) * into / static_cast<double>(in_bucket);
      return out;
    }
    cumulative += in_bucket;
  }
  out.value = bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
  out.overflow = !bounds.empty();
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("histogram bounds must be strictly increasing");
  }
  // Round each stripe's bucket row up to whole cache lines (8 atomics)
  // so two stripes never share a line.
  const std::size_t row = bounds_.size() + 1;
  stride_ = (row + 7) / 8 * 8;
  counts_ = std::vector<std::atomic<std::uint64_t>>(kStripes * stride_);
  exemplars_ = std::make_unique<ExemplarSlot[]>(row);
}

std::size_t Histogram::BucketIndex(std::int64_t value) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::Observe(std::int64_t value) {
  const std::size_t bucket = BucketIndex(value);
  counts_[detail::ThreadStripeSlot() * stride_ + bucket].fetch_add(
      1, std::memory_order_relaxed);
  sum_.Add(value);
}

void Histogram::ObserveWithExemplar(std::int64_t value,
                                    std::string_view trace_id) {
  Observe(value);
  if (trace_id.empty()) return;
  ExemplarSlot& slot = exemplars_[BucketIndex(value)];
  // Try once; a lost race just keeps the other writer's exemplar, which
  // is as good — "a recent trace that landed in this bucket".
  if (slot.busy.test_and_set(std::memory_order_acquire)) return;
  slot.value = value;
  slot.trace_id.assign(trace_id);
  slot.set = true;
  slot.busy.clear(std::memory_order_release);
}

std::optional<Histogram::Exemplar> Histogram::bucket_exemplar(
    std::size_t i) const {
  ExemplarSlot& slot = exemplars_[i];
  while (slot.busy.test_and_set(std::memory_order_acquire)) {
    // Writers hold the slot for two scalar stores and a short string
    // copy; spinning is bounded and brief.
  }
  std::optional<Exemplar> out;
  if (slot.set) out = Exemplar{slot.value, slot.trace_id};
  slot.busy.clear(std::memory_order_release);
  return out;
}

Expected<void> Histogram::Merge(const std::vector<std::int64_t>& bounds,
                                const std::vector<std::uint64_t>& counts,
                                std::int64_t sum) {
  if (bounds != bounds_) {
    return Error{ErrCode::kInvalidArgument,
                 "histogram merge: bucket bounds disagree"};
  }
  if (counts.size() != bounds_.size() + 1) {
    return Error{ErrCode::kInvalidArgument,
                 "histogram merge: expected " +
                     std::to_string(bounds_.size() + 1) + " buckets, got " +
                     std::to_string(counts.size())};
  }
  // All deltas land in stripe 0; SnapshotCounts sums across stripes, so
  // placement is invisible to readers.
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts_[i].fetch_add(counts[i], std::memory_order_relaxed);
  }
  sum_.Add(sum);
  return Ok();
}

std::vector<std::uint64_t> Histogram::SnapshotCounts() const {
  const std::size_t row = bounds_.size() + 1;
  std::vector<std::uint64_t> out(row, 0);
  for (std::size_t s = 0; s < kStripes; ++s) {
    for (std::size_t i = 0; i < row; ++i) {
      out[i] += counts_[s * stride_ + i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < kStripes; ++s) {
    total += counts_[s * stride_ + i].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::overflow_count() const {
  return bucket_count(bounds_.size());
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : SnapshotCounts()) total += c;
  return total;
}

std::int64_t Histogram::sum() const { return sum_.Sum(); }

double Histogram::Percentile(double p) const {
  return PercentileWithOverflow(p).value;
}

Histogram::PercentileEstimate Histogram::PercentileWithOverflow(
    double p) const {
  return PercentileFromCounts(bounds_, SnapshotCounts(), p);
}

const std::vector<std::int64_t>& DefaultLatencyBucketsUs() {
  static const std::vector<std::int64_t> kBuckets = {
      1,    2,    5,     10,    20,     50,     100,     200,      500,
      1000, 2000, 5000,  10000, 20000,  50000,  100000,  200000,   500000,
      1000000};
  return kBuckets;
}

MetricsRegistry::Series& MetricsRegistry::GetSeries(
    std::string_view name, const LabelSet& labels, Kind kind,
    const std::vector<std::int64_t>* bounds) {
  LabelSet sorted = SortedLabels(labels);
  std::string label_key = RenderLabels(sorted);
  std::lock_guard lock(mu_);
  Family& family = families_[std::string{name}];
  if (family.series.empty()) family.kind = kind;
  if (family.kind != kind) {
    throw std::logic_error("metric '" + std::string{name} +
                           "' registered with a different type");
  }
  auto [it, inserted] = family.series.try_emplace(std::move(label_key));
  Series& series = it->second;
  if (inserted) {
    series.name = std::string{name};
    series.labels = std::move(sorted);
    switch (kind) {
      case Kind::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        series.histogram = std::make_unique<Histogram>(*bounds);
        break;
    }
  }
  return series;
}

const MetricsRegistry::Series* MetricsRegistry::FindSeries(
    std::string_view name, const LabelSet& labels, Kind kind) const {
  std::string label_key = RenderLabels(SortedLabels(labels));
  std::lock_guard lock(mu_);
  auto family = families_.find(std::string{name});
  if (family == families_.end() || family->second.kind != kind) return nullptr;
  auto it = family->second.series.find(label_key);
  return it == family->second.series.end() ? nullptr : &it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     const LabelSet& labels) {
  return *GetSeries(name, labels, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 const LabelSet& labels) {
  return *GetSeries(name, labels, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::GetHistogram(
    std::string_view name, const LabelSet& labels,
    const std::vector<std::int64_t>& bounds) {
  return *GetSeries(name, labels, Kind::kHistogram, &bounds).histogram;
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name,
                                            const LabelSet& labels) const {
  const Series* series = FindSeries(name, labels, Kind::kCounter);
  return series == nullptr ? 0 : series->counter->value();
}

std::int64_t MetricsRegistry::GaugeValue(std::string_view name,
                                         const LabelSet& labels) const {
  const Series* series = FindSeries(name, labels, Kind::kGauge);
  return series == nullptr ? 0 : series->gauge->value();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name,
                                                const LabelSet& labels) const {
  const Series* series = FindSeries(name, labels, Kind::kHistogram);
  return series == nullptr ? nullptr : series->histogram.get();
}

std::vector<std::pair<LabelSet, std::int64_t>> MetricsRegistry::GaugeSeries(
    std::string_view name) const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<LabelSet, std::int64_t>> out;
  auto family = families_.find(std::string{name});
  if (family == families_.end() || family->second.kind != Kind::kGauge) {
    return out;
  }
  for (const auto& [label_key, series] : family->second.series) {
    out.emplace_back(series.labels, series.gauge->value());
  }
  return out;
}

std::vector<std::pair<LabelSet, std::uint64_t>> MetricsRegistry::CounterSeries(
    std::string_view name) const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<LabelSet, std::uint64_t>> out;
  auto family = families_.find(std::string{name});
  if (family == families_.end() || family->second.kind != Kind::kCounter) {
    return out;
  }
  for (const auto& [label_key, series] : family->second.series) {
    out.emplace_back(series.labels, series.counter->value());
  }
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [label_key, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + label_key + " " +
                 std::to_string(series.counter->value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + label_key + " " +
                 std::to_string(series.gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          // One snapshot feeds _bucket AND _count: with writers striped
          // and concurrent, two separate summations could render a
          // _count that disagrees with the +Inf cumulative.
          const std::vector<std::uint64_t> counts = h.SnapshotCounts();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
            cumulative += counts[i];
            const bool overflow = i == h.bounds().size();
            out += name + "_bucket" +
                   RenderLabelsWith(series.labels, "le",
                                    overflow
                                        ? std::string{"+Inf"}
                                        : std::to_string(h.bounds()[i])) +
                   " " + std::to_string(cumulative);
            if (const auto exemplar = h.bucket_exemplar(i)) {
              out += " # {trace_id=\"" + EscapeLabelValue(exemplar->trace_id) +
                     "\"} " + std::to_string(exemplar->value);
            }
            out += "\n";
          }
          out += name + "_sum" + label_key + " " + std::to_string(h.sum()) +
                 "\n";
          out += name + "_count" + label_key + " " +
                 std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, family] : families_) {
    for (const auto& [label_key, series] : family.series) {
      std::string entry = "{\"name\":\"" + JsonEscape(name) +
                          "\",\"labels\":" + JsonLabels(series.labels);
      switch (family.kind) {
        case Kind::kCounter:
          entry += ",\"value\":" + std::to_string(series.counter->value()) +
                   "}";
          if (!counters.empty()) counters += ",";
          counters += entry;
          break;
        case Kind::kGauge:
          entry +=
              ",\"value\":" + std::to_string(series.gauge->value()) + "}";
          if (!gauges.empty()) gauges += ",";
          gauges += entry;
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          const std::vector<std::uint64_t> counts = h.SnapshotCounts();
          std::uint64_t total = 0;
          for (std::uint64_t c : counts) total += c;
          entry += ",\"count\":" + std::to_string(total);
          entry += ",\"sum\":" + std::to_string(h.sum());
          entry += ",\"overflow_count\":" + std::to_string(counts.back());
          // Raw schema + per-bucket counts (last entry = +Inf overflow),
          // all from the ONE snapshot above: the fleet federator merges
          // scraped documents bucket-wise and must see exact bounds to
          // refuse mismatched schemas (obs/federate.h, DESIGN.md §15).
          entry += ",\"bounds\":[";
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            if (i > 0) entry += ",";
            entry += std::to_string(h.bounds()[i]);
          }
          entry += "],\"buckets\":[";
          for (std::size_t i = 0; i < counts.size(); ++i) {
            if (i > 0) entry += ",";
            entry += std::to_string(counts[i]);
          }
          entry += "]";
          std::string saturated;
          for (const auto& [label, p] :
               {std::pair{"p50", 50.0}, {"p95", 95.0}, {"p99", 99.0}}) {
            const auto estimate = PercentileFromCounts(h.bounds(), counts, p);
            entry += ",\"" + std::string{label} +
                     "\":" + RenderDouble(estimate.value);
            if (estimate.overflow) {
              if (!saturated.empty()) saturated += ",";
              saturated += "\"" + std::string{label} + "\"";
            }
          }
          if (!saturated.empty()) {
            entry += ",\"saturated\":[" + saturated + "]";
          }
          entry += "}";
          if (!histograms.empty()) histograms += ",";
          histograms += entry;
          break;
        }
      }
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

std::uint64_t MetricsRegistry::ActivityFingerprint() const {
  std::lock_guard lock(mu_);
  // FNV-1a over the same family/series walk RenderJson performs. The
  // histogram fold is count + sum only: every Observe() changes the
  // count, so bucket rows need not be touched.
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t value) {
    h ^= value;
    h *= 1099511628211ull;
  };
  auto mix_text = [&mix](std::string_view text) {
    mix(text.size());
    for (char c : text) mix(static_cast<unsigned char>(c));
  };
  mix(reset_epoch_.load(std::memory_order_acquire));
  for (const auto& [name, family] : families_) {
    mix_text(name);
    mix(static_cast<std::uint64_t>(family.kind));
    for (const auto& [label_key, series] : family.series) {
      mix_text(label_key);
      switch (family.kind) {
        case Kind::kCounter:
          mix(series.counter->value());
          break;
        case Kind::kGauge:
          mix(static_cast<std::uint64_t>(series.gauge->value()));
          break;
        case Kind::kHistogram:
          mix(series.histogram->count());
          mix(static_cast<std::uint64_t>(series.histogram->sum()));
          break;
      }
    }
  }
  return h == 0 ? 1 : h;
}

void MetricsRegistry::Reset() {
  std::lock_guard lock(mu_);
  families_.clear();
  reset_epoch_.fetch_add(1, std::memory_order_release);
}

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  const ObsDomain* domain = CurrentObsDomain();
  if (domain != nullptr && domain->metrics != nullptr) return *domain->metrics;
  return *registry;
}

const Clock* ObsClock() {
  const Clock* clock = g_obs_clock.load(std::memory_order_acquire);
  if (clock != nullptr) return clock;
  static SteadyMicrosClock* fallback = new SteadyMicrosClock();
  return fallback;
}

void SetObsClock(const Clock* clock) {
  g_obs_clock.store(clock, std::memory_order_release);
}

}  // namespace gridauthz::obs
