#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gridauthz::obs {

namespace {

// Real-time default for the obs clock: steady (monotonic) microseconds,
// so latency deltas never go backwards under wall-clock adjustment.
class SteadyMicrosClock final : public Clock {
 public:
  TimePoint Now() const override { return NowMicros() / 1'000'000; }
  std::int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

std::atomic<const Clock*> g_obs_clock{nullptr};

LabelSet SortedLabels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// {key="value",key2="value2"} — empty string for no labels.
std::string RenderLabels(const LabelSet& sorted) {
  if (sorted.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

// Same but with an extra label appended (histogram `le`).
std::string RenderLabelsWith(const LabelSet& sorted, std::string_view key,
                             std::string_view value) {
  LabelSet extended = sorted;
  extended.emplace_back(std::string{key}, std::string{value});
  std::sort(extended.begin(), extended.end());
  return RenderLabels(extended);
}

std::string JsonEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string JsonLabels(const LabelSet& sorted) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  out += "}";
  return out;
}

// Fixed-precision rendering without trailing-zero noise.
std::string RenderDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

}  // namespace

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("histogram bounds must be strictly increasing");
  }
}

void Histogram::Observe(std::int64_t value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::int64_t Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::Percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t in_bucket = counts_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i >= bounds_.size()) {
        // Overflow bucket: no finite upper edge to interpolate toward.
        return bounds_.empty() ? 0.0
                               : static_cast<double>(bounds_.back());
      }
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
      const double upper = static_cast<double>(bounds_[i]);
      const double into = std::max(0.0, rank - static_cast<double>(cumulative));
      return lower + (upper - lower) * into / static_cast<double>(in_bucket);
    }
    cumulative += in_bucket;
  }
  return bounds_.empty() ? 0.0 : static_cast<double>(bounds_.back());
}

const std::vector<std::int64_t>& DefaultLatencyBucketsUs() {
  static const std::vector<std::int64_t> kBuckets = {
      1,    2,    5,     10,    20,     50,     100,     200,      500,
      1000, 2000, 5000,  10000, 20000,  50000,  100000,  200000,   500000,
      1000000};
  return kBuckets;
}

MetricsRegistry::Series& MetricsRegistry::GetSeries(
    std::string_view name, const LabelSet& labels, Kind kind,
    const std::vector<std::int64_t>* bounds) {
  LabelSet sorted = SortedLabels(labels);
  std::string label_key = RenderLabels(sorted);
  std::lock_guard lock(mu_);
  Family& family = families_[std::string{name}];
  if (family.series.empty()) family.kind = kind;
  if (family.kind != kind) {
    throw std::logic_error("metric '" + std::string{name} +
                           "' registered with a different type");
  }
  auto [it, inserted] = family.series.try_emplace(std::move(label_key));
  Series& series = it->second;
  if (inserted) {
    series.name = std::string{name};
    series.labels = std::move(sorted);
    switch (kind) {
      case Kind::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        series.histogram = std::make_unique<Histogram>(*bounds);
        break;
    }
  }
  return series;
}

const MetricsRegistry::Series* MetricsRegistry::FindSeries(
    std::string_view name, const LabelSet& labels, Kind kind) const {
  std::string label_key = RenderLabels(SortedLabels(labels));
  std::lock_guard lock(mu_);
  auto family = families_.find(std::string{name});
  if (family == families_.end() || family->second.kind != kind) return nullptr;
  auto it = family->second.series.find(label_key);
  return it == family->second.series.end() ? nullptr : &it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     const LabelSet& labels) {
  return *GetSeries(name, labels, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 const LabelSet& labels) {
  return *GetSeries(name, labels, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::GetHistogram(
    std::string_view name, const LabelSet& labels,
    const std::vector<std::int64_t>& bounds) {
  return *GetSeries(name, labels, Kind::kHistogram, &bounds).histogram;
}

std::uint64_t MetricsRegistry::CounterValue(std::string_view name,
                                            const LabelSet& labels) const {
  const Series* series = FindSeries(name, labels, Kind::kCounter);
  return series == nullptr ? 0 : series->counter->value();
}

std::int64_t MetricsRegistry::GaugeValue(std::string_view name,
                                         const LabelSet& labels) const {
  const Series* series = FindSeries(name, labels, Kind::kGauge);
  return series == nullptr ? 0 : series->gauge->value();
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name,
                                                const LabelSet& labels) const {
  const Series* series = FindSeries(name, labels, Kind::kHistogram);
  return series == nullptr ? nullptr : series->histogram.get();
}

std::vector<std::pair<LabelSet, std::int64_t>> MetricsRegistry::GaugeSeries(
    std::string_view name) const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<LabelSet, std::int64_t>> out;
  auto family = families_.find(std::string{name});
  if (family == families_.end() || family->second.kind != Kind::kGauge) {
    return out;
  }
  for (const auto& [label_key, series] : family->second.series) {
    out.emplace_back(series.labels, series.gauge->value());
  }
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [label_key, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + label_key + " " +
                 std::to_string(series.counter->value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + label_key + " " +
                 std::to_string(series.gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.bucket_count(i);
            out += name + "_bucket" +
                   RenderLabelsWith(series.labels, "le",
                                    std::to_string(h.bounds()[i])) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += h.bucket_count(h.bounds().size());
          out += name + "_bucket" +
                 RenderLabelsWith(series.labels, "le", "+Inf") + " " +
                 std::to_string(cumulative) + "\n";
          out += name + "_sum" + label_key + " " + std::to_string(h.sum()) +
                 "\n";
          out += name + "_count" + label_key + " " +
                 std::to_string(h.count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, family] : families_) {
    for (const auto& [label_key, series] : family.series) {
      std::string entry = "{\"name\":\"" + JsonEscape(name) +
                          "\",\"labels\":" + JsonLabels(series.labels);
      switch (family.kind) {
        case Kind::kCounter:
          entry += ",\"value\":" + std::to_string(series.counter->value()) +
                   "}";
          if (!counters.empty()) counters += ",";
          counters += entry;
          break;
        case Kind::kGauge:
          entry +=
              ",\"value\":" + std::to_string(series.gauge->value()) + "}";
          if (!gauges.empty()) gauges += ",";
          gauges += entry;
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          entry += ",\"count\":" + std::to_string(h.count());
          entry += ",\"sum\":" + std::to_string(h.sum());
          entry += ",\"p50\":" + RenderDouble(h.p50());
          entry += ",\"p95\":" + RenderDouble(h.p95());
          entry += ",\"p99\":" + RenderDouble(h.p99());
          entry += "}";
          if (!histograms.empty()) histograms += ",";
          histograms += entry;
          break;
        }
      }
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

void MetricsRegistry::Reset() {
  std::lock_guard lock(mu_);
  families_.clear();
}

MetricsRegistry& Metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

const Clock* ObsClock() {
  const Clock* clock = g_obs_clock.load(std::memory_order_acquire);
  if (clock != nullptr) return clock;
  static SteadyMicrosClock* fallback = new SteadyMicrosClock();
  return fallback;
}

void SetObsClock(const Clock* clock) {
  g_obs_clock.store(clock, std::memory_order_release);
}

}  // namespace gridauthz::obs
