// Observability: shared instrumentation hooks for the authorization path.
//
// Every PEP and PDP layer measures the same way so the series compose:
//   authz_decisions_total{source,outcome}   outcome: permit | deny | error
//   authz_latency_us{source}                fixed-bucket histogram
// plus a timed span named "authorize/<source>" under the active trace.
//
// Two tiers, same series:
//
//   - CounterHandle / HistogramHandle / AuthzInstruments resolve the
//     registry series ONCE and cache the pointer; the per-call cost is
//     an epoch check plus striped relaxed atomics. Sources construct
//     their AuthzInstruments next to their name and hand it to each
//     AuthzCallObservation. This is the hot path.
//   - The legacy AuthzCallObservation(std::string source) constructor
//     resolves through the registry mutex on every destruction. It is
//     kept as the pre-resolution baseline that bench/obs_overhead
//     measures against — new call sites should not use it.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::obs {

inline constexpr std::string_view kOutcomePermit = "permit";
inline constexpr std::string_view kOutcomeDeny = "deny";
inline constexpr std::string_view kOutcomeError = "error";

// Series emitted by the evaluation fast path (core/compiled.h,
// core/decision_cache.h); named here so dashboards and tests share one
// spelling.
inline constexpr std::string_view kMetricCacheHits = "authz_cache_hits_total";
inline constexpr std::string_view kMetricCacheMisses =
    "authz_cache_misses_total";
inline constexpr std::string_view kMetricPolicyCompiles =
    "policy_compiles_total";
inline constexpr std::string_view kMetricCompiledStatements =
    "policy_compiled_statements";

namespace detail {

// The handle cache: one resolved series pointer plus the identity it
// was resolved under — the registry's process-unique uid (obs/domain.h
// can put a DIFFERENT registry behind Metrics() per thread, and a fresh
// registry can reuse a destroyed one's address, so the address proves
// nothing) and its reset epoch (Reset() invalidates series pointers
// without changing the registry). Published seqlock-style so a reader
// can never pair a pointer from one Store with the identity of another:
// writers (serialized by the handle's resolve mutex) bump the sequence
// odd, write, bump it even; readers reject torn or stale snapshots and
// fall through to a full re-resolve.
template <typename T>
class ResolvedSlot {
 public:
  T* Load(std::uint64_t uid, std::uint64_t epoch) const {
    const std::uint64_t before = seq_.load(std::memory_order_acquire);
    if ((before & 1) != 0) return nullptr;
    T* value = value_.load(std::memory_order_relaxed);
    const std::uint64_t seen_uid = uid_.load(std::memory_order_relaxed);
    const std::uint64_t seen_epoch = epoch_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) != before) return nullptr;
    if (value == nullptr || seen_uid != uid || seen_epoch != epoch) {
      return nullptr;
    }
    return value;
  }

  // Callers serialize Stores (the handle resolve mutex).
  void Store(T* value, std::uint64_t uid, std::uint64_t epoch) {
    seq_.fetch_add(1, std::memory_order_acq_rel);
    value_.store(value, std::memory_order_relaxed);
    uid_.store(uid, std::memory_order_relaxed);
    epoch_.store(epoch, std::memory_order_relaxed);
    seq_.fetch_add(1, std::memory_order_release);
  }

 private:
  mutable std::atomic<std::uint64_t> seq_{0};
  std::atomic<T*> value_{nullptr};
  std::atomic<std::uint64_t> uid_{0};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace detail

// A counter series resolved once and then incremented without touching
// the registry. Valid across MetricsRegistry::Reset() and across
// observability-domain switches: the cache keys on the current
// registry's uid and reset epoch (ResolvedSlot above) and lazily
// re-resolves whenever either moves.
class CounterHandle {
 public:
  CounterHandle(std::string name, LabelSet labels)
      : name_(std::move(name)), labels_(std::move(labels)) {}
  CounterHandle(const CounterHandle&) = delete;
  CounterHandle& operator=(const CounterHandle&) = delete;

  void Increment(std::uint64_t delta = 1) const { Resolve().Increment(delta); }

 private:
  Counter& Resolve() const {
    MetricsRegistry& registry = Metrics();
    const std::uint64_t uid = registry.uid();
    const std::uint64_t epoch = registry.reset_epoch();
    if (Counter* counter = slot_.Load(uid, epoch)) return *counter;
    std::lock_guard lock(resolve_mu_);
    Counter* counter = &registry.GetCounter(name_, labels_);
    slot_.Store(counter, uid, epoch);
    return *counter;
  }

  std::string name_;
  LabelSet labels_;
  mutable std::mutex resolve_mu_;
  mutable detail::ResolvedSlot<Counter> slot_;
};

// Same for a gauge series.
class GaugeHandle {
 public:
  GaugeHandle(std::string name, LabelSet labels = {})
      : name_(std::move(name)), labels_(std::move(labels)) {}
  GaugeHandle(const GaugeHandle&) = delete;
  GaugeHandle& operator=(const GaugeHandle&) = delete;

  void Set(std::int64_t value) const { Resolve().Set(value); }
  void Add(std::int64_t delta) const { Resolve().Add(delta); }

 private:
  Gauge& Resolve() const {
    MetricsRegistry& registry = Metrics();
    const std::uint64_t uid = registry.uid();
    const std::uint64_t epoch = registry.reset_epoch();
    if (Gauge* gauge = slot_.Load(uid, epoch)) return *gauge;
    std::lock_guard lock(resolve_mu_);
    Gauge* gauge = &registry.GetGauge(name_, labels_);
    slot_.Store(gauge, uid, epoch);
    return *gauge;
  }

  std::string name_;
  LabelSet labels_;
  mutable std::mutex resolve_mu_;
  mutable detail::ResolvedSlot<Gauge> slot_;
};

// Same for a histogram series.
class HistogramHandle {
 public:
  HistogramHandle(std::string name, LabelSet labels,
                  std::vector<std::int64_t> bounds = DefaultLatencyBucketsUs())
      : name_(std::move(name)),
        labels_(std::move(labels)),
        bounds_(std::move(bounds)) {}
  HistogramHandle(const HistogramHandle&) = delete;
  HistogramHandle& operator=(const HistogramHandle&) = delete;

  void Observe(std::int64_t value) const { Resolve().Observe(value); }
  void ObserveWithExemplar(std::int64_t value,
                           std::string_view trace_id) const {
    Resolve().ObserveWithExemplar(value, trace_id);
  }

 private:
  Histogram& Resolve() const {
    MetricsRegistry& registry = Metrics();
    const std::uint64_t uid = registry.uid();
    const std::uint64_t epoch = registry.reset_epoch();
    if (Histogram* histogram = slot_.Load(uid, epoch)) return *histogram;
    std::lock_guard lock(resolve_mu_);
    Histogram* histogram = &registry.GetHistogram(name_, labels_, bounds_);
    slot_.Store(histogram, uid, epoch);
    return *histogram;
  }

  std::string name_;
  LabelSet labels_;
  std::vector<std::int64_t> bounds_;
  mutable std::mutex resolve_mu_;
  mutable detail::ResolvedSlot<Histogram> slot_;
};

// The full per-source instrument set — one outcome counter per label
// value plus the latency histogram, and the span name pre-concatenated.
// A policy source constructs this once beside its name and passes it to
// every AuthzCallObservation.
class AuthzInstruments {
 public:
  explicit AuthzInstruments(std::string_view source)
      : span_name_("authorize/" + std::string{source}),
        permit_("authz_decisions_total",
                {{"source", std::string{source}},
                 {"outcome", std::string{kOutcomePermit}}}),
        deny_("authz_decisions_total",
              {{"source", std::string{source}},
               {"outcome", std::string{kOutcomeDeny}}}),
        error_("authz_decisions_total",
               {{"source", std::string{source}},
                {"outcome", std::string{kOutcomeError}}}),
        latency_("authz_latency_us", {{"source", std::string{source}}}) {}

  AuthzInstruments(const AuthzInstruments&) = delete;
  AuthzInstruments& operator=(const AuthzInstruments&) = delete;

  const CounterHandle& outcome(std::string_view outcome) const {
    if (outcome == kOutcomePermit) return permit_;
    if (outcome == kOutcomeDeny) return deny_;
    return error_;
  }
  const HistogramHandle& latency() const { return latency_; }
  const std::string& span_name() const { return span_name_; }

 private:
  std::string span_name_;
  CounterHandle permit_;
  CounterHandle deny_;
  CounterHandle error_;
  HistogramHandle latency_;
};

// RAII observation of one authorize call: construct at entry, call
// set_outcome() on the way out. Destruction increments the decision
// counter, records the latency sample (stamping the bucket's exemplar
// with this call's trace id), and closes the span. An observation that
// never learns its outcome reports "error" — an authorize path that
// vanished is a system problem, not a permit.
class AuthzCallObservation {
 public:
  // Hot path: pre-resolved instruments, no registry lookup.
  explicit AuthzCallObservation(const AuthzInstruments& instruments)
      : instruments_(&instruments),
        span_(instruments.span_name()),
        start_us_(ObsClock()->NowMicros()) {}

  // Legacy per-call resolution; kept as the bench baseline.
  explicit AuthzCallObservation(std::string source)
      : source_(std::move(source)),
        span_("authorize/" + source_),
        start_us_(ObsClock()->NowMicros()) {}

  AuthzCallObservation(const AuthzCallObservation&) = delete;
  AuthzCallObservation& operator=(const AuthzCallObservation&) = delete;

  void set_outcome(std::string_view outcome) {
    outcome_ = std::string{outcome};
  }

  ~AuthzCallObservation() {
    const std::int64_t elapsed_us = ObsClock()->NowMicros() - start_us_;
    if (instruments_ != nullptr) {
      instruments_->outcome(outcome_).Increment();
      instruments_->latency().ObserveWithExemplar(elapsed_us,
                                                  span_.trace_id());
      return;
    }
    Metrics()
        .GetCounter("authz_decisions_total",
                    {{"source", source_}, {"outcome", outcome_}})
        .Increment();
    Metrics()
        .GetHistogram("authz_latency_us", {{"source", source_}})
        .Observe(elapsed_us);
  }

 private:
  const AuthzInstruments* instruments_ = nullptr;
  std::string source_;
  std::string outcome_ = std::string{kOutcomeError};
  ScopedSpan span_;
  std::int64_t start_us_;
};

}  // namespace gridauthz::obs
