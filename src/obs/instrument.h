// Observability: shared instrumentation hooks for the authorization path.
//
// Every PEP and PDP layer measures the same way so the series compose:
//   authz_decisions_total{source,outcome}   outcome: permit | deny | error
//   authz_latency_us{source}                fixed-bucket histogram
// plus a timed span named "authorize/<source>" under the active trace.
//
// Two tiers, same series:
//
//   - CounterHandle / HistogramHandle / AuthzInstruments resolve the
//     registry series ONCE and cache the pointer; the per-call cost is
//     an epoch check plus striped relaxed atomics. Sources construct
//     their AuthzInstruments next to their name and hand it to each
//     AuthzCallObservation. This is the hot path.
//   - The legacy AuthzCallObservation(std::string source) constructor
//     resolves through the registry mutex on every destruction. It is
//     kept as the pre-resolution baseline that bench/obs_overhead
//     measures against — new call sites should not use it.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::obs {

inline constexpr std::string_view kOutcomePermit = "permit";
inline constexpr std::string_view kOutcomeDeny = "deny";
inline constexpr std::string_view kOutcomeError = "error";

// Series emitted by the evaluation fast path (core/compiled.h,
// core/decision_cache.h); named here so dashboards and tests share one
// spelling.
inline constexpr std::string_view kMetricCacheHits = "authz_cache_hits_total";
inline constexpr std::string_view kMetricCacheMisses =
    "authz_cache_misses_total";
inline constexpr std::string_view kMetricPolicyCompiles =
    "policy_compiles_total";
inline constexpr std::string_view kMetricCompiledStatements =
    "policy_compiled_statements";

// A counter series resolved once and then incremented without touching
// the registry. Valid across MetricsRegistry::Reset(): the cached
// pointer carries the reset epoch it was resolved under and lazily
// re-resolves when the epoch moves (Reset is a test-isolation affair
// between traffic phases, not something that races live increments).
class CounterHandle {
 public:
  CounterHandle(std::string name, LabelSet labels)
      : name_(std::move(name)), labels_(std::move(labels)) {}
  CounterHandle(const CounterHandle&) = delete;
  CounterHandle& operator=(const CounterHandle&) = delete;

  void Increment(std::uint64_t delta = 1) const { Resolve().Increment(delta); }

 private:
  Counter& Resolve() const {
    const std::uint64_t epoch = Metrics().reset_epoch();
    Counter* counter = counter_.load(std::memory_order_acquire);
    if (counter != nullptr && epoch_.load(std::memory_order_relaxed) == epoch) {
      return *counter;
    }
    std::lock_guard lock(resolve_mu_);
    counter = &Metrics().GetCounter(name_, labels_);
    epoch_.store(epoch, std::memory_order_relaxed);
    counter_.store(counter, std::memory_order_release);
    return *counter;
  }

  std::string name_;
  LabelSet labels_;
  mutable std::mutex resolve_mu_;
  mutable std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<Counter*> counter_{nullptr};
};

// Same for a gauge series.
class GaugeHandle {
 public:
  GaugeHandle(std::string name, LabelSet labels = {})
      : name_(std::move(name)), labels_(std::move(labels)) {}
  GaugeHandle(const GaugeHandle&) = delete;
  GaugeHandle& operator=(const GaugeHandle&) = delete;

  void Set(std::int64_t value) const { Resolve().Set(value); }
  void Add(std::int64_t delta) const { Resolve().Add(delta); }

 private:
  Gauge& Resolve() const {
    const std::uint64_t epoch = Metrics().reset_epoch();
    Gauge* gauge = gauge_.load(std::memory_order_acquire);
    if (gauge != nullptr && epoch_.load(std::memory_order_relaxed) == epoch) {
      return *gauge;
    }
    std::lock_guard lock(resolve_mu_);
    gauge = &Metrics().GetGauge(name_, labels_);
    epoch_.store(epoch, std::memory_order_relaxed);
    gauge_.store(gauge, std::memory_order_release);
    return *gauge;
  }

  std::string name_;
  LabelSet labels_;
  mutable std::mutex resolve_mu_;
  mutable std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<Gauge*> gauge_{nullptr};
};

// Same for a histogram series.
class HistogramHandle {
 public:
  HistogramHandle(std::string name, LabelSet labels,
                  std::vector<std::int64_t> bounds = DefaultLatencyBucketsUs())
      : name_(std::move(name)),
        labels_(std::move(labels)),
        bounds_(std::move(bounds)) {}
  HistogramHandle(const HistogramHandle&) = delete;
  HistogramHandle& operator=(const HistogramHandle&) = delete;

  void Observe(std::int64_t value) const { Resolve().Observe(value); }
  void ObserveWithExemplar(std::int64_t value,
                           std::string_view trace_id) const {
    Resolve().ObserveWithExemplar(value, trace_id);
  }

 private:
  Histogram& Resolve() const {
    const std::uint64_t epoch = Metrics().reset_epoch();
    Histogram* histogram = histogram_.load(std::memory_order_acquire);
    if (histogram != nullptr &&
        epoch_.load(std::memory_order_relaxed) == epoch) {
      return *histogram;
    }
    std::lock_guard lock(resolve_mu_);
    histogram = &Metrics().GetHistogram(name_, labels_, bounds_);
    epoch_.store(epoch, std::memory_order_relaxed);
    histogram_.store(histogram, std::memory_order_release);
    return *histogram;
  }

  std::string name_;
  LabelSet labels_;
  std::vector<std::int64_t> bounds_;
  mutable std::mutex resolve_mu_;
  mutable std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<Histogram*> histogram_{nullptr};
};

// The full per-source instrument set — one outcome counter per label
// value plus the latency histogram, and the span name pre-concatenated.
// A policy source constructs this once beside its name and passes it to
// every AuthzCallObservation.
class AuthzInstruments {
 public:
  explicit AuthzInstruments(std::string_view source)
      : span_name_("authorize/" + std::string{source}),
        permit_("authz_decisions_total",
                {{"source", std::string{source}},
                 {"outcome", std::string{kOutcomePermit}}}),
        deny_("authz_decisions_total",
              {{"source", std::string{source}},
               {"outcome", std::string{kOutcomeDeny}}}),
        error_("authz_decisions_total",
               {{"source", std::string{source}},
                {"outcome", std::string{kOutcomeError}}}),
        latency_("authz_latency_us", {{"source", std::string{source}}}) {}

  AuthzInstruments(const AuthzInstruments&) = delete;
  AuthzInstruments& operator=(const AuthzInstruments&) = delete;

  const CounterHandle& outcome(std::string_view outcome) const {
    if (outcome == kOutcomePermit) return permit_;
    if (outcome == kOutcomeDeny) return deny_;
    return error_;
  }
  const HistogramHandle& latency() const { return latency_; }
  const std::string& span_name() const { return span_name_; }

 private:
  std::string span_name_;
  CounterHandle permit_;
  CounterHandle deny_;
  CounterHandle error_;
  HistogramHandle latency_;
};

// RAII observation of one authorize call: construct at entry, call
// set_outcome() on the way out. Destruction increments the decision
// counter, records the latency sample (stamping the bucket's exemplar
// with this call's trace id), and closes the span. An observation that
// never learns its outcome reports "error" — an authorize path that
// vanished is a system problem, not a permit.
class AuthzCallObservation {
 public:
  // Hot path: pre-resolved instruments, no registry lookup.
  explicit AuthzCallObservation(const AuthzInstruments& instruments)
      : instruments_(&instruments),
        span_(instruments.span_name()),
        start_us_(ObsClock()->NowMicros()) {}

  // Legacy per-call resolution; kept as the bench baseline.
  explicit AuthzCallObservation(std::string source)
      : source_(std::move(source)),
        span_("authorize/" + source_),
        start_us_(ObsClock()->NowMicros()) {}

  AuthzCallObservation(const AuthzCallObservation&) = delete;
  AuthzCallObservation& operator=(const AuthzCallObservation&) = delete;

  void set_outcome(std::string_view outcome) {
    outcome_ = std::string{outcome};
  }

  ~AuthzCallObservation() {
    const std::int64_t elapsed_us = ObsClock()->NowMicros() - start_us_;
    if (instruments_ != nullptr) {
      instruments_->outcome(outcome_).Increment();
      instruments_->latency().ObserveWithExemplar(elapsed_us,
                                                  span_.trace_id());
      return;
    }
    Metrics()
        .GetCounter("authz_decisions_total",
                    {{"source", source_}, {"outcome", outcome_}})
        .Increment();
    Metrics()
        .GetHistogram("authz_latency_us", {{"source", source_}})
        .Observe(elapsed_us);
  }

 private:
  const AuthzInstruments* instruments_ = nullptr;
  std::string source_;
  std::string outcome_ = std::string{kOutcomeError};
  ScopedSpan span_;
  std::int64_t start_us_;
};

}  // namespace gridauthz::obs
