// Observability: shared instrumentation hooks for the authorization path.
//
// Every PEP and PDP layer measures the same way so the series compose:
//   authz_decisions_total{source,outcome}   outcome: permit | deny | error
//   authz_latency_us{source}                fixed-bucket histogram
// plus a timed span named "authorize/<source>" under the active trace.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::obs {

inline constexpr std::string_view kOutcomePermit = "permit";
inline constexpr std::string_view kOutcomeDeny = "deny";
inline constexpr std::string_view kOutcomeError = "error";

// Series emitted by the evaluation fast path (core/compiled.h,
// core/decision_cache.h); named here so dashboards and tests share one
// spelling.
inline constexpr std::string_view kMetricCacheHits = "authz_cache_hits_total";
inline constexpr std::string_view kMetricCacheMisses =
    "authz_cache_misses_total";
inline constexpr std::string_view kMetricPolicyCompiles =
    "policy_compiles_total";
inline constexpr std::string_view kMetricCompiledStatements =
    "policy_compiled_statements";

// RAII observation of one authorize call: construct at entry, call
// set_outcome() on the way out. Destruction increments the decision
// counter, records the latency sample, and closes the span. An
// observation that never learns its outcome reports "error" — an
// authorize path that vanished is a system problem, not a permit.
class AuthzCallObservation {
 public:
  explicit AuthzCallObservation(std::string source)
      : source_(std::move(source)),
        span_("authorize/" + source_),
        start_us_(ObsClock()->NowMicros()) {}

  AuthzCallObservation(const AuthzCallObservation&) = delete;
  AuthzCallObservation& operator=(const AuthzCallObservation&) = delete;

  void set_outcome(std::string_view outcome) {
    outcome_ = std::string{outcome};
  }

  ~AuthzCallObservation() {
    const std::int64_t elapsed_us = ObsClock()->NowMicros() - start_us_;
    Metrics()
        .GetCounter("authz_decisions_total",
                    {{"source", source_}, {"outcome", outcome_}})
        .Increment();
    Metrics()
        .GetHistogram("authz_latency_us", {{"source", source_}})
        .Observe(elapsed_us);
  }

 private:
  std::string source_;
  std::string outcome_ = std::string{kOutcomeError};
  ScopedSpan span_;
  std::int64_t start_us_;
};

}  // namespace gridauthz::obs
