// Observability domains: per-node metrics/trace isolation inside one
// process.
//
// The fleet harness (DESIGN.md §13) simulates a federation of gatekeeper
// processes inside one address space. Observability, however, was built
// process-global — Metrics() and Tracer() are singletons — so every
// simulated node would write into the same registry and span store,
// making "federation" a tautology: the broker would scrape N copies of
// identical data.
//
// An ObsDomain restores the process boundary for observability only: it
// names a node and optionally redirects the metrics registry, the span
// store, and the span-id seed for whatever runs under its scope.
// Metrics() and Tracer() consult the thread-local current domain and
// fall back to the process-global singletons when a field is null, so
// all existing single-process code is untouched. A node's transport
// wrapper installs its domain for the duration of each handled frame;
// everything the frame touches — PDP evaluation, audit, spans, SLO
// accounting — lands in that node's own registry and store, exactly as
// it would in a real per-process deployment (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <string>

namespace gridauthz::obs {

class MetricsRegistry;
class SpanStore;
class SloTracker;

struct ObsDomain {
  // Node identity stamped onto spans recorded under this domain ("" =
  // unnamed; spans keep whatever the store-level default is).
  std::string node;
  // Redirection targets; nullptr = fall back to the process singleton.
  MetricsRegistry* metrics = nullptr;
  SpanStore* spans = nullptr;
  SloTracker* slo = nullptr;
  // Mixed into the high bits of minted span ids so two domains never
  // collide even though both draw from process-wide counters (see
  // trace.cpp). 0 = no namespacing (the process-global domain).
  std::uint64_t span_seed = 0;
};

// The domain active on this thread, or nullptr outside any scope.
const ObsDomain* CurrentObsDomain();

// RAII: installs `domain` as this thread's observability domain and
// restores the previous one on destruction. The domain object must
// outlive the scope; scopes nest (innermost wins).
class ObsDomainScope {
 public:
  explicit ObsDomainScope(const ObsDomain* domain);
  ~ObsDomainScope();
  ObsDomainScope(const ObsDomainScope&) = delete;
  ObsDomainScope& operator=(const ObsDomainScope&) = delete;

 private:
  const ObsDomain* previous_;
};

}  // namespace gridauthz::obs
