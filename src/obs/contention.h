// Lock and queue contention profiling.
//
// ROADMAP item 2 calls the cached read path "contention-bound, not
// CPU-bound", but nothing in the process could say *which* lock eats
// the wait. ProfiledMutex / ProfiledSharedMutex wrap the standard
// primitives and charge every blocked acquisition to a named
// ContentionSite: a try_lock that succeeds (the overwhelmingly common
// case) records one striped increment and never reads the clock; only
// a blocked acquisition pays two clock reads to measure its wait.
//
// Sites live in their own ContentionRegistry, deliberately outside
// MetricsRegistry: the metrics registry's own mutex is itself a
// profiled site, so contention bookkeeping must not recurse into it.
// /metrics appends the registry's Prometheus rendering
// (lock_wait_us{site}, lock_acquisitions_total{site},
// lock_contended_total{site}); /contention serves a JSON ranking of
// sites by total wait.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stripe.h"

namespace gridauthz::obs {

// Wait-time histogram bounds, microseconds. Coarser than the latency
// buckets: lock waits either vanish (<10us) or matter (>100us).
const std::vector<std::int64_t>& ContentionWaitBucketsUs();

// Statistics for one named lock site. All mutators are a few relaxed
// striped atomics; safe from any thread. One site may be shared by many
// lock instances (e.g. every decision-cache shard charges
// "decision_cache/shard"), which aggregates them into one line.
class ContentionSite {
 public:
  explicit ContentionSite(std::string name);

  void RecordUncontended() { acquisitions_.Add(1); }
  void RecordWait(std::int64_t wait_us);

  const std::string& name() const { return name_; }
  std::uint64_t acquisitions() const { return acquisitions_.Sum(); }
  std::uint64_t contended() const { return contended_.Sum(); }
  std::int64_t total_wait_us() const { return total_wait_us_.Sum(); }
  std::int64_t max_wait_us() const { return max_wait_us_.MaxValue(); }
  // Count of contended waits <= ContentionWaitBucketsUs()[i]; index
  // size() is the +Inf overflow bucket.
  std::uint64_t wait_bucket(std::size_t i) const;

  void ResetForTest();

 private:
  std::string name_;
  StripedValue<std::uint64_t> acquisitions_;
  StripedValue<std::uint64_t> contended_;
  StripedValue<std::int64_t> total_wait_us_;
  StripedValue<std::int64_t> max_wait_us_;
  std::vector<std::atomic<std::uint64_t>> wait_buckets_;
};

// Name -> site map. Site() interns on first use and returns a stable
// reference (sites are never destroyed, so ProfiledMutex can cache the
// pointer for the process lifetime).
class ContentionRegistry {
 public:
  ContentionSite& Site(std::string_view name);

  struct SiteSnapshot {
    std::string name;
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
    std::int64_t total_wait_us = 0;
    std::int64_t max_wait_us = 0;
  };
  // Ranked by total wait descending, then name ascending (deterministic
  // for equal waits).
  std::vector<SiteSnapshot> Snapshot() const;

  // Prometheus text appended to MetricsRegistry::RenderText() output.
  std::string RenderText() const;
  // /contention body: {"sites":[{...most-waited first...}]}.
  std::string RenderJson() const;

  // Zeroes every site's statistics (sites themselves stay interned so
  // cached pointers remain valid). Test isolation only.
  void ResetForTest();

 private:
  // Guards the site map only — never held while recording statistics,
  // and a plain std::mutex precisely because this registry must not
  // profile itself.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ContentionSite>, std::less<>> sites_;
};

ContentionRegistry& Contention();

// Drop-in std::mutex replacement charging waits to a named site.
// Satisfies Lockable, so std::lock_guard / std::unique_lock /
// std::condition_variable_any work unchanged.
class ProfiledMutex {
 public:
  explicit ProfiledMutex(std::string_view site)
      : site_(&Contention().Site(site)) {}
  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock() { mu_.unlock(); }

 private:
  ContentionSite* site_;
  std::mutex mu_;
};

// Same for std::shared_mutex. Shared and exclusive acquisitions charge
// the one site: the ranking cares about total time threads spend
// blocked at the site, whichever mode blocked them.
class ProfiledSharedMutex {
 public:
  explicit ProfiledSharedMutex(std::string_view site)
      : site_(&Contention().Site(site)) {}
  ProfiledSharedMutex(const ProfiledSharedMutex&) = delete;
  ProfiledSharedMutex& operator=(const ProfiledSharedMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock() { mu_.unlock(); }

  void lock_shared();
  bool try_lock_shared();
  void unlock_shared() { mu_.unlock_shared(); }

 private:
  ContentionSite* site_;
  std::shared_mutex mu_;
};

}  // namespace gridauthz::obs
