// Rolling-window SLO tracking for the authorization service.
//
// /healthz must answer "are we eating the error budget?" — not just the
// instantaneous breaker states. SloTracker keeps a fixed number of
// time buckets covering a sliding window; each authorization outcome
// lands in the bucket owning the current instant (ObsClock), expired
// buckets are lazily reset, and the burn rate is the observed error
// rate divided by the budget the objective leaves (1 - objective). A
// burn rate of 1.0 means the budget is being spent exactly as fast as
// the window replenishes it; above 1.0 the service is on course to
// violate the objective.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/contention.h"

namespace gridauthz::obs {

struct SloOptions {
  double objective = 0.999;                  // target success ratio
  std::int64_t window_us = 300'000'000;      // 5-minute sliding window
  std::size_t buckets = 30;                  // 10-second buckets
};

// Sentinel burn rate reported when the error budget cannot absorb the
// observed errors (objective 1.0 leaves no budget; a near-1.0 objective
// can leave one too small to divide into meaningfully). Finite by
// design: /healthz renders burn_rate with %f, and "inf"/"nan" would
// poison every JSON consumer downstream. Burn rates are clamped to
// [0, kBurnRateCap] in every branch.
inline constexpr double kBurnRateCap = 1e9;

class SloTracker {
 public:
  // An objective outside [0, 1] is meaningless (a >1 target would make
  // the budget negative and the burn rate negative); it is clamped into
  // range at construction.
  explicit SloTracker(SloOptions options = {});

  // Records one authorization outcome at the obs clock's current time.
  // ok = the decision machinery worked (PERMIT and DENY both count as
  // success; only system failures spend error budget).
  void Record(bool ok);

  struct Snapshot {
    std::uint64_t total = 0;
    std::uint64_t errors = 0;
    double error_rate = 0.0;    // errors / total; 0 when idle
    double objective = 0.0;
    double error_budget = 0.0;  // 1 - objective
    // error_rate / error_budget, clamped to [0, kBurnRateCap]; exactly
    // kBurnRateCap when errors arrive with no (or too little) budget.
    double burn_rate = 0.0;
  };
  // State of the current sliding window.
  Snapshot Window() const;

  const SloOptions& options() const { return options_; }

 private:
  struct Bucket {
    std::int64_t epoch = -1;  // bucket index since time 0; -1 = unused
    std::uint64_t total = 0;
    std::uint64_t errors = 0;
  };

  std::int64_t BucketWidthUs() const;

  SloOptions options_;
  mutable ProfiledMutex mu_{"slo/tracker"};
  mutable std::vector<Bucket> ring_;
};

// The process-wide tracker the wire service records every handled
// authorization request into.
SloTracker& AuthzSlo();

}  // namespace gridauthz::obs
