// Fleet observability federation: merging per-node exports into one
// fleet-wide view (DESIGN.md §15).
//
// A fleet broker fronts N gatekeeper nodes, each with its own metrics
// registry, span store, and stage profiler (obs/domain.h). Operators
// should not have to scrape N endpoints and eyeball-diff them; the
// broker federates:
//
//   - /metrics/fleet   — every node's /metrics.json folded into one
//     document: counters summed, gauges summed, histograms merged
//     bucket-wise. The merged section is rendered by a real
//     MetricsRegistry, so it is byte-identical to what a single
//     registry fed the union of all observations would produce.
//     Schema disagreements (histogram bucket bounds, metric kinds)
//     REFUSE to merge with a kReasonFederation-tagged error — a lossy
//     merge would silently misreport the fleet.
//   - /trace/<id>      — spans for one trace gathered from every node
//     plus the broker's own store, stitched into a single tree ordered
//     by start time, each span tagged with the node that recorded it.
//   - /profile         — per-node collapsed stacks summed frame-path-wise.
//
// Everything here is pure data-plumbing over strings: no transport,
// no locking beyond what MetricsRegistry already does. The broker
// (fleet/broker.h) owns the scrape loop and failure handling.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::obs {

// Accumulates /metrics.json documents scraped from fleet nodes and
// renders the merged fleet view. Single-writer: the broker builds one
// federator per scrape, adds every reachable node, then renders.
class MetricsFederator {
 public:
  MetricsFederator();
  ~MetricsFederator();
  MetricsFederator(const MetricsFederator&) = delete;
  MetricsFederator& operator=(const MetricsFederator&) = delete;

  // One node's /metrics.json parsed and internally validated, detached
  // from any federator: the broker caches these across scrapes, keyed
  // on the node's ActivityFingerprint generation (ROADMAP 1e), so an
  // idle node costs a 304 round-trip instead of a render + re-parse.
  // Cross-node schema agreement is NOT checked here — it depends on
  // which other nodes join a given scrape and is re-checked by
  // AddParsed every time.
  struct ParsedNodeDoc;

  // Parses and validates one document in isolation: malformed JSON,
  // internally inconsistent histograms, duplicate series, and
  // name-kind conflicts within the document all fail with a
  // kReasonFederation-tagged error.
  static Expected<std::shared_ptr<const ParsedNodeDoc>> ParseNodeDoc(
      const std::string& node, std::string_view metrics_json);

  // Folds a parsed document into the fleet view. Validation is
  // all-or-nothing: a document that disagrees with the schema already
  // established by earlier nodes (different histogram bucket bounds, a
  // name registered as a different metric kind) leaves the federator
  // untouched and returns an error whose message starts with
  // kReasonFederation.
  Expected<void> AddParsed(const std::string& node,
                           const ParsedNodeDoc& doc);

  // Parse + fold in one step (the uncached path).
  Expected<void> AddNode(const std::string& node,
                         std::string_view metrics_json);

  // Records a node the scrape could not reach; surfaces in RenderJson
  // so a merged document is never mistaken for full fleet coverage.
  void MarkUnreachable(const std::string& node);

  // {"nodes":[...],"unreachable":[...],"fleet":{...},"per_node":[...]}
  // where "fleet" is a RenderJson document of the merged registry and
  // each "per_node" entry re-exports that node's series with a "node"
  // label added.
  std::string RenderJson() const;

  // The merged registry backing the "fleet" section (read access for
  // tests and the broker's health view).
  const MetricsRegistry& fleet() const { return *fleet_; }

 private:
  std::unique_ptr<MetricsRegistry> fleet_;
  // (node, registry holding that node's series re-labelled with node=<id>),
  // in AddNode order.
  std::vector<std::pair<std::string, std::unique_ptr<MetricsRegistry>>>
      per_node_;
  std::vector<std::string> unreachable_;
  // name -> kind (0 counter, 1 gauge, 2 histogram) established by the
  // first document that exported it; later documents must agree.
  std::vector<std::pair<std::string, int>> kinds_;
};

// Parses one node's /trace/<id> document (the JSON array emitted by
// ObsService::HandleTrace) into spans. Tags every parsed span that
// carries no node of its own with `node` — a node that predates domain
// stamping still attributes correctly in the stitched view.
Expected<std::vector<Span>> ParseTraceJson(std::string_view trace_json,
                                           const std::string& node);

// Orders spans for stitching: by start time, then span id as the stable
// tiebreak (concurrent writers can share a start microsecond; the
// ordering must still be deterministic). Duplicate span ids keep the
// first occurrence.
void StitchSpans(std::vector<Span>& spans);

// Renders the stitched trace:
//   {"trace":"t-1","span_count":N,
//    "spans":[ ...flat, stitch-ordered, node-tagged... ],
//    "tree":[ ...roots with nested "children"... ]}
// A span whose parent is absent from the set renders as a root — a
// bounded store may have dropped the parent, and an orphaned subtree is
// more useful than a refused render.
std::string RenderStitchedTrace(const std::string& trace_id,
                                std::vector<Span> spans);

// Sums collapsed-stack profiles ("frame;frame weight\n" lines) from
// many nodes into one document, weights added per identical frame path,
// lines sorted by path. Malformed lines are dropped.
std::string MergeCollapsedStacks(
    const std::vector<std::string>& collapsed_docs);

}  // namespace gridauthz::obs
