#include "core/decision_cache.h"

#include <functional>

#include "common/strings.h"
#include "core/provenance.h"
#include "obs/instrument.h"
#include "obs/metrics.h"

namespace gridauthz::core {

ShardedDecisionCache::ShardedDecisionCache(DecisionCacheOptions options)
    : options_(options) {
  if (options_.shard_count == 0) options_.shard_count = 1;
  shards_.reserve(options_.shard_count);
  for (std::size_t i = 0; i < options_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedDecisionCache::Shard& ShardedDecisionCache::ShardFor(
    const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<Decision> ShardedDecisionCache::Lookup(const std::string& key,
                                                     std::uint64_t generation,
                                                     std::int64_t now_us) {
  Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return std::nullopt;
  // A generation mismatch means the policy changed since this entry was
  // recorded; the entry is dead regardless of TTL.
  if (it->second.generation != generation ||
      now_us - it->second.stored_at_us > options_.ttl_us) {
    shard.lru.erase(it->second.lru_it);
    shard.entries.erase(it);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  // A hit bypasses the evaluator entirely, so the evaluator will never
  // annotate provenance — restore what Record captured instead.
  if (DecisionProvenance* prov = CurrentProvenance()) {
    const CachedProvenance& cached = it->second.provenance;
    prov->evaluator = cached.evaluator;
    prov->matched_statement = cached.matched_statement;
    prov->matched_set = cached.matched_set;
    prov->decision_kind = cached.decision_kind;
    prov->failed_relation = cached.failed_relation;
    prov->policy_source = cached.policy_source;
    prov->policy_generation = it->second.generation;
  }
  return it->second.decision;
}

void ShardedDecisionCache::Record(const std::string& key,
                                  std::uint64_t generation,
                                  std::int64_t now_us,
                                  const Decision& decision) {
  // Capture the evaluation provenance alongside the decision so a later
  // hit can restore it (the statement a cached answer came from must not
  // be forgotten just because the evaluator was skipped).
  CachedProvenance captured;
  if (const DecisionProvenance* prov = CurrentProvenance()) {
    captured.evaluator = prov->evaluator;
    captured.matched_statement = prov->matched_statement;
    captured.matched_set = prov->matched_set;
    captured.decision_kind = prov->decision_kind;
    captured.failed_relation = prov->failed_relation;
    captured.policy_source = prov->policy_source;
  }
  Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    it->second.decision = decision;
    it->second.generation = generation;
    it->second.stored_at_us = now_us;
    it->second.provenance = std::move(captured);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return;
  }
  if (shard.entries.size() >= options_.capacity_per_shard &&
      !shard.lru.empty()) {
    shard.entries.erase(shard.lru.back());
    shard.lru.pop_back();
  }
  shard.lru.push_front(key);
  shard.entries[key] = Entry{decision, generation, now_us,
                             std::move(captured), shard.lru.begin()};
}

void ShardedDecisionCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
  }
}

std::size_t ShardedDecisionCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

CachingPolicySource::CachingPolicySource(std::shared_ptr<PolicySource> inner,
                                         DecisionCacheOptions options,
                                         const Clock* clock)
    : inner_(std::move(inner)), clock_(clock), cache_(options) {}

std::string CachingPolicySource::Key(const AuthorizationRequest& request) {
  // Everything the evaluators can read: identity, action, job binding,
  // the job RSL, VO attributes, and any restriction policy. Fields are
  // newline-joined; the RSL's canonical rendering quotes embedded
  // newlines, so fields cannot bleed into each other.
  std::string key = request.subject + '\n' + request.action + '\n' +
                    request.job_id + '\n' + request.job_owner + '\n' +
                    request.job_rsl.ToString() + '\n' +
                    strings::Join(request.attributes, "\x1f");
  if (request.restriction_policy.has_value()) {
    key += '\n';
    key += *request.restriction_policy;
  }
  return key;
}

Expected<Decision> CachingPolicySource::Authorize(
    const AuthorizationRequest& request) {
  // Fail-closed rule: job starts always re-evaluate. Sources that do not
  // report policy generations (remote backends) are never cached — their
  // policy can change without any local signal.
  const std::uint64_t generation_before = inner_->policy_generation();
  if (!IsManagementAction(request.action) || generation_before == 0) {
    return inner_->Authorize(request);
  }

  const Clock* clock = clock_ != nullptr ? clock_ : obs::ObsClock();
  DecisionProvenance* prov = CurrentProvenance();
  if (prov != nullptr) {
    prov->cache_checked = true;
    prov->cache_generation = generation_before;
  }
  const std::string key = Key(request);
  if (auto cached = cache_.Lookup(key, generation_before,
                                  clock->NowMicros())) {
    hits_.Increment();
    if (prov != nullptr) prov->cache_hit = true;
    return *cached;
  }
  misses_.Increment();

  Expected<Decision> decision = inner_->Authorize(request);
  if (decision.ok()) {
    // Only record if the policy did not change while we evaluated —
    // otherwise the decision's provenance is ambiguous and caching it
    // could resurrect pre-reload policy.
    if (inner_->policy_generation() == generation_before) {
      cache_.Record(key, generation_before, clock->NowMicros(), *decision);
    }
  }
  return decision;
}

}  // namespace gridauthz::core
