#include "core/decision_cache.h"

#include <atomic>

#include "core/provenance.h"
#include "obs/instrument.h"
#include "obs/metrics.h"

namespace gridauthz::core {

namespace {

// Thread-affine shard selection: each thread draws one token at first
// use and sticks to shards_[token % shard_count] for its lifetime.
// Threads therefore never contend on each other's shard lock (up to
// shard_count concurrent threads); the price is that one key may be
// cached in several shards, which is safe because every entry is
// verified by full key and invalidated by generation/TTL on contact —
// nothing relies on a key living in exactly one place.
std::atomic<std::size_t> g_next_thread_token{0};
thread_local const std::size_t t_thread_token =
    g_next_thread_token.fetch_add(1, std::memory_order_relaxed);

std::atomic<std::uint64_t> g_next_cache_instance{1};

constexpr std::size_t kLocalSlots = 256;  // per-thread hit table size

constexpr std::size_t NextPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ShardedDecisionCache::ShardedDecisionCache(DecisionCacheOptions options)
    : options_(options),
      instance_id_(
          g_next_cache_instance.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.shard_count == 0) options_.shard_count = 1;
  // capacity 0 disables the cache outright: an unbounded cache is a
  // memory leak wearing a perf hat, and "no capacity" must not mean
  // "infinite capacity".
  if (options_.capacity_per_shard == 0) return;
  ways_ = options_.capacity_per_shard < 4 ? options_.capacity_per_shard : 4;
  const std::size_t sets =
      NextPow2((options_.capacity_per_shard + ways_ - 1) / ways_);
  set_mask_ = sets - 1;
  shards_.reserve(options_.shard_count);
  for (std::size_t i = 0; i < options_.shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->slots.resize(sets * ways_);
    shard->hands.assign(sets, 0);
    shards_.push_back(std::move(shard));
  }
}

ShardedDecisionCache::~ShardedDecisionCache() = default;

ShardedDecisionCache::Shard& ShardedDecisionCache::ShardFor() {
  return *shards_[t_thread_token % shards_.size()];
}

ShardedDecisionCache::LocalEntry* ShardedDecisionCache::LocalSlot(
    const Hash128& hash) {
  thread_local std::vector<LocalEntry> table(kLocalSlots);
  return &table[hash.lo & (kLocalSlots - 1)];
}

void ShardedDecisionCache::RestoreProvenance(const CachedProvenance& cached,
                                             std::uint64_t generation) {
  // A hit bypasses the evaluator entirely, so the evaluator will never
  // annotate provenance — restore what Record captured instead.
  DecisionProvenance* prov = CurrentProvenance();
  if (prov == nullptr) return;
  prov->evaluator = cached.evaluator;
  prov->matched_statement = cached.matched_statement;
  prov->matched_set = cached.matched_set;
  prov->decision_kind = cached.decision_kind;
  prov->failed_relation = cached.failed_relation;
  prov->policy_source = cached.policy_source;
  if (generation != 0) prov->policy_generation = generation;
}

std::optional<Decision> ShardedDecisionCache::Lookup(const std::string& key,
                                                     std::uint64_t generation,
                                                     std::int64_t now_us,
                                                     CacheMissKind* miss_kind) {
  if (miss_kind != nullptr) *miss_kind = CacheMissKind::kCold;
  if (shards_.empty()) return std::nullopt;
  const Hash128 hash = HashString128(key, options_.hash_seed);

  if (options_.thread_local_fast_path) {
    // Repeat hit on this thread: no lock, no shard touch. Staleness is
    // bounded exactly as for shard entries (generation + TTL), plus the
    // flush sequence so Clear() kills these too.
    LocalEntry* local = LocalSlot(hash);
    if (local->cache_instance == instance_id_ &&
        local->flush_seq == flush_seq_.load(std::memory_order_acquire) &&
        local->hash == hash && local->generation == generation &&
        now_us - local->stored_at_us <= options_.ttl_us &&
        local->key == key) {
      RestoreProvenance(local->provenance, local->generation);
      return local->decision;
    }
  }

  Shard& shard = ShardFor();
  const std::lock_guard<obs::ProfiledMutex> lock(shard.mu);
  const std::size_t set = static_cast<std::size_t>(hash.hi) & set_mask_;
  Entry* base = &shard.slots[set * ways_];
  for (std::size_t i = 0; i < ways_; ++i) {
    Entry& entry = base[i];
    if (!entry.occupied || entry.hash != hash || entry.key != key) continue;
    // A generation mismatch means the policy changed since this entry
    // was recorded; the entry is dead regardless of TTL.
    if (entry.generation != generation) {
      entry.occupied = false;
      entry.key.clear();
      --shard.live;
      invalidated_drops_.fetch_add(1, std::memory_order_relaxed);
      if (miss_kind != nullptr) *miss_kind = CacheMissKind::kInvalidated;
      return std::nullopt;
    }
    if (now_us - entry.stored_at_us > options_.ttl_us) {
      entry.occupied = false;
      entry.key.clear();
      --shard.live;
      expired_drops_.fetch_add(1, std::memory_order_relaxed);
      if (miss_kind != nullptr) *miss_kind = CacheMissKind::kExpired;
      return std::nullopt;
    }
    entry.ref = 1;
    RestoreProvenance(entry.provenance, entry.generation);
    if (options_.thread_local_fast_path) {
      LocalEntry* local = LocalSlot(hash);
      local->cache_instance = instance_id_;
      local->flush_seq = flush_seq_.load(std::memory_order_acquire);
      local->hash = hash;
      local->key = entry.key;
      local->decision = entry.decision;
      local->generation = entry.generation;
      local->stored_at_us = entry.stored_at_us;
      local->provenance = entry.provenance;
    }
    return entry.decision;
  }
  return std::nullopt;
}

void ShardedDecisionCache::Record(const std::string& key,
                                  std::uint64_t generation,
                                  std::int64_t now_us,
                                  const Decision& decision) {
  if (shards_.empty()) return;
  // Capture the evaluation provenance alongside the decision so a later
  // hit can restore it (the statement a cached answer came from must not
  // be forgotten just because the evaluator was skipped).
  CachedProvenance captured;
  if (const DecisionProvenance* prov = CurrentProvenance()) {
    captured.evaluator = prov->evaluator;
    captured.matched_statement = prov->matched_statement;
    captured.matched_set = prov->matched_set;
    captured.decision_kind = prov->decision_kind;
    captured.failed_relation = prov->failed_relation;
    captured.policy_source = prov->policy_source;
  }
  const Hash128 hash = HashString128(key, options_.hash_seed);
  Shard& shard = ShardFor();
  const std::lock_guard<obs::ProfiledMutex> lock(shard.mu);
  const std::size_t set = static_cast<std::size_t>(hash.hi) & set_mask_;
  Entry* base = &shard.slots[set * ways_];

  Entry* target = nullptr;
  for (std::size_t i = 0; i < ways_; ++i) {
    if (base[i].occupied && base[i].hash == hash && base[i].key == key) {
      target = &base[i];  // refresh in place
      target->ref = 1;
      break;
    }
  }
  if (target == nullptr) {
    for (std::size_t i = 0; i < ways_; ++i) {
      if (!base[i].occupied) {
        target = &base[i];
        break;
      }
    }
    if (target == nullptr) {
      // CLOCK: sweep the set clearing reference bits; the first entry
      // found unreferenced since its last sweep is the victim. Bounded
      // by two sweeps — after one full pass every bit is clear.
      std::uint32_t& hand = shard.hands[set];
      for (;;) {
        Entry& candidate = base[hand];
        hand = static_cast<std::uint32_t>((hand + 1) % ways_);
        if (candidate.ref != 0) {
          candidate.ref = 0;
          continue;
        }
        target = &candidate;
        break;
      }
      capacity_evictions_.fetch_add(1, std::memory_order_relaxed);
      --shard.live;
    }
    target->occupied = true;
    target->ref = 0;
    ++shard.live;
  }
  target->hash = hash;
  target->key = key;
  target->decision = decision;
  target->generation = generation;
  target->stored_at_us = now_us;
  target->provenance = std::move(captured);
}

void ShardedDecisionCache::Clear() {
  // Invalidate every per-thread table first so no thread can serve a
  // pre-Clear entry after observing the cleared shards.
  flush_seq_.fetch_add(1, std::memory_order_release);
  for (auto& shard : shards_) {
    const std::lock_guard<obs::ProfiledMutex> lock(shard->mu);
    for (Entry& entry : shard->slots) {
      entry.occupied = false;
      entry.ref = 0;
      entry.key.clear();
    }
    shard->hands.assign(shard->hands.size(), 0);
    shard->live = 0;
  }
}

std::size_t ShardedDecisionCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<obs::ProfiledMutex> lock(shard->mu);
    total += shard->live;
  }
  return total;
}

std::size_t ShardedDecisionCache::capacity() const {
  if (shards_.empty()) return 0;
  return shards_.size() * (set_mask_ + 1) * ways_;
}

CachingPolicySource::CachingPolicySource(std::shared_ptr<PolicySource> inner,
                                         DecisionCacheOptions options,
                                         const Clock* clock)
    : inner_(std::move(inner)), clock_(clock), cache_(options) {}

namespace {

// <len>:<bytes>; — the length prefix, not the content, decides where a
// field ends, so no crafted value can impersonate a field boundary.
void AppendLengthPrefixed(std::string& out, std::string_view field) {
  out += std::to_string(field.size());
  out += ':';
  out.append(field.data(), field.size());
  out += ';';
}

}  // namespace

void CachingPolicySource::AppendKey(const AuthorizationRequest& request,
                                    std::string& out) {
  // Everything the evaluators can read: identity, action, job binding,
  // the job RSL, VO attributes, and any restriction policy. Every field
  // is length-prefixed and the attribute list is count-prefixed; a
  // present-but-empty restriction policy is distinct from an absent one.
  // (The old newline-joined form let ["a\nX"] with no restriction
  // policy collide with ["a"] plus restriction policy "X".)
  AppendLengthPrefixed(out, request.subject);
  AppendLengthPrefixed(out, request.action);
  AppendLengthPrefixed(out, request.job_id);
  AppendLengthPrefixed(out, request.job_owner);
  AppendLengthPrefixed(out, request.job_rsl.ToString());
  out += std::to_string(request.attributes.size());
  out += '#';
  for (const std::string& attribute : request.attributes) {
    AppendLengthPrefixed(out, attribute);
  }
  if (request.restriction_policy.has_value()) {
    out += 'R';
    AppendLengthPrefixed(out, *request.restriction_policy);
  } else {
    out += '-';
  }
}

std::string CachingPolicySource::Key(const AuthorizationRequest& request) {
  std::string key;
  AppendKey(request, key);
  return key;
}

Expected<Decision> CachingPolicySource::Authorize(
    const AuthorizationRequest& request) {
  // Fail-closed rule: job starts always re-evaluate. Sources that do not
  // report policy generations (remote backends) are never cached — their
  // policy can change without any local signal.
  const std::uint64_t generation_before = inner_->policy_generation();
  if (!IsManagementAction(request.action) || generation_before == 0) {
    return inner_->Authorize(request);
  }

  const Clock* clock = clock_ != nullptr ? clock_ : obs::ObsClock();
  DecisionProvenance* prov = CurrentProvenance();
  if (prov != nullptr) {
    prov->cache_checked = true;
    prov->cache_generation = generation_before;
  }
  // One key buffer per thread: key construction is on the hit path, so
  // it must not pay a fresh allocation per request.
  thread_local std::string key_buffer;
  key_buffer.clear();
  AppendKey(request, key_buffer);
  CacheMissKind miss_kind = CacheMissKind::kCold;
  if (auto cached = cache_.Lookup(key_buffer, generation_before,
                                  clock->NowMicros(), &miss_kind)) {
    hits_.Increment();
    if (prov != nullptr) prov->cache_hit = true;
    return *cached;
  }
  misses_.Increment();
  if (miss_kind == CacheMissKind::kExpired) {
    expired_.Increment();
  } else if (miss_kind == CacheMissKind::kInvalidated) {
    invalidated_.Increment();
  }

  Expected<Decision> decision = inner_->Authorize(request);
  if (decision.ok()) {
    // Only record if the policy did not change while we evaluated —
    // otherwise the decision's provenance is ambiguous and caching it
    // could resurrect pre-reload policy.
    if (inner_->policy_generation() == generation_before) {
      cache_.Record(key_buffer, generation_before, clock->NowMicros(),
                    *decision);
    }
  }
  return decision;
}

}  // namespace gridauthz::core
