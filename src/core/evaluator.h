// The policy decision point: evaluates an AuthorizationRequest against a
// PolicyDocument with the paper's semantics (section 5.1):
//
//  * default deny — no applicable permission means the action is denied;
//  * a PERMISSION assertion set covers a request when every relation in
//    the set is satisfied by the request's effective RSL;
//  * a REQUIREMENT assertion set constrains a request when its `action`
//    relations match the request's action; all its other relations must
//    then hold ("the job request is required to contain a jobtag");
//  * relation semantics:
//      (a = v)       request contains `a` and its value is among the
//                    `v`s asserted for `a` in this set ("permitted to
//                    contain a particular value or set of values");
//                    (a = NULL) means `a` must be absent; a value ending
//                    in '*' is a prefix pattern ("(path=/volumes/nfc/*)"
//                    governs a subtree);
//      (a != NULL)   request must contain `a` with a non-empty value;
//      (a != v)      request must not carry value `v` for `a` ("required
//                    not to contain ... with a particular value");
//      (a < n) etc.  numeric comparison; the request must contain a
//                    numeric value satisfying the bound;
//      value `self`  replaced by the requesting user's Grid identity, so
//                    "(jobowner = self)" expresses GT2's stock
//                    only-the-initiator-manages rule in the new language.
#pragma once

#include <string>

#include "core/policy.h"
#include "core/request.h"

namespace gridauthz::core {

// Attributes a strict-mode permission set need not mention: operational
// job attributes plus the synthesized action/jobowner.
bool IsOperationalAttribute(std::string_view attribute);

struct EvaluatorOptions {
  // When true, a permission set only covers a request if it mentions every
  // attribute the request carries (other than operational attributes such
  // as stdout/stderr/arguments and the synthesized action/jobowner).
  // Ablation A1 in DESIGN.md compares open vs strict matching.
  bool strict_attributes = false;
};

class PolicyEvaluator {
 public:
  explicit PolicyEvaluator(PolicyDocument document,
                           EvaluatorOptions options = {});

  const PolicyDocument& document() const { return document_; }

  // Evaluates with full default-deny semantics and explanatory reasons.
  Decision Evaluate(const AuthorizationRequest& request) const;

  // True if `set`'s relations are all satisfied by `effective` for
  // `subject` (used for permission sets and by the backends).
  static bool SetSatisfied(const rsl::Conjunction& set,
                           const rsl::Conjunction& effective,
                           std::string_view subject,
                           std::string* failed_relation = nullptr);

 private:
  Decision EvaluateImpl(const AuthorizationRequest& request) const;

  PolicyDocument document_;
  EvaluatorOptions options_;
};

}  // namespace gridauthz::core
