// Decision provenance: the structured "why" behind every authorization
// answer (DESIGN.md §10). A DecisionProvenance records which policy
// statement produced the outcome, which evaluator ran, whether the
// decision cache or the fault layer's degraded path answered instead,
// how many attempts the resilient decorators spent, and per-stage
// timings — everything an operator needs to replay an incident without
// re-deriving it from log archaeology.
//
// Collection is ambient and strictly optional, mirroring the tracing
// TraceContext idiom: a ProvenanceScope installs a thread-local record,
// instrumentation points annotate it through CurrentProvenance() (a
// nullptr check when no scope is active), and the scope owner reads the
// finished record. The evaluation path never branches on provenance —
// decisions and reason strings are byte-identical with and without a
// scope installed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gridauthz::core {

// One timed stage of the decision path, e.g. {"pdp/evaluate", 240}.
struct ProvenanceStage {
  std::string name;
  std::int64_t duration_us = 0;
};

// One failed attempt inside the resilient retry loop.
struct FailedAttempt {
  int attempt = 0;  // 1-based ordinal
  std::string error;
};

struct DecisionProvenance {
  // ---- core evaluation -------------------------------------------------
  // Which evaluator produced the outcome: "naive" | "compiled" | "".
  std::string evaluator;
  // Subject prefix of the statement that decided, or "default-deny" when
  // no statement covered the request (the paper's default-deny stance).
  std::string matched_statement;
  // 1-based assertion set index for permits; 0 when not applicable.
  int matched_set = 0;
  // "permit" | "deny-requirement" | "deny-no-applicable" |
  // "deny-no-permission" | "" (system failure / not evaluated).
  std::string decision_kind;
  // Relation text of a violated requirement ("" otherwise).
  std::string failed_relation;
  // Generation of the policy snapshot that answered (0 = generation-less).
  std::uint64_t policy_generation = 0;
  // Name of the PolicySource that answered ("" outside a source).
  std::string policy_source;

  // ---- decision cache --------------------------------------------------
  bool cache_checked = false;  // the caching layer considered this request
  bool cache_hit = false;
  std::uint64_t cache_generation = 0;  // generation the lookup keyed on

  // ---- fault layer -----------------------------------------------------
  int attempts = 0;  // attempts the resilient executor ran (0 = no layer)
  std::vector<FailedAttempt> failed_attempts;
  // Breaker state observed at execution ("" = no breaker configured).
  std::string breaker_state;
  // Typed reason tag when the last-good cache served a degraded answer
  // (e.g. "[circuit-open]"); empty on the healthy path.
  std::string degrade_tag;

  // ---- PEP callout -----------------------------------------------------
  std::string pep_action;
  std::string pep_job_id;
  std::string peer_trace_id;  // trace id the requesting peer sent

  // ---- timings ---------------------------------------------------------
  std::vector<ProvenanceStage> stages;

  // True when nothing was annotated (no instrumented layer ran).
  bool empty() const;

  // Multi-line operator-facing rendering (the `explain` output).
  std::string ToText() const;

  // Stages as "name:us,name:us" — the flat encoding the audit JSONL
  // format uses; parsed back by StagesFromString.
  std::string StagesToString() const;
  static std::vector<ProvenanceStage> StagesFromString(std::string_view text);

  // Failed attempts as "1:error\x1f2:error" (unit-separator joined).
  std::string FailedAttemptsToString() const;
  static std::vector<FailedAttempt> FailedAttemptsFromString(
      std::string_view text);
};

// The record installed by the innermost active ProvenanceScope on this
// thread, or nullptr when collection is off. Annotation sites must
// null-check; the check is the entire cost of disabled provenance.
DecisionProvenance* CurrentProvenance();

// RAII: installs a fresh DecisionProvenance as this thread's collection
// target and restores the previous target (if any) on destruction.
// Scopes nest; the innermost wins, so a decorator that wants to reuse an
// outer scope simply checks CurrentProvenance() first.
class ProvenanceScope {
 public:
  ProvenanceScope();
  ~ProvenanceScope();
  ProvenanceScope(const ProvenanceScope&) = delete;
  ProvenanceScope& operator=(const ProvenanceScope&) = delete;

  DecisionProvenance& record() { return record_; }
  const DecisionProvenance& record() const { return record_; }

 private:
  DecisionProvenance record_;
  DecisionProvenance* previous_;
};

// RAII stage timer: appends {name, elapsed} to the current provenance on
// destruction, and doubles as the stage profiler's instrumentation point
// (obs/profile.h) — a sampled stage also folds its self-time into the
// /profile flamegraph. Near-free when no scope is active and the stage
// is unsampled: a null check plus a thread-local depth bump, no clock
// read.
class ProvenanceStageTimer {
 public:
  explicit ProvenanceStageTimer(std::string_view name);
  ~ProvenanceStageTimer();
  ProvenanceStageTimer(const ProvenanceStageTimer&) = delete;
  ProvenanceStageTimer& operator=(const ProvenanceStageTimer&) = delete;

 private:
  DecisionProvenance* target_;  // captured at construction
  std::string_view name_;
  bool profiled_ = false;  // this stage was sampled by the profiler
  std::int64_t start_us_ = 0;
};

}  // namespace gridauthz::core
