#include "core/evaluator.h"

#include <charconv>
#include <optional>
#include <set>

#include "common/strings.h"
#include "core/provenance.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::core {

bool IsKnownAction(std::string_view action) {
  return action == kActionStart || action == kActionCancel ||
         action == kActionInformation || action == kActionSignal;
}

bool IsManagementAction(std::string_view action) {
  return action == kActionCancel || action == kActionInformation ||
         action == kActionSignal;
}

std::string_view to_string(DecisionCode code) {
  switch (code) {
    case DecisionCode::kPermit:
      return "permit";
    case DecisionCode::kDenyNoApplicableStatement:
      return "deny (no applicable statement)";
    case DecisionCode::kDenyNoPermission:
      return "deny (no permission covers request)";
    case DecisionCode::kDenyRequirementViolated:
      return "deny (requirement violated)";
    case DecisionCode::kDenyInvalidObject:
      return "deny (invalid object url)";
  }
  return "?";
}

rsl::Conjunction AuthorizationRequest::ToEffectiveRsl() const {
  rsl::Conjunction effective = job_rsl;
  effective.Remove("action");
  effective.Add("action", rsl::RelOp::kEq, action);
  effective.Remove("jobowner");
  effective.Add("jobowner", rsl::RelOp::kEq,
                job_owner.empty() ? subject : job_owner);
  return effective;
}

namespace {

// Values the request carries for `attribute` (its '=' relations).
std::vector<std::string> RequestValues(const rsl::Conjunction& request,
                                       std::string_view attribute) {
  std::vector<std::string> out;
  for (const rsl::Relation* r : request.FindAll(attribute)) {
    if (r->op != rsl::RelOp::kEq) continue;
    for (const std::string& v : r->values) {
      if (!v.empty()) out.push_back(v);
    }
  }
  return out;
}

std::optional<std::int64_t> ParseInt(std::string_view s) {
  std::int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

// Resolves the paper's `self` pseudo-value to the requesting identity.
std::string ResolveValue(const std::string& value, std::string_view subject) {
  if (value == kSelfValue) return std::string{subject};
  return value;
}

// A policy value ending in '*' is a prefix pattern: "(path =
// /volumes/nfc/*)" permits any path under that directory. Exact values
// match exactly.
bool ValueMatchesPattern(const std::string& actual,
                         const std::string& pattern) {
  if (!pattern.empty() && pattern.back() == '*') {
    return actual.compare(0, pattern.size() - 1, pattern, 0,
                          pattern.size() - 1) == 0;
  }
  return actual == pattern;
}

bool NumericSatisfied(rsl::RelOp op, std::int64_t request_value,
                      std::int64_t bound) {
  switch (op) {
    case rsl::RelOp::kLt:
      return request_value < bound;
    case rsl::RelOp::kGt:
      return request_value > bound;
    case rsl::RelOp::kLe:
      return request_value <= bound;
    case rsl::RelOp::kGe:
      return request_value >= bound;
    default:
      return false;
  }
}

}  // namespace

bool PolicyEvaluator::SetSatisfied(const rsl::Conjunction& set,
                                   const rsl::Conjunction& effective,
                                   std::string_view subject,
                                   std::string* failed_relation) {
  auto fail = [&](const rsl::Relation& r) {
    if (failed_relation != nullptr) *failed_relation = r.ToString();
    return false;
  };

  // '=' relations on the same attribute within one set are alternatives:
  // "(executable = test1)(executable = test2)" permits either. Gather the
  // allowed-value sets first.
  std::set<std::string> eq_attributes;
  for (const rsl::Relation& r : set.relations()) {
    if (r.op == rsl::RelOp::kEq) eq_attributes.insert(r.attribute);
  }

  for (const std::string& attribute : eq_attributes) {
    bool allows_absent = false;
    std::vector<std::string> allowed;  // exact values or '*'-patterns
    const rsl::Relation* representative = nullptr;
    for (const rsl::Relation* r : set.FindAll(attribute)) {
      if (r->op != rsl::RelOp::kEq) continue;
      representative = r;
      for (const std::string& v : r->values) {
        if (v == kNullValue) {
          allows_absent = true;
        } else {
          allowed.push_back(ResolveValue(v, subject));
        }
      }
    }
    std::vector<std::string> actual = RequestValues(effective, attribute);
    if (actual.empty()) {
      if (!allows_absent) return fail(*representative);
      continue;
    }
    for (const std::string& v : actual) {
      bool matched = false;
      for (const std::string& pattern : allowed) {
        if (ValueMatchesPattern(v, pattern)) {
          matched = true;
          break;
        }
      }
      if (!matched) return fail(*representative);
    }
  }

  for (const rsl::Relation& r : set.relations()) {
    std::vector<std::string> actual = RequestValues(effective, r.attribute);
    switch (r.op) {
      case rsl::RelOp::kEq:
        break;  // handled above
      case rsl::RelOp::kNeq: {
        for (const std::string& raw : r.values) {
          if (raw == kNullValue) {
            // "(jobtag != NULL)": the attribute is required to be present
            // with a non-empty value.
            if (actual.empty()) return fail(r);
          } else {
            const std::string forbidden = ResolveValue(raw, subject);
            for (const std::string& v : actual) {
              if (v == forbidden) return fail(r);
            }
          }
        }
        break;
      }
      case rsl::RelOp::kLt:
      case rsl::RelOp::kGt:
      case rsl::RelOp::kLe:
      case rsl::RelOp::kGe: {
        if (actual.empty()) return fail(r);
        auto bound_value = r.single_value();
        if (!bound_value) return fail(r);
        auto bound = ParseInt(*bound_value);
        if (!bound) return fail(r);
        for (const std::string& v : actual) {
          auto request_value = ParseInt(v);
          if (!request_value ||
              !NumericSatisfied(r.op, *request_value, *bound)) {
            return fail(r);
          }
        }
        break;
      }
    }
  }
  return true;
}

PolicyEvaluator::PolicyEvaluator(PolicyDocument document,
                                 EvaluatorOptions options)
    : document_(std::move(document)), options_(options) {}

bool IsOperationalAttribute(std::string_view attribute) {
  static const std::set<std::string, std::less<>> kOperational = {
      "action",  "jobowner", "stdout",      "stderr",   "stdin",
      "arguments", "environment", "jobtype", "grammyjob", "savestate",
  };
  return kOperational.contains(attribute);
}

namespace {

// True when the set's `action` relations accept the request (requirement
// applicability). A set with no action relation applies to every action.
bool ActionPartMatches(const rsl::Conjunction& set,
                       const rsl::Conjunction& effective,
                       std::string_view subject) {
  std::vector<const rsl::Relation*> action_relations = set.FindAll("action");
  if (action_relations.empty()) return true;
  rsl::Conjunction action_only;
  for (const rsl::Relation* r : action_relations) action_only.Add(*r);
  return PolicyEvaluator::SetSatisfied(action_only, effective, subject);
}

}  // namespace

Decision PolicyEvaluator::Evaluate(const AuthorizationRequest& request) const {
  obs::ScopedSpan span("pdp/evaluate");
  ProvenanceStageTimer stage("pdp/evaluate");
  Decision decision = EvaluateImpl(request);
  obs::Metrics()
      .GetCounter("pdp_evaluations_total",
                  {{"outcome", decision.permitted() ? "permit" : "deny"}})
      .Increment();
  return decision;
}

Decision PolicyEvaluator::EvaluateImpl(
    const AuthorizationRequest& request) const {
  const rsl::Conjunction effective = request.ToEffectiveRsl();
  // Provenance: name the statement (or default-deny) behind the outcome.
  // Annotation only — decisions and reason strings are unchanged.
  DecisionProvenance* prov = CurrentProvenance();
  auto note = [prov](std::string_view kind, std::string_view statement,
                     int set, std::string_view failed = {}) {
    if (prov == nullptr) return;
    prov->evaluator = "naive";
    prov->decision_kind = std::string{kind};
    prov->matched_statement = std::string{statement};
    prov->matched_set = set;
    prov->failed_relation = std::string{failed};
  };
  const std::vector<const PolicyStatement*> applicable =
      document_.ApplicableTo(request.subject);
  if (applicable.empty()) {
    note("deny-no-applicable", "default-deny", 0);
    return Decision::Deny(DecisionCode::kDenyNoApplicableStatement,
                          "no policy statement applies to " + request.subject);
  }

  // Requirements first: a violated requirement denies regardless of
  // permissions (deny-overrides within the document).
  for (const PolicyStatement* statement : applicable) {
    if (statement->kind != StatementKind::kRequirement) continue;
    for (const rsl::Conjunction& set : statement->assertion_sets) {
      if (!ActionPartMatches(set, effective, request.subject)) continue;
      std::string failed;
      if (!SetSatisfied(set, effective, request.subject, &failed)) {
        note("deny-requirement", statement->subject_prefix, 0, failed);
        return Decision::Deny(
            DecisionCode::kDenyRequirementViolated,
            "requirement for '" + statement->subject_prefix +
                "' violated at relation " + failed);
      }
    }
  }

  // Then permissions: at least one assertion set must cover the request.
  bool saw_permission_statement = false;
  for (const PolicyStatement* statement : applicable) {
    if (statement->kind != StatementKind::kPermission) continue;
    saw_permission_statement = true;
    int set_index = 0;
    for (const rsl::Conjunction& set : statement->assertion_sets) {
      ++set_index;
      if (options_.strict_attributes) {
        bool all_mentioned = true;
        for (const rsl::Relation& r : effective.relations()) {
          if (!IsOperationalAttribute(r.attribute) && !set.Has(r.attribute)) {
            all_mentioned = false;
            break;
          }
        }
        if (!all_mentioned) continue;
      }
      if (SetSatisfied(set, effective, request.subject)) {
        note("permit", statement->subject_prefix, set_index);
        return Decision::Permit("permitted by statement for '" +
                                statement->subject_prefix + "', assertion set " +
                                std::to_string(set_index));
      }
    }
  }

  if (!saw_permission_statement) {
    note("deny-no-applicable", "default-deny", 0);
    return Decision::Deny(DecisionCode::kDenyNoApplicableStatement,
                          "no permission statement applies to " +
                              request.subject);
  }
  note("deny-no-permission", "default-deny", 0);
  return Decision::Deny(DecisionCode::kDenyNoPermission,
                        "no assertion set covers action '" + request.action +
                            "' for " + request.subject);
}

}  // namespace gridauthz::core
