// Policy sources and policy combination.
//
// Requirement 1 of the paper: "the policy enforcement mechanism on the
// resource needs to be able to combine policies from two different
// sources: the resource owner and the VO". A PolicySource produces a
// Decision for a request (or an authorization-system failure); the
// CombiningPdp requires every configured source to permit (deny
// overrides), mirroring the prototype's evaluation against "both local
// and VO policies by different policy evaluation points".
//
// Concurrency: Authorize() runs on request threads while Replace() /
// Reload() run on update threads. The in-memory and file-backed sources
// publish an immutable CompiledPolicyDocument snapshot through an
// EpochSnapshotPtr (core/epoch.h): readers pin the current snapshot
// lock-free via a per-thread epoch slot and then work on a document no
// writer will ever mutate; updaters build the replacement off to the
// side, swap it in, and the old snapshot is retired only after every
// pinned reader has left the epoch. Each successful swap bumps the
// source's policy generation, which decision caches use for
// invalidation (DESIGN.md §9, §14).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/compiled.h"
#include "core/epoch.h"
#include "core/evaluator.h"
#include "obs/instrument.h"

namespace gridauthz::core {

class PolicySource {
 public:
  virtual ~PolicySource() = default;

  // Identifies the source in decisions and logs ("local", "vo", "cas").
  virtual const std::string& name() const = 0;

  // Evaluates the request. An Error return means the authorization
  // *system* failed (unreadable policy, backend unreachable) — distinct
  // from a deny, per the paper's extended GRAM error codes.
  virtual Expected<Decision> Authorize(const AuthorizationRequest& request) = 0;

  // Monotonic counter bumped on every successful policy change. Decision
  // caches key entries on it so a reload invalidates them (a cached
  // decision must never outlive the policy that produced it). Sources
  // whose policy can change invisibly (remote backends) keep the default
  // 0, which CachingPolicySource treats as "not cacheable".
  virtual std::uint64_t policy_generation() const { return 0; }
};

// Policy held in memory; supports atomic replacement, which is how a VO
// pushes dynamic policy updates ("policies may be dynamic and change over
// time as critical deadlines approach").
class StaticPolicySource final : public PolicySource {
 public:
  StaticPolicySource(std::string name, PolicyDocument document,
                     EvaluatorOptions options = {});

  const std::string& name() const override { return name_; }
  Expected<Decision> Authorize(const AuthorizationRequest& request) override;

  // Replaces the policy document (dynamic policy update). Safe to call
  // while other threads Authorize(): in-flight requests finish on the
  // snapshot they loaded; later requests see the new policy.
  void Replace(PolicyDocument document);

  // The current compiled policy snapshot (never null).
  std::shared_ptr<const CompiledPolicyDocument> snapshot() const {
    return snapshot_.load();
  }
  // Copy of the current document (the live one may be swapped out at any
  // moment, so no reference is returned).
  PolicyDocument document() const { return snapshot()->document(); }

  std::uint64_t policy_generation() const override {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  std::string name_;
  obs::AuthzInstruments instruments_{name_};  // after name_: init order
  EvaluatorOptions options_;
  EpochSnapshotPtr<CompiledPolicyDocument> snapshot_;
  std::atomic<std::uint64_t> generation_{1};
};

// Policy loaded from a plain text file, as in the paper's prototype
// ("we experimented with policies written in plain text files on the
// resource"). Reload() re-reads the file, enabling dynamic edits.
class FilePolicySource final : public PolicySource {
 public:
  FilePolicySource(std::string name, std::string path,
                   EvaluatorOptions options = {});

  const std::string& name() const override { return name_; }

  // Loads (or reloads) the file. A failed reload keeps the last
  // successfully loaded policy in force (a half-written policy edit must
  // not take the source down); the failure is remembered, logged, and
  // counted as policy_reload_failures_total{source}. Only when no load
  // has ever succeeded does Authorize() fail closed. Concurrent Reload()
  // calls are serialized; Authorize() never blocks on a reload.
  Expected<void> Reload();

  Expected<Decision> Authorize(const AuthorizationRequest& request) override;

  // The most recent reload failure; empty after a successful (re)load.
  // By value: the state it reads from may be swapped by a concurrent
  // Reload().
  std::string last_reload_error() const { return state_.load()->load_error; }

  std::uint64_t policy_generation() const override {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  // One immutable published state: the compiled policy in force (null
  // until the first successful load) and the most recent load error.
  struct State {
    std::shared_ptr<const CompiledPolicyDocument> compiled;
    std::string load_error;
  };

  std::string name_;
  obs::AuthzInstruments instruments_{name_};  // after name_: init order
  std::string path_;
  EvaluatorOptions options_;
  std::mutex reload_mu_;  // serializes Reload(); readers never take it
  EpochSnapshotPtr<State> state_;
  std::atomic<std::uint64_t> generation_{0};
};

// Requires a permit from every source; the first deny (or system failure)
// wins. With a local source and a VO source this is exactly the paper's
// two-PEP arrangement.
class CombiningPdp final : public PolicySource {
 public:
  explicit CombiningPdp(std::string name = "combined");

  void AddSource(std::shared_ptr<PolicySource> source);
  std::size_t source_count() const { return sources_.size(); }

  const std::string& name() const override { return name_; }

  // Permit iff every source permits. A deny reports which source denied;
  // no sources configured is a system failure (fail closed). Honors the
  // ambient deadline (common/deadline.h): once the budget is spent the
  // remaining sources are not consulted and the result is an
  // authorization system failure tagged [deadline-exceeded] — a partial
  // evaluation never yields a permit.
  Expected<Decision> Authorize(const AuthorizationRequest& request) override;

  // Sum of the member sources' generations: any member's policy change
  // changes the combined generation.
  std::uint64_t policy_generation() const override;

 private:
  std::string name_;
  obs::AuthzInstruments instruments_{name_};  // after name_: init order
  std::vector<std::shared_ptr<PolicySource>> sources_;
};

// Outcome label for the obs decision counters: "permit", "deny", or
// "error" (authorization system failure).
std::string_view MetricOutcome(const Expected<Decision>& decision);

// The stock GT2 authorization model expressed in the paper's language:
// any mapped user may start jobs, and only the job owner may manage them
// ("the Grid identity of the user making the request must match the Grid
// identity of the user who initiated the job"). Used as the baseline in
// benches and tests.
PolicyDocument MakeGt2DefaultDocument();

}  // namespace gridauthz::core
