// Policy sources and policy combination.
//
// Requirement 1 of the paper: "the policy enforcement mechanism on the
// resource needs to be able to combine policies from two different
// sources: the resource owner and the VO". A PolicySource produces a
// Decision for a request (or an authorization-system failure); the
// CombiningPdp requires every configured source to permit (deny
// overrides), mirroring the prototype's evaluation against "both local
// and VO policies by different policy evaluation points".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/evaluator.h"

namespace gridauthz::core {

class PolicySource {
 public:
  virtual ~PolicySource() = default;

  // Identifies the source in decisions and logs ("local", "vo", "cas").
  virtual const std::string& name() const = 0;

  // Evaluates the request. An Error return means the authorization
  // *system* failed (unreadable policy, backend unreachable) — distinct
  // from a deny, per the paper's extended GRAM error codes.
  virtual Expected<Decision> Authorize(const AuthorizationRequest& request) = 0;
};

// Policy held in memory; supports atomic replacement, which is how a VO
// pushes dynamic policy updates ("policies may be dynamic and change over
// time as critical deadlines approach").
class StaticPolicySource final : public PolicySource {
 public:
  StaticPolicySource(std::string name, PolicyDocument document,
                     EvaluatorOptions options = {});

  const std::string& name() const override { return name_; }
  Expected<Decision> Authorize(const AuthorizationRequest& request) override;

  // Replaces the policy document (dynamic policy update).
  void Replace(PolicyDocument document);
  const PolicyDocument& document() const { return evaluator_.document(); }

 private:
  std::string name_;
  EvaluatorOptions options_;
  PolicyEvaluator evaluator_;
};

// Policy loaded from a plain text file, as in the paper's prototype
// ("we experimented with policies written in plain text files on the
// resource"). Reload() re-reads the file, enabling dynamic edits.
class FilePolicySource final : public PolicySource {
 public:
  FilePolicySource(std::string name, std::string path,
                   EvaluatorOptions options = {});

  const std::string& name() const override { return name_; }

  // Loads (or reloads) the file. A failed reload keeps the last
  // successfully loaded policy in force (a half-written policy edit must
  // not take the source down); the failure is remembered, logged, and
  // counted as policy_reload_failures_total{source}. Only when no load
  // has ever succeeded does Authorize() fail closed.
  Expected<void> Reload();

  Expected<Decision> Authorize(const AuthorizationRequest& request) override;

  // The most recent reload failure; empty after a successful (re)load.
  const std::string& last_reload_error() const { return load_error_; }

 private:
  std::string name_;
  std::string path_;
  EvaluatorOptions options_;
  std::unique_ptr<PolicyEvaluator> evaluator_;  // null until loaded
  std::string load_error_;
};

// Requires a permit from every source; the first deny (or system failure)
// wins. With a local source and a VO source this is exactly the paper's
// two-PEP arrangement.
class CombiningPdp final : public PolicySource {
 public:
  explicit CombiningPdp(std::string name = "combined");

  void AddSource(std::shared_ptr<PolicySource> source);
  std::size_t source_count() const { return sources_.size(); }

  const std::string& name() const override { return name_; }

  // Permit iff every source permits. A deny reports which source denied;
  // no sources configured is a system failure (fail closed). Honors the
  // ambient deadline (common/deadline.h): once the budget is spent the
  // remaining sources are not consulted and the result is an
  // authorization system failure tagged [deadline-exceeded] — a partial
  // evaluation never yields a permit.
  Expected<Decision> Authorize(const AuthorizationRequest& request) override;

 private:
  std::string name_;
  std::vector<std::shared_ptr<PolicySource>> sources_;
};

// Outcome label for the obs decision counters: "permit", "deny", or
// "error" (authorization system failure).
std::string_view MetricOutcome(const Expected<Decision>& decision);

// The stock GT2 authorization model expressed in the paper's language:
// any mapped user may start jobs, and only the job owner may manage them
// ("the Grid identity of the user making the request must match the Grid
// identity of the user who initiated the job"). Used as the baseline in
// benches and tests.
PolicyDocument MakeGt2DefaultDocument();

}  // namespace gridauthz::core
