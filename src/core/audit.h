// Authorization audit trail. The paper notes that workarounds like shared
// accounts introduce "many security, audit, accounting and other
// problems" (section 4.3); a PEP-centered design fixes this by making
// every decision observable at one point. AuditingPolicySource decorates
// any PolicySource and records every request, decision, and system
// failure with the requesting Grid identity — accountability that
// survives even when jobs share a community account (CAS).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/provenance.h"
#include "core/source.h"

namespace gridauthz::core {

class AuditSink;  // audit_sink.h — durable JSONL persistence

enum class AuditOutcome { kPermit, kDeny, kSystemFailure };

std::string_view to_string(AuditOutcome outcome);
// Inverse of to_string; fails on unknown text.
Expected<AuditOutcome> AuditOutcomeFromString(std::string_view text);

struct AuditRecord {
  TimePoint time = 0;
  std::string source;   // which PolicySource decided
  std::string subject;  // requesting Grid identity
  std::string action;
  std::string job_owner;
  std::string job_id;
  std::string rsl;
  AuditOutcome outcome = AuditOutcome::kDeny;
  std::string reason;
  // Trace id of the wire request that caused this decision ("" when the
  // decision was made outside a trace); joins the record to its spans
  // and log lines.
  std::string trace_id;
  // >0 marks a per-attempt record: the Nth attempt of a retried call
  // failed transiently before the final outcome. The final record of the
  // same call keeps 0, so incident review sees every transient failure
  // without double-counting decisions.
  int retry_attempt = 0;
  // Structured "why" collected during evaluation (DESIGN.md §10);
  // meaningful only when has_provenance is true.
  DecisionProvenance provenance;
  bool has_provenance = false;

  // One-line rendering, suitable for an append-only log file.
  std::string ToLine() const;
};

// Bounded in-memory audit log with simple filtering. Thread-safe: one
// log is shared across every PEP of a site. When full, the oldest record
// is overwritten and the loss is counted (size() stays at capacity) —
// also exported as the audit_records_dropped_total metric so operators
// see the log wrap before relying on it for an incident review.
class AuditLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  explicit AuditLog(std::size_t capacity = kDefaultCapacity);

  void Append(AuditRecord record);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  // Records overwritten because the ring was full.
  std::uint64_t dropped() const;

  // Snapshot of the retained records, oldest first.
  std::vector<AuditRecord> records() const;

  // Records matching every provided filter (unset = wildcard).
  std::vector<AuditRecord> Query(
      const std::optional<std::string>& subject = std::nullopt,
      const std::optional<std::string>& action = std::nullopt,
      const std::optional<AuditOutcome>& outcome = std::nullopt) const;

  // Denials and system failures for an identity — the review an operator
  // runs after an incident.
  std::vector<AuditRecord> FailuresFor(const std::string& subject) const;

  // Full log rendered one record per line.
  std::string ToText() const;

 private:
  // Calls `fn` on each retained record, oldest first, under the lock.
  template <typename Fn>
  void ForEach(Fn&& fn) const;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<AuditRecord> ring_;
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::uint64_t dropped_ = 0;
};

struct AuditingOptions {
  // Durable sink every record is also submitted to (nullptr = ring only).
  std::shared_ptr<AuditSink> sink;
  // Collect decision provenance for each audited call (installing a
  // ProvenanceScope when the caller has not). Off = PR-1 behavior.
  bool collect_provenance = true;
  // Emit one kSystemFailure record per failed attempt of a retried call
  // (tagged retry_attempt), in addition to the final record.
  bool per_attempt_records = true;
};

// Decorator: forwards to `inner` and records the outcome — with decision
// provenance attached and, when the inner chain retried, one record per
// failed attempt so transient failures survive into incident review.
class AuditingPolicySource final : public PolicySource {
 public:
  AuditingPolicySource(std::shared_ptr<PolicySource> inner,
                       std::shared_ptr<AuditLog> log, const Clock* clock,
                       AuditingOptions options = {});

  const std::string& name() const override { return inner_->name(); }
  Expected<Decision> Authorize(const AuthorizationRequest& request) override;
  std::uint64_t policy_generation() const override {
    return inner_->policy_generation();
  }

 private:
  void Emit(AuditRecord record);

  std::shared_ptr<PolicySource> inner_;
  std::shared_ptr<AuditLog> log_;
  const Clock* clock_;
  AuditingOptions options_;
};

}  // namespace gridauthz::core
