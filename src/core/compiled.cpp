#include "core/compiled.h"

#include <algorithm>
#include <charconv>

#include "common/strings.h"
#include "core/provenance.h"
#include "gsi/dn.h"
#include "obs/instrument.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::core {

namespace {

// These mirror the helpers in evaluator.cpp; the property test pins the
// two paths to identical decisions.
std::optional<std::int64_t> ParseInt(std::string_view s) {
  std::int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

bool ValueMatchesPattern(std::string_view actual, std::string_view pattern) {
  if (!pattern.empty() && pattern.back() == '*') {
    const std::size_t n = pattern.size() - 1;
    return actual.size() >= n && actual.substr(0, n) == pattern.substr(0, n);
  }
  return actual == pattern;
}

bool NumericSatisfied(rsl::RelOp op, std::int64_t request_value,
                      std::int64_t bound) {
  switch (op) {
    case rsl::RelOp::kLt:
      return request_value < bound;
    case rsl::RelOp::kGt:
      return request_value > bound;
    case rsl::RelOp::kLe:
      return request_value <= bound;
    case rsl::RelOp::kGe:
      return request_value >= bound;
    default:
      return false;
  }
}

// `self` resolves to the requesting identity (evaluator.cpp's
// ResolveValue), applied lazily so compiled tables stay request-free.
std::string_view Resolve(const std::string& value, std::string_view subject) {
  if (value == kSelfValue) return subject;
  return value;
}

}  // namespace

// The '=' values the request's effective RSL carries, indexed by
// attribute: one flat (attribute, value) table sorted by attribute,
// built once per Evaluate and shared by every assertion set. Views
// point into the effective relations, which outlive the index; the
// table itself is bump-allocated from the request arena (DESIGN.md
// §14), so building it costs no allocator round trip on the serving
// path.
class CompiledPolicyDocument::RequestIndex {
 public:
  explicit RequestIndex(const ArenaVector<const rsl::Relation*>& effective) {
    for (const rsl::Relation* r : effective) {
      if (r->op != rsl::RelOp::kEq) continue;
      for (const std::string& v : r->values) {
        if (!v.empty()) pairs_.emplace_back(r->attribute, v);
      }
    }
    std::stable_sort(pairs_.begin(), pairs_.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }

  using Iter =
      ArenaVector<std::pair<std::string_view, std::string_view>>::const_iterator;

  // The half-open run of values for `attribute` (empty when absent —
  // RequestValues' "attribute not present" case).
  std::pair<Iter, Iter> Values(std::string_view attribute) const {
    return std::equal_range(
        pairs_.begin(), pairs_.end(),
        std::pair<std::string_view, std::string_view>{attribute, {}},
        [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  bool Empty(std::string_view attribute) const {
    auto [lo, hi] = Values(attribute);
    return lo == hi;
  }

 private:
  ArenaVector<std::pair<std::string_view, std::string_view>> pairs_;
};

CompiledPolicyDocument::SetBody CompiledPolicyDocument::CompileBody(
    const std::vector<const rsl::Relation*>& relations) {
  SetBody body;
  // Gather '=' alternatives per attribute, sorted — the same order the
  // naive path gets from its std::set of attribute names. The
  // representative (for failure messages) is the LAST '=' relation
  // naming the attribute, as in SetSatisfied's gather loop.
  for (const rsl::Relation* r : relations) {
    if (r->op != rsl::RelOp::kEq) continue;
    auto it = std::find_if(body.eq.begin(), body.eq.end(),
                           [&](const EqEntry& e) {
                             return e.attribute == r->attribute;
                           });
    if (it == body.eq.end()) {
      body.eq.push_back(EqEntry{r->attribute, false, {}, {}});
      it = std::prev(body.eq.end());
    }
    it->representative_text = r->ToString();
    for (const std::string& v : r->values) {
      if (v == kNullValue) {
        it->allows_absent = true;
      } else {
        it->allowed.push_back(v);
      }
    }
  }
  std::sort(body.eq.begin(), body.eq.end(),
            [](const EqEntry& a, const EqEntry& b) {
              return a.attribute < b.attribute;
            });

  for (const rsl::Relation* r : relations) {
    if (r->op == rsl::RelOp::kEq) continue;
    CompiledRelation compiled;
    compiled.attribute = r->attribute;
    compiled.op = r->op;
    compiled.values = r->values;
    compiled.text = r->ToString();
    if (r->op != rsl::RelOp::kNeq) {
      if (auto bound_value = r->single_value()) {
        compiled.bound = ParseInt(*bound_value);
      }
    }
    body.others.push_back(std::move(compiled));
  }
  return body;
}

CompiledPolicyDocument::CompiledSet CompiledPolicyDocument::CompileSet(
    const rsl::Conjunction& set) {
  CompiledSet compiled;
  std::vector<const rsl::Relation*> all;
  all.reserve(set.relations().size());
  for (const rsl::Relation& r : set.relations()) all.push_back(&r);
  compiled.body = CompileBody(all);

  for (const rsl::Relation& r : set.relations()) {
    if (std::find(compiled.mentioned.begin(), compiled.mentioned.end(),
                  r.attribute) == compiled.mentioned.end()) {
      compiled.mentioned.push_back(r.attribute);
    }
  }
  std::sort(compiled.mentioned.begin(), compiled.mentioned.end());

  std::vector<const rsl::Relation*> action_relations = set.FindAll("action");
  compiled.applies_to_all_actions = action_relations.empty();
  if (!compiled.applies_to_all_actions) {
    compiled.action_part = CompileBody(action_relations);
  }
  return compiled;
}

CompiledPolicyDocument::TrieNode* CompiledPolicyDocument::Child(
    TrieNode* node, const std::string& key) {
  for (auto& [k, child] : node->children) {
    if (k == key) return child.get();
  }
  node->children.emplace_back(key, std::make_unique<TrieNode>());
  return node->children.back().second.get();
}

const CompiledPolicyDocument::TrieNode* CompiledPolicyDocument::FindChild(
    const TrieNode* node, std::string_view key) const {
  auto it = std::lower_bound(
      node->children.begin(), node->children.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  if (it == node->children.end() || it->first != key) return nullptr;
  return it->second.get();
}

CompiledPolicyDocument::CompiledPolicyDocument(PolicyDocument document,
                                               EvaluatorOptions options)
    : document_(std::move(document)), options_(options) {
  compiled_.reserve(document_.size());
  for (std::size_t i = 0; i < document_.size(); ++i) {
    const PolicyStatement& statement = document_.statements()[i];
    CompiledStatement compiled;
    compiled.statement = &statement;
    compiled.sets.reserve(statement.assertion_sets.size());
    for (const rsl::Conjunction& set : statement.assertion_sets) {
      compiled.sets.push_back(CompileSet(set));
    }
    compiled_.push_back(std::move(compiled));

    // Index by parsed subject components. An unparseable subject matches
    // nothing (same as AppliesTo) and simply stays out of the trie.
    const gsi::DnPrefix* prefix = nullptr;
    std::optional<gsi::DnPrefix> local;
    if (statement.parsed_subject.has_value()) {
      prefix = &*statement.parsed_subject;
    } else if (auto parsed = gsi::DnPrefix::Parse(statement.subject_prefix);
               parsed.ok()) {
      local = std::move(parsed).value();
      prefix = &*local;
    }
    if (prefix == nullptr) continue;
    TrieNode* node = &root_;
    for (const gsi::DnComponent& c : prefix->components()) {
      node = Child(node, c.type + '=' + c.value);
    }
    node->statements.push_back(i);
  }

  // Path scopes: a second subject trie (scope statement indices) plus
  // the path-segment trie over every entry's absolute prefix.
  const auto& scopes = document_.path_scopes();
  for (std::size_t i = 0; i < scopes.size(); ++i) {
    const PathScopeStatement& scope = scopes[i];
    const gsi::DnPrefix* prefix = nullptr;
    std::optional<gsi::DnPrefix> local;
    if (scope.parsed_subject.has_value()) {
      prefix = &*scope.parsed_subject;
    } else if (auto parsed = gsi::DnPrefix::Parse(scope.subject_prefix);
               parsed.ok()) {
      local = std::move(parsed).value();
      prefix = &*local;
    }
    if (prefix != nullptr) {
      TrieNode* node = &scope_root_;
      for (const gsi::DnComponent& c : prefix->components()) {
        node = Child(node, c.type + '=' + c.value);
      }
      node->statements.push_back(i);
    }

    for (const ObjectEntry& entry : scope.entries) {
      const std::string absolute = scope.base_path + entry.path;
      PathTrieNode* node = PathChild(&path_root_, scope.origin);
      std::size_t pos = 0;
      while (pos < absolute.size()) {
        std::size_t next = absolute.find('/', pos + 1);
        if (next == std::string::npos) next = absolute.size();
        node = PathChild(node, std::string_view{absolute}.substr(pos + 1,
                                                                 next - pos - 1));
        pos = next;
      }
      node->entries.emplace_back(i, entry.rights);
    }
  }

  // Sort children so lookups can binary-search.
  std::vector<TrieNode*> pending{&root_, &scope_root_};
  while (!pending.empty()) {
    TrieNode* node = pending.back();
    pending.pop_back();
    std::sort(node->children.begin(), node->children.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [k, child] : node->children) pending.push_back(child.get());
  }
  std::vector<PathTrieNode*> path_pending{&path_root_};
  while (!path_pending.empty()) {
    PathTrieNode* node = path_pending.back();
    path_pending.pop_back();
    std::sort(node->children.begin(), node->children.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Entry lists stay in insertion order == ascending statement index,
    // so the first element is the doc-order tie-breaker.
    for (auto& [k, child] : node->children) path_pending.push_back(child.get());
  }

  obs::Metrics().GetCounter(obs::kMetricPolicyCompiles).Increment();
  obs::Metrics()
      .GetGauge(obs::kMetricCompiledStatements)
      .Set(static_cast<std::int64_t>(document_.size()));
}

ArenaVector<std::size_t> CompiledPolicyDocument::Lookup(
    std::string_view identity) const {
  ArenaVector<std::size_t> out;
  const std::string_view trimmed = strings::Trim(identity);
  const bool slash_rooted = !trimmed.empty() && trimmed.front() == '/';
  // Root "/" statements apply to any '/'-rooted identity, parseable or
  // not (DnPrefix::MatchesText) — the paper's catch-all statement.
  if (slash_rooted) {
    out.insert(out.end(), root_.statements.begin(), root_.statements.end());
  }
  auto parsed = gsi::DistinguishedName::Parse(trimmed);
  if (parsed.ok()) {
    const TrieNode* node = &root_;
    std::string key;
    for (const gsi::DnComponent& c : parsed->components()) {
      key.assign(c.type);
      key += '=';
      key += c.value;
      node = FindChild(node, key);
      if (node == nullptr) break;
      out.insert(out.end(), node->statements.begin(), node->statements.end());
    }
  }
  std::sort(out.begin(), out.end());  // restore document order
  return out;
}

CompiledPolicyDocument::PathTrieNode* CompiledPolicyDocument::PathChild(
    PathTrieNode* node, std::string_view key) {
  for (auto& [k, child] : node->children) {
    if (k == key) return child.get();
  }
  node->children.emplace_back(std::string{key},
                              std::make_unique<PathTrieNode>());
  return node->children.back().second.get();
}

const CompiledPolicyDocument::PathTrieNode*
CompiledPolicyDocument::FindPathChild(const PathTrieNode* node,
                                      std::string_view key) {
  auto it = std::lower_bound(
      node->children.begin(), node->children.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  if (it == node->children.end() || it->first != key) return nullptr;
  return it->second.get();
}

ArenaVector<std::size_t> CompiledPolicyDocument::LookupScopes(
    std::string_view identity) const {
  ArenaVector<std::size_t> out;
  const std::string_view trimmed = strings::Trim(identity);
  const bool slash_rooted = !trimmed.empty() && trimmed.front() == '/';
  if (slash_rooted) {
    out.insert(out.end(), scope_root_.statements.begin(),
               scope_root_.statements.end());
  }
  auto parsed = gsi::DistinguishedName::Parse(trimmed);
  if (parsed.ok()) {
    const TrieNode* node = &scope_root_;
    std::string key;
    for (const gsi::DnComponent& c : parsed->components()) {
      key.assign(c.type);
      key += '=';
      key += c.value;
      node = FindChild(node, key);
      if (node == nullptr) break;
      out.insert(out.end(), node->statements.begin(), node->statements.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Decision CompiledPolicyDocument::EvaluateObject(std::string_view subject,
                                                std::string_view object_url,
                                                RightsMask right) const {
  auto object = NormalizeObjectUrl(object_url);
  if (!object.ok()) {
    return Decision::Deny(
        DecisionCode::kDenyInvalidObject,
        pathscope_detail::ReasonInvalidObject(object.error()));
  }

  ObjectResolution resolution;
  const ArenaVector<std::size_t> applicable = LookupScopes(subject);
  resolution.any_applicable = !applicable.empty();
  if (resolution.any_applicable) {
    auto is_applicable = [&](std::size_t index) {
      return std::binary_search(applicable.begin(), applicable.end(), index);
    };
    // Walk origin + segments, deepest node wins; within a node the
    // entry list is in ascending statement order, so the first
    // applicable entry is the doc-order tie-breaker the naive scan
    // reports.
    const std::string& path = object.value().path;
    const PathTrieNode* node = FindPathChild(&path_root_,
                                             object.value().origin);
    int depth = 0;        // segments consumed so far
    std::size_t pos = 0;  // chars of `path` consumed so far
    while (node != nullptr) {
      RightsMask rights = 0;
      bool matched_here = false;
      for (const auto& [index, entry_rights] : node->entries) {
        if (!is_applicable(index)) continue;
        if (!matched_here) {
          resolution.statement = index;
          matched_here = true;
        }
        rights = static_cast<RightsMask>(rights | entry_rights);
      }
      if (matched_here) {
        resolution.best_depth = depth;
        resolution.rights = rights;
      }
      if (pos >= path.size()) break;
      std::size_t next = path.find('/', pos + 1);
      if (next == std::string::npos) next = path.size();
      node = FindPathChild(node,
                           std::string_view{path}.substr(pos + 1,
                                                         next - pos - 1));
      pos = next;
      ++depth;
    }
  }
  return DecideObject(resolution, document_, subject, object.value(), right);
}

std::vector<const PolicyStatement*> CompiledPolicyDocument::ApplicableTo(
    std::string_view identity) const {
  std::vector<const PolicyStatement*> out;
  for (std::size_t i : Lookup(identity)) {
    out.push_back(compiled_[i].statement);
  }
  return out;
}

bool CompiledPolicyDocument::BodySatisfied(const SetBody& body,
                                           const RequestIndex& index,
                                           std::string_view subject,
                                           std::string* failed_relation) {
  auto fail = [&](const std::string& text) {
    if (failed_relation != nullptr) *failed_relation = text;
    return false;
  };

  for (const EqEntry& entry : body.eq) {
    auto [lo, hi] = index.Values(entry.attribute);
    if (lo == hi) {
      if (!entry.allows_absent) return fail(entry.representative_text);
      continue;
    }
    for (auto it = lo; it != hi; ++it) {
      bool matched = false;
      for (const std::string& raw : entry.allowed) {
        if (ValueMatchesPattern(it->second, Resolve(raw, subject))) {
          matched = true;
          break;
        }
      }
      if (!matched) return fail(entry.representative_text);
    }
  }

  for (const CompiledRelation& r : body.others) {
    auto [lo, hi] = index.Values(r.attribute);
    switch (r.op) {
      case rsl::RelOp::kEq:
        break;  // merged into eq entries above
      case rsl::RelOp::kNeq: {
        for (const std::string& raw : r.values) {
          if (raw == kNullValue) {
            if (lo == hi) return fail(r.text);
          } else {
            const std::string_view forbidden = Resolve(raw, subject);
            for (auto it = lo; it != hi; ++it) {
              if (it->second == forbidden) return fail(r.text);
            }
          }
        }
        break;
      }
      case rsl::RelOp::kLt:
      case rsl::RelOp::kGt:
      case rsl::RelOp::kLe:
      case rsl::RelOp::kGe: {
        if (lo == hi) return fail(r.text);
        if (!r.bound) return fail(r.text);
        for (auto it = lo; it != hi; ++it) {
          auto request_value = ParseInt(it->second);
          if (!request_value ||
              !NumericSatisfied(r.op, *request_value, *r.bound)) {
            return fail(r.text);
          }
        }
        break;
      }
    }
  }
  return true;
}

Decision CompiledPolicyDocument::Evaluate(
    const AuthorizationRequest& request) const {
  // Per-request arena for the evaluation scratch (effective view,
  // attribute index, applicable-statement list). A no-op when the PEP
  // already opened one for this request.
  RequestArenaScope arena_scope;
  obs::ScopedSpan span("pdp/evaluate");
  ProvenanceStageTimer stage("pdp/evaluate");
  Decision decision = EvaluateImpl(request);
  obs::Metrics()
      .GetCounter("pdp_evaluations_total",
                  {{"outcome", decision.permitted() ? "permit" : "deny"}})
      .Increment();
  return decision;
}

Decision CompiledPolicyDocument::EvaluateImpl(
    const AuthorizationRequest& request) const {
  // The effective RSL as a view instead of ToEffectiveRsl()'s deep copy:
  // the job RSL's relations minus action/jobowner (exactly what
  // Remove() would drop — attributes are stored canonical), then the
  // two synthesized relations on the stack. Order matches
  // ToEffectiveRsl (removals keep relative order, Add appends), which
  // the compiled-vs-naive property test depends on.
  const rsl::Relation action_relation{
      "action", rsl::RelOp::kEq, {request.action}};
  const rsl::Relation jobowner_relation{
      "jobowner",
      rsl::RelOp::kEq,
      {request.job_owner.empty() ? request.subject : request.job_owner}};
  ArenaVector<const rsl::Relation*> effective;
  effective.reserve(request.job_rsl.relations().size() + 2);
  for (const rsl::Relation& r : request.job_rsl.relations()) {
    if (r.attribute == "action" || r.attribute == "jobowner") continue;
    effective.push_back(&r);
  }
  effective.push_back(&action_relation);
  effective.push_back(&jobowner_relation);
  // Provenance annotations at the same return points as the naive
  // evaluator, with identical values apart from the evaluator name — the
  // provenance_test pins the two paths together just like the decisions.
  DecisionProvenance* prov = CurrentProvenance();
  auto note = [prov](std::string_view kind, std::string_view statement,
                     int set, std::string_view failed = {}) {
    if (prov == nullptr) return;
    prov->evaluator = "compiled";
    prov->decision_kind = std::string{kind};
    prov->matched_statement = std::string{statement};
    prov->matched_set = set;
    prov->failed_relation = std::string{failed};
  };
  const ArenaVector<std::size_t> applicable = Lookup(request.subject);
  if (applicable.empty()) {
    note("deny-no-applicable", "default-deny", 0);
    return Decision::Deny(DecisionCode::kDenyNoApplicableStatement,
                          "no policy statement applies to " + request.subject);
  }
  const RequestIndex index(effective);

  // Requirements first (deny-overrides), then permissions — the naive
  // evaluator's order, with identical reason strings.
  for (std::size_t i : applicable) {
    const CompiledStatement& compiled = compiled_[i];
    if (compiled.statement->kind != StatementKind::kRequirement) continue;
    for (const CompiledSet& set : compiled.sets) {
      if (!set.applies_to_all_actions &&
          !BodySatisfied(set.action_part, index, request.subject)) {
        continue;
      }
      std::string failed;
      if (!BodySatisfied(set.body, index, request.subject, &failed)) {
        note("deny-requirement", compiled.statement->subject_prefix, 0,
             failed);
        return Decision::Deny(
            DecisionCode::kDenyRequirementViolated,
            "requirement for '" + compiled.statement->subject_prefix +
                "' violated at relation " + failed);
      }
    }
  }

  bool saw_permission_statement = false;
  for (std::size_t i : applicable) {
    const CompiledStatement& compiled = compiled_[i];
    if (compiled.statement->kind != StatementKind::kPermission) continue;
    saw_permission_statement = true;
    int set_index = 0;
    for (const CompiledSet& set : compiled.sets) {
      ++set_index;
      if (options_.strict_attributes) {
        bool all_mentioned = true;
        for (const rsl::Relation* r : effective) {
          if (!IsOperationalAttribute(r->attribute) &&
              !std::binary_search(set.mentioned.begin(), set.mentioned.end(),
                                  r->attribute)) {
            all_mentioned = false;
            break;
          }
        }
        if (!all_mentioned) continue;
      }
      if (BodySatisfied(set.body, index, request.subject)) {
        note("permit", compiled.statement->subject_prefix, set_index);
        return Decision::Permit("permitted by statement for '" +
                                compiled.statement->subject_prefix +
                                "', assertion set " +
                                std::to_string(set_index));
      }
    }
  }

  if (!saw_permission_statement) {
    note("deny-no-applicable", "default-deny", 0);
    return Decision::Deny(DecisionCode::kDenyNoApplicableStatement,
                          "no permission statement applies to " +
                              request.subject);
  }
  note("deny-no-permission", "default-deny", 0);
  return Decision::Deny(DecisionCode::kDenyNoPermission,
                        "no assertion set covers action '" + request.action +
                            "' for " + request.subject);
}

}  // namespace gridauthz::core
