#include "core/datapath.h"

namespace gridauthz::core {

DataPathAuthorizer::DataPathAuthorizer(DataPathParams params)
    : params_(std::move(params)),
      clock_(params_.clock != nullptr ? params_.clock : &fallback_clock_),
      codec_(params_.hmac_key, clock_) {}

DataPathAuthorizer::DataPathAuthorizer(
    std::shared_ptr<StaticPolicySource> source, std::string hmac_key,
    const Clock* clock)
    : DataPathAuthorizer(DataPathParams{
          [source] { return source->snapshot(); },
          [source] { return source->policy_generation(); },
          std::move(hmac_key), clock, 600'000'000}) {}

Expected<SessionToken> DataPathAuthorizer::MintSession(
    std::string_view subject, std::string_view url_base) {
  // Generation first: see DataPathParams for the race direction.
  const std::uint64_t generation = params_.generation();
  const std::shared_ptr<const CompiledPolicyDocument> snapshot =
      params_.snapshot();
  auto grant = ResolveSessionScope(snapshot->document(), subject, url_base);
  if (!grant.ok()) {
    mints_denied_.Increment();
    return grant.error();
  }
  SessionToken session;
  session.claims.subject = std::string{subject};
  session.claims.scope = std::move(grant.value().scope);
  session.claims.rights = grant.value().rights;
  session.claims.generation = generation;
  session.claims.expiry_us = clock_->NowMicros() + params_.token_ttl_us;
  session.token = codec_.Mint(session.claims);
  mints_ok_.Increment();
  return session;
}

Expected<SessionToken> DataPathAuthorizer::Refresh(std::string_view token) {
  auto claims = codec_.VerifyIgnoringGeneration(token);
  if (!claims.ok()) {
    refreshes_denied_.Increment();
    return claims.error();
  }
  auto minted = MintSession(claims.value().subject, claims.value().scope);
  if (!minted.ok()) {
    refreshes_denied_.Increment();
    return minted.error();
  }
  refreshes_ok_.Increment();
  return minted;
}

Expected<DataPathAuthorizer::CheckResult> DataPathAuthorizer::Check(
    std::string_view token, std::string_view object, RightsMask right) {
  auto checked = codec_.CheckAccess(token, object, right,
                                    params_.generation());
  if (checked.ok()) {
    checks_ok_.Increment();
    return CheckResult{};
  }
  if (FailureReasonTag(checked.error()) != kReasonTokenStale) {
    checks_denied_.Increment();
    return checked.error();
  }

  // Policy generation moved under the session: re-evaluate + re-mint,
  // then re-check the object under the fresh token.
  checks_stale_.Increment();
  auto refreshed = Refresh(token);
  if (!refreshed.ok()) {
    return refreshed.error();
  }
  auto recheck = codec_.CheckAccess(refreshed.value().token, object, right,
                                    refreshed.value().claims.generation);
  if (!recheck.ok()) {
    checks_denied_.Increment();
    return recheck.error();
  }
  checks_ok_.Increment();
  return CheckResult{std::move(refreshed.value().token)};
}

Expected<std::string> DataPathAuthorizer::NormalizeObject(
    std::string_view url) {
  auto normalized = NormalizeObjectUrl(url);
  if (!normalized.ok()) {
    return Error{ErrCode::kAuthorizationDenied,
                 pathscope_detail::ReasonInvalidObject(normalized.error())};
  }
  return normalized.value().Display();
}

}  // namespace gridauthz::core
