#include "core/audit_sink.h"

#include <charconv>
#include <chrono>
#include <filesystem>

#include "common/json.h"
#include "obs/metrics.h"

namespace gridauthz::core {

namespace {

constexpr int kSchemaVersion = 1;

std::int64_t IntField(const std::map<std::string, std::string>& fields,
                      const std::string& key, std::int64_t fallback = 0) {
  auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  std::int64_t value = 0;
  const char* begin = it->second.data();
  const char* end = begin + it->second.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return fallback;
  return value;
}

std::string StringField(const std::map<std::string, std::string>& fields,
                        const std::string& key) {
  auto it = fields.find(key);
  return it == fields.end() ? std::string{} : it->second;
}

}  // namespace

std::string AuditRecordToJsonLine(const AuditRecord& record) {
  json::ObjectWriter out;
  out.Int("v", kSchemaVersion);
  out.Int("t", record.time);
  out.String("outcome", to_string(record.outcome));
  out.String("source", record.source);
  out.String("subject", record.subject);
  out.String("action", record.action);
  if (!record.job_owner.empty()) out.String("jobowner", record.job_owner);
  if (!record.job_id.empty()) out.String("job", record.job_id);
  if (!record.rsl.empty()) out.String("rsl", record.rsl);
  if (!record.reason.empty()) out.String("reason", record.reason);
  if (!record.trace_id.empty()) out.String("trace", record.trace_id);
  if (record.retry_attempt > 0) out.Int("attempt", record.retry_attempt);
  if (record.has_provenance) {
    // Provenance flattened with prov_ prefixes: one schema, one parser.
    out.Bool("prov", true);
    const DecisionProvenance& p = record.provenance;
    if (!p.evaluator.empty()) out.String("prov_evaluator", p.evaluator);
    if (!p.matched_statement.empty()) {
      out.String("prov_statement", p.matched_statement);
    }
    if (p.matched_set > 0) out.Int("prov_set", p.matched_set);
    if (!p.decision_kind.empty()) out.String("prov_kind", p.decision_kind);
    if (!p.failed_relation.empty()) {
      out.String("prov_failed_relation", p.failed_relation);
    }
    if (p.policy_generation > 0) out.UInt("prov_generation", p.policy_generation);
    if (!p.policy_source.empty()) out.String("prov_source", p.policy_source);
    if (p.cache_checked) {
      out.String("prov_cache", p.cache_hit ? "hit" : "miss");
      if (p.cache_generation > 0) {
        out.UInt("prov_cache_generation", p.cache_generation);
      }
    }
    if (p.attempts > 0) out.Int("prov_attempts", p.attempts);
    if (!p.failed_attempts.empty()) {
      out.String("prov_failed_attempts", p.FailedAttemptsToString());
    }
    if (!p.breaker_state.empty()) out.String("prov_breaker", p.breaker_state);
    if (!p.degrade_tag.empty()) out.String("prov_degraded", p.degrade_tag);
    if (!p.pep_action.empty()) out.String("prov_pep_action", p.pep_action);
    if (!p.pep_job_id.empty()) out.String("prov_pep_job", p.pep_job_id);
    if (!p.peer_trace_id.empty()) {
      out.String("prov_peer_trace", p.peer_trace_id);
    }
    if (!p.stages.empty()) out.String("prov_stages", p.StagesToString());
  }
  return out.Take();
}

Expected<AuditRecord> AuditRecordFromJsonLine(std::string_view line) {
  GA_TRY(auto fields, json::ParseFlatObject(line));
  const std::int64_t version = IntField(fields, "v", -1);
  if (version != kSchemaVersion) {
    return Error{ErrCode::kParseError,
                 "audit line has unsupported schema version " +
                     std::to_string(version)};
  }
  AuditRecord record;
  record.time = IntField(fields, "t");
  GA_TRY(record.outcome, AuditOutcomeFromString(StringField(fields, "outcome")));
  record.source = StringField(fields, "source");
  record.subject = StringField(fields, "subject");
  record.action = StringField(fields, "action");
  record.job_owner = StringField(fields, "jobowner");
  record.job_id = StringField(fields, "job");
  record.rsl = StringField(fields, "rsl");
  record.reason = StringField(fields, "reason");
  record.trace_id = StringField(fields, "trace");
  record.retry_attempt = static_cast<int>(IntField(fields, "attempt"));
  if (fields.count("prov") != 0) {
    record.has_provenance = true;
    DecisionProvenance& p = record.provenance;
    p.evaluator = StringField(fields, "prov_evaluator");
    p.matched_statement = StringField(fields, "prov_statement");
    p.matched_set = static_cast<int>(IntField(fields, "prov_set"));
    p.decision_kind = StringField(fields, "prov_kind");
    p.failed_relation = StringField(fields, "prov_failed_relation");
    p.policy_generation =
        static_cast<std::uint64_t>(IntField(fields, "prov_generation"));
    p.policy_source = StringField(fields, "prov_source");
    const std::string cache = StringField(fields, "prov_cache");
    p.cache_checked = !cache.empty();
    p.cache_hit = cache == "hit";
    p.cache_generation =
        static_cast<std::uint64_t>(IntField(fields, "prov_cache_generation"));
    p.attempts = static_cast<int>(IntField(fields, "prov_attempts"));
    p.failed_attempts = DecisionProvenance::FailedAttemptsFromString(
        StringField(fields, "prov_failed_attempts"));
    p.breaker_state = StringField(fields, "prov_breaker");
    p.degrade_tag = StringField(fields, "prov_degraded");
    p.pep_action = StringField(fields, "prov_pep_action");
    p.pep_job_id = StringField(fields, "prov_pep_job");
    p.peer_trace_id = StringField(fields, "prov_peer_trace");
    p.stages =
        DecisionProvenance::StagesFromString(StringField(fields, "prov_stages"));
  }
  return record;
}

FileAuditSink::FileAuditSink(FileAuditSinkOptions options)
    : options_(std::move(options)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  flusher_ = std::thread([this] { FlusherLoop(); });
}

FileAuditSink::~FileAuditSink() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();  // drains remaining records
  std::lock_guard file_lock(file_mu_);
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

void FileAuditSink::Submit(AuditRecord record) {
  bool queued = false;
  bool wake = false;
  {
    std::lock_guard lock(mu_);
    if (!stop_ && queue_.size() < options_.queue_capacity) {
      queue_.push_back(std::move(record));
      queued = true;
      // The flusher polls on a short period, so the hot path normally
      // skips the condition-variable signal (a futex wake would cost
      // more than the rest of Submit combined). Signal only when the
      // queue is filling faster than the poll drains it.
      wake = queue_.size() * 2 >= options_.queue_capacity;
    }
  }
  if (queued) {
    if (wake) cv_.notify_one();
    return;
  }
  // Never block the PEP on a slow disk: count the loss and move on. The
  // ObsService /healthz surfaces the counter so operators see it.
  dropped_.fetch_add(1, std::memory_order_relaxed);
  obs::Metrics().GetCounter("audit_sink_dropped_total").Increment();
}

void FileAuditSink::Flush() {
  {
    std::unique_lock lock(mu_);
    cv_.notify_one();  // wake the poll loop immediately
    drained_cv_.wait(lock, [this] { return queue_.empty() && !writing_; });
  }
  std::lock_guard file_lock(file_mu_);
  if (out_.is_open()) out_.flush();
}

void FileAuditSink::FlusherLoop() {
  std::unique_lock lock(mu_);
  while (true) {
    // Timed wait: producers do not signal on every Submit (see there),
    // so the flusher polls. Flush(), shutdown, and a half-full queue
    // still signal for prompt draining.
    cv_.wait_for(lock, std::chrono::milliseconds(1),
                 [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::deque<AuditRecord> batch;
    batch.swap(queue_);
    writing_ = true;
    lock.unlock();
    std::size_t wrote = 0;
    {
      std::lock_guard file_lock(file_mu_);
      wrote = WriteBatchLocked(batch);
    }
    // One registry lookup per batch, not per record: the flusher shares
    // a core with the PEP on small machines, so its per-record cost is
    // part of the authorization hot path.
    if (wrote > 0) {
      obs::Metrics()
          .GetCounter("audit_sink_written_total")
          .Increment(static_cast<std::int64_t>(wrote));
    }
    if (wrote < batch.size()) {
      obs::Metrics()
          .GetCounter("audit_sink_dropped_total")
          .Increment(static_cast<std::int64_t>(batch.size() - wrote));
    }
    lock.lock();
    writing_ = false;
    drained_cv_.notify_all();
  }
}

std::string FileAuditSink::RotatedPath(std::size_t index) const {
  return options_.path + "." + std::to_string(index);
}

void FileAuditSink::OpenLocked() {
  namespace fs = std::filesystem;
  std::error_code ec;
  const auto existing = fs::file_size(options_.path, ec);
  current_bytes_ = ec ? 0 : static_cast<std::size_t>(existing);
  out_.open(options_.path, std::ios::app | std::ios::binary);
}

void FileAuditSink::RotateLocked() {
  namespace fs = std::filesystem;
  std::error_code ec;
  out_.flush();
  out_.close();
  if (options_.max_rotated_files == 0) {
    fs::remove(options_.path, ec);
  } else {
    fs::remove(RotatedPath(options_.max_rotated_files), ec);
    for (std::size_t k = options_.max_rotated_files; k >= 2; --k) {
      fs::rename(RotatedPath(k - 1), RotatedPath(k), ec);
    }
    fs::rename(options_.path, RotatedPath(1), ec);
  }
  current_bytes_ = 0;
  out_.open(options_.path, std::ios::app | std::ios::binary);
}

std::size_t FileAuditSink::WriteBatchLocked(
    const std::deque<AuditRecord>& batch) {
  if (!out_.is_open()) OpenLocked();
  if (!out_.is_open()) {
    dropped_.fetch_add(batch.size(), std::memory_order_relaxed);
    return 0;
  }
  // Serialize the whole batch into one reused buffer and issue a single
  // write per file: per-record stream writes measurably tax the PEP on
  // machines where flusher and PEP share a core.
  buffer_.clear();
  auto flush_buffer = [this] {
    if (buffer_.empty()) return;
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    current_bytes_ += buffer_.size();
    buffer_.clear();
  };
  for (const AuditRecord& record : batch) {
    std::string line = AuditRecordToJsonLine(record);
    line.push_back('\n');
    // Rotate *before* the write that would overflow, so no single file
    // exceeds max_file_bytes (a record larger than the cap still gets
    // its own file — losing it would be worse than the overage).
    if (current_bytes_ + buffer_.size() > 0 &&
        current_bytes_ + buffer_.size() + line.size() >
            options_.max_file_bytes) {
      flush_buffer();
      RotateLocked();
    }
    buffer_ += line;
  }
  flush_buffer();
  out_.flush();
  written_.fetch_add(batch.size(), std::memory_order_relaxed);
  return batch.size();
}

Expected<std::vector<AuditRecord>> FileAuditSink::Query(
    const AuditQuery& query) {
  Flush();
  std::lock_guard file_lock(file_mu_);
  if (out_.is_open()) out_.flush();

  auto matches = [&query](const AuditRecord& record) {
    if (query.subject && record.subject != *query.subject) return false;
    if (query.action && record.action != *query.action) return false;
    if (query.outcome && record.outcome != *query.outcome) return false;
    if (query.time_min && record.time < *query.time_min) return false;
    if (query.time_max && record.time > *query.time_max) return false;
    return true;
  };

  std::vector<AuditRecord> out;
  auto read_file = [&](const std::string& path) -> Expected<void> {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return Ok();  // rotated slot not (yet) present
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      auto record = AuditRecordFromJsonLine(line);
      if (!record.ok()) {
        return Error{ErrCode::kParseError,
                     path + ":" + std::to_string(line_no) + ": " +
                         record.error().to_string()};
      }
      if (matches(*record)) out.push_back(std::move(*record));
    }
    return Ok();
  };

  // Oldest first: highest rotation index down to the active file.
  for (std::size_t k = options_.max_rotated_files; k >= 1; --k) {
    GA_TRY_VOID(read_file(RotatedPath(k)));
  }
  GA_TRY_VOID(read_file(options_.path));
  return out;
}

}  // namespace gridauthz::core
