#include "core/lint.h"

#include <charconv>
#include <set>

#include "core/request.h"

namespace gridauthz::core {

std::string_view to_string(LintSeverity severity) {
  return severity == LintSeverity::kError ? "ERROR" : "WARNING";
}

std::string LintFinding::ToLine() const {
  std::string out{to_string(severity)};
  out += " statement " + std::to_string(statement_index);
  if (set_index > 0) out += ", set " + std::to_string(set_index);
  out += ": " + message;
  return out;
}

namespace {

bool IsInteger(const std::string& s) {
  if (s.empty()) return false;
  std::int64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool IsTextualAttribute(const std::string& attribute) {
  static const std::set<std::string> kTextual = {
      "executable", "directory", "jobtag", "jobowner", "queue",
      "stdout",     "stderr",    "stdin",  "action"};
  return kTextual.contains(attribute);
}

void LintSet(const rsl::Conjunction& set, int statement_index, int set_index,
             StatementKind kind, std::vector<LintFinding>& findings) {
  auto add = [&](LintSeverity severity, std::string message) {
    findings.push_back(
        LintFinding{severity, statement_index, set_index, std::move(message)});
  };

  bool has_action = false;
  for (const rsl::Relation& relation : set.relations()) {
    const bool numeric_op =
        relation.op == rsl::RelOp::kLt || relation.op == rsl::RelOp::kGt ||
        relation.op == rsl::RelOp::kLe || relation.op == rsl::RelOp::kGe;

    if (relation.attribute == "action") {
      has_action = true;
      if (relation.op == rsl::RelOp::kEq) {
        for (const std::string& value : relation.values) {
          if (value == kNullValue) {
            add(LintSeverity::kError,
                "(action = NULL) can never match: every request carries an "
                "action");
          } else if (!IsKnownAction(value)) {
            add(LintSeverity::kWarning,
                "unknown action '" + value +
                    "' (expected start, cancel, information, or signal)");
          }
        }
      }
    }

    if (numeric_op) {
      auto bound = relation.single_value();
      if (!bound || !IsInteger(*bound)) {
        add(LintSeverity::kError,
            "relation " + relation.ToString() +
                " has a non-integer bound and is never satisfiable");
      } else if (IsTextualAttribute(relation.attribute)) {
        add(LintSeverity::kWarning,
            "numeric comparison on textual attribute '" + relation.attribute +
                "'");
      } else if (relation.attribute == "count") {
        std::int64_t value = std::stoll(*bound);
        bool unsatisfiable =
            (relation.op == rsl::RelOp::kLt && value <= 1) ||
            (relation.op == rsl::RelOp::kLe && value < 1);
        if (unsatisfiable) {
          add(LintSeverity::kError,
              "relation " + relation.ToString() +
                  " is unsatisfiable: count is at least 1");
        }
      }
    }

    for (const std::string& value : relation.values) {
      if (value == kSelfValue && relation.attribute != "jobowner") {
        add(LintSeverity::kWarning,
            "'self' on attribute '" + relation.attribute +
                "' compares against the requester's identity; did you mean "
                "(jobowner = self)?");
      }
    }
  }

  if (!has_action && kind == StatementKind::kPermission) {
    add(LintSeverity::kWarning,
        "permission set has no action relation, so it grants EVERY action "
        "(start, cancel, information, signal)");
  }
}

}  // namespace

std::vector<LintFinding> LintPolicy(const PolicyDocument& document) {
  std::vector<LintFinding> findings;

  bool any_permission = false;
  int statement_index = 0;
  for (const PolicyStatement& statement : document.statements()) {
    ++statement_index;
    if (statement.kind == StatementKind::kPermission) any_permission = true;
    int set_index = 0;
    for (const rsl::Conjunction& set : statement.assertion_sets) {
      ++set_index;
      LintSet(set, statement_index, set_index, statement.kind, findings);
    }
  }

  if (!document.empty() && !any_permission) {
    findings.push_back(LintFinding{
        LintSeverity::kError, 0, 0,
        "document contains only requirement statements; with default deny, "
        "no request can ever be permitted"});
  }
  return findings;
}

std::string FormatFindings(const std::vector<LintFinding>& findings) {
  std::string out;
  for (const LintFinding& finding : findings) {
    out += finding.ToLine();
    out += '\n';
  }
  return out;
}

}  // namespace gridauthz::core
