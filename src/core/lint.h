// Policy linting. Section 6.3 reports that "expressing policies in
// [RSL] terms is not natural to this community" and that the syntax "is
// not supported by standard policy tools" — administrators write policy
// files by hand and get no feedback until requests start failing. The
// linter statically checks a parsed PolicyDocument for the mistakes the
// evaluation semantics make easy: unsatisfiable relations, misspelled
// actions, statements that can never grant anything.
#pragma once

#include <string>
#include <vector>

#include "core/policy.h"

namespace gridauthz::core {

enum class LintSeverity {
  kWarning,  // legal but probably not what the author meant
  kError,    // the statement (or a set) can never take effect as written
};

std::string_view to_string(LintSeverity severity);

struct LintFinding {
  LintSeverity severity = LintSeverity::kWarning;
  // 1-based indexes locating the finding; set_index 0 = whole statement.
  int statement_index = 0;
  int set_index = 0;
  std::string message;

  std::string ToLine() const;
};

// Checks performed:
//  * unknown `action` values (not start/cancel/information/signal);
//  * numeric relations (< > <= >=) with non-integer bounds — never
//    satisfiable;
//  * numeric relations on inherently textual attributes (executable,
//    directory, jobtag, jobowner, queue);
//  * "(action = NULL)" — the effective request always carries an action;
//  * "(count < 1)" and friends — unsatisfiable for valid jobs;
//  * `self` used on attributes other than jobowner;
//  * permission sets with no `action` relation (they grant EVERY action —
//    legal, but flagged because default-deny authors rarely mean it);
//  * requirement statements in a document with no permission statement at
//    all (nothing can ever be granted).
std::vector<LintFinding> LintPolicy(const PolicyDocument& document);

// Renders findings one per line; empty string when clean.
std::string FormatFindings(const std::vector<LintFinding>& findings);

}  // namespace gridauthz::core
