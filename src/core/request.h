// The authorization request/decision types exchanged between GRAM's
// policy enforcement points and the policy evaluators (PDPs). The fields
// mirror what the paper's callout API passes (section 5.2): the credential
// of the requesting user, the credential of the user who started the job,
// the action, a unique job identifier, and the RSL job description.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rsl/rsl.h"

namespace gridauthz::core {

// GRAM actions from the paper's policy language: the `action` attribute
// "currently can take on values of start, cancel, information, or signal".
inline constexpr std::string_view kActionStart = "start";
inline constexpr std::string_view kActionCancel = "cancel";
inline constexpr std::string_view kActionInformation = "information";
inline constexpr std::string_view kActionSignal = "signal";

bool IsKnownAction(std::string_view action);

// True for the job-management actions (cancel / information / signal) —
// the only actions decision caches may serve; `start` always
// re-evaluates against live policy (fail closed).
bool IsManagementAction(std::string_view action);

struct AuthorizationRequest {
  // Grid identity (DN string) of the user making this request.
  std::string subject;
  // VO attributes of the subject (roles/groups from attribute
  // credentials); consumed by attribute-based evaluators such as Akenti.
  std::vector<std::string> attributes;
  // Restriction policy embedded in the subject's restricted-proxy
  // credential, if any; consumed by the CAS evaluator.
  std::optional<std::string> restriction_policy;
  // One of start / cancel / information / signal.
  std::string action;
  // Grid identity of the user who initiated the job. Equal to `subject`
  // for start requests; potentially different for management requests —
  // enabling VO-wide management is the point of the paper's extension.
  std::string job_owner;
  // Unique job identifier (the GRAM job contact); empty for start.
  std::string job_id;
  // The job description. For management actions this is the RSL the job
  // was started with (the JM keeps it and passes it to the callout).
  rsl::Conjunction job_rsl;

  // Renders the request as the single RSL conjunction policies are
  // matched against: job RSL plus synthesized `action` and `jobowner`
  // relations (the paper's extended attributes).
  rsl::Conjunction ToEffectiveRsl() const;
};

enum class DecisionCode {
  kPermit,
  // No statement in the policy applies to this subject at all.
  kDenyNoApplicableStatement,
  // Statements apply but no permission assertion set covers the request.
  kDenyNoPermission,
  // A requirement statement is violated.
  kDenyRequirementViolated,
  // Data-path object checks only: the object URL failed normalization
  // (`..` traversal, encoded slash, malformed percent-escape, ...).
  // Fail closed rather than match a guess.
  kDenyInvalidObject,
};

struct Decision {
  DecisionCode code = DecisionCode::kDenyNoApplicableStatement;
  // Human-readable explanation (which statement matched / was violated);
  // propagated through the extended GRAM protocol errors.
  std::string reason;

  bool permitted() const { return code == DecisionCode::kPermit; }

  static Decision Permit(std::string reason) {
    return Decision{DecisionCode::kPermit, std::move(reason)};
  }
  static Decision Deny(DecisionCode code, std::string reason) {
    return Decision{code, std::move(reason)};
  }
};

std::string_view to_string(DecisionCode code);

}  // namespace gridauthz::core
