#include "core/captoken.h"

#include <atomic>
#include <cstring>

#include "common/hash128.h"

namespace gridauthz::core {

namespace {

// Generous ceilings so a hostile length prefix cannot make the parser
// walk off into the weeds; real DNs and scopes are far smaller.
constexpr std::size_t kMaxFieldLen = 4096;
constexpr std::size_t kMacHexLen = 64;

// Tokens up to this size are remembered in the per-thread verified
// memo; larger ones simply pay the MAC on every check.
constexpr std::size_t kMemoMaxToken = 512;
constexpr std::size_t kMemoSlots = 16;

struct MemoSlot {
  std::uint64_t uid = 0;
  Hash128 hash;
  std::uint32_t len = 0;
  char bytes[kMemoMaxToken];
};

MemoSlot& ThreadMemoSlot(const Hash128& hash) {
  thread_local MemoSlot slots[kMemoSlots];
  return slots[hash.lo % kMemoSlots];
}

Error Invalid(std::string detail) {
  return Error{ErrCode::kAuthenticationFailed,
               std::string{kReasonTokenInvalid} + " " + std::move(detail)};
}

// Bounded decimal parse starting at *pos; advances *pos past the digits.
bool ParseDecimal(std::string_view text, std::size_t* pos,
                  std::uint64_t* out) {
  std::size_t i = *pos;
  std::uint64_t value = 0;
  std::size_t digits = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    if (++digits > 19) return false;
    value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
    ++i;
  }
  if (digits == 0) return false;
  *pos = i;
  *out = value;
  return true;
}

void HexEncode(const crypto::Digest& digest, char* out) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (std::size_t i = 0; i < digest.size(); ++i) {
    out[2 * i] = kHex[digest[i] >> 4];
    out[2 * i + 1] = kHex[digest[i] & 0x0f];
  }
}

std::atomic<std::uint64_t> g_codec_uid{1};

struct ParsedToken {
  std::string_view subject;
  std::string_view scope;
  RightsMask rights = 0;
  std::uint64_t generation = 0;
  std::int64_t expiry_us = 0;
};

// Zero-allocation structural parse. The MAC is NOT checked here.
Expected<ParsedToken> ParseToken(std::string_view token) {
  ParsedToken parsed;
  if (token.size() < kCapTokenPrefix.size() + 1 + kMacHexLen) {
    return Invalid("token is truncated");
  }
  if (token.compare(0, kCapTokenPrefix.size(), kCapTokenPrefix) != 0) {
    return Invalid("token does not start with '" +
                   std::string{kCapTokenPrefix} + "'");
  }
  const std::size_t mac_dot = token.size() - kMacHexLen - 1;
  if (token[mac_dot] != '.') {
    return Invalid("token has no MAC separator");
  }
  for (char c : token.substr(mac_dot + 1)) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return Invalid("MAC is not lowercase hex");
  }

  const std::string_view payload =
      token.substr(kCapTokenPrefix.size(), mac_dot - kCapTokenPrefix.size());
  std::size_t pos = 0;
  auto read_field = [&](char marker,
                        std::string_view* out) -> Expected<void> {
    if (pos >= payload.size() || payload[pos] != marker) {
      return Invalid(std::string{"expected '"} + marker + "' field");
    }
    ++pos;
    std::uint64_t len = 0;
    if (!ParseDecimal(payload, &pos, &len) || len > kMaxFieldLen) {
      return Invalid(std::string{"bad '"} + marker + "' length");
    }
    if (pos >= payload.size() || payload[pos] != ':') {
      return Invalid(std::string{"missing ':' after '"} + marker +
                     "' length");
    }
    ++pos;
    if (payload.size() - pos < len) {
      return Invalid(std::string{"'"} + marker +
                     "' field overruns the token");
    }
    *out = payload.substr(pos, len);
    pos += len;
    return Ok();
  };
  GA_TRY_VOID(read_field('s', &parsed.subject));
  GA_TRY_VOID(read_field('o', &parsed.scope));

  auto expect = [&](std::string_view literal) -> bool {
    if (payload.compare(pos, literal.size(), literal) != 0) return false;
    pos += literal.size();
    return true;
  };
  std::uint64_t rights = 0;
  if (!expect("r:") || !ParseDecimal(payload, &pos, &rights) || rights == 0 ||
      rights > kAllRights) {
    return Invalid("bad rights mask");
  }
  parsed.rights = static_cast<RightsMask>(rights);
  if (!expect(",g:") || !ParseDecimal(payload, &pos, &parsed.generation)) {
    return Invalid("bad generation");
  }
  std::uint64_t expiry = 0;
  if (!expect(",e:") || !ParseDecimal(payload, &pos, &expiry)) {
    return Invalid("bad expiry");
  }
  parsed.expiry_us = static_cast<std::int64_t>(expiry);
  if (pos != payload.size()) {
    return Invalid("trailing bytes after expiry");
  }
  return parsed;
}

}  // namespace

CapabilityTokenCodec::CapabilityTokenCodec(std::string_view key,
                                           const Clock* clock)
    : key_(key),
      memo_uid_(g_codec_uid.fetch_add(1, std::memory_order_relaxed)),
      clock_(clock != nullptr ? clock : &fallback_clock_) {
  // Seed the memo hash from the key so an attacker who can present
  // tokens cannot engineer memo-slot collisions offline.
  const crypto::Digest seed = crypto::HmacSha256(key, "captoken-hash-seed");
  std::memcpy(&hash_seed_, seed.data(), sizeof(hash_seed_));
}

std::string CapabilityTokenCodec::Mint(const CapabilityClaims& claims) const {
  std::string token{kCapTokenPrefix};
  token += 's';
  token += std::to_string(claims.subject.size());
  token += ':';
  token += claims.subject;
  token += 'o';
  token += std::to_string(claims.scope.size());
  token += ':';
  token += claims.scope;
  token += "r:";
  token += std::to_string(static_cast<unsigned>(claims.rights));
  token += ",g:";
  token += std::to_string(claims.generation);
  token += ",e:";
  token += std::to_string(claims.expiry_us);

  char mac_hex[kMacHexLen];
  HexEncode(key_.Mac(token), mac_hex);
  token += '.';
  token.append(mac_hex, kMacHexLen);
  return token;
}

Expected<void> CapabilityTokenCodec::VerifyMac(std::string_view token) const {
  // ParseToken already established structure; the split position is
  // recomputed cheaply from the fixed-width MAC tail.
  const std::size_t mac_dot = token.size() - kMacHexLen - 1;
  char expected_hex[kMacHexLen];
  HexEncode(key_.Mac(token.substr(0, mac_dot)), expected_hex);
  if (!crypto::ConstantTimeEqual(std::string_view{expected_hex, kMacHexLen},
                                 token.substr(mac_dot + 1))) {
    return Invalid("MAC verification failed");
  }
  return Ok();
}

Expected<void> CapabilityTokenCodec::CheckTemporal(
    std::uint64_t token_generation, std::int64_t expiry_us,
    std::uint64_t current_generation) const {
  const std::int64_t now = clock_->NowMicros();
  if (now >= expiry_us) {
    return Error{ErrCode::kAuthorizationDenied,
                 std::string{kReasonTokenExpired} + " token expired at " +
                     std::to_string(expiry_us) + " (now " +
                     std::to_string(now) + ")"};
  }
  if (token_generation != current_generation) {
    return Error{ErrCode::kAuthorizationDenied,
                 std::string{kReasonTokenStale} + " token generation " +
                     std::to_string(token_generation) +
                     " != policy generation " +
                     std::to_string(current_generation)};
  }
  return Ok();
}

Expected<CapabilityClaims> CapabilityTokenCodec::Verify(
    std::string_view token, std::uint64_t current_generation) const {
  GA_TRY(ParsedToken parsed, ParseToken(token));
  GA_TRY_VOID(VerifyMac(token));
  GA_TRY_VOID(CheckTemporal(parsed.generation, parsed.expiry_us,
                            current_generation));
  return CapabilityClaims{std::string{parsed.subject},
                          std::string{parsed.scope}, parsed.rights,
                          parsed.generation, parsed.expiry_us};
}

Expected<CapabilityClaims> CapabilityTokenCodec::VerifyIgnoringGeneration(
    std::string_view token) const {
  GA_TRY(ParsedToken parsed, ParseToken(token));
  GA_TRY_VOID(VerifyMac(token));
  GA_TRY_VOID(CheckTemporal(parsed.generation, parsed.expiry_us,
                            parsed.generation));
  return CapabilityClaims{std::string{parsed.subject},
                          std::string{parsed.scope}, parsed.rights,
                          parsed.generation, parsed.expiry_us};
}

Expected<void> CapabilityTokenCodec::CheckAccess(
    std::string_view token, std::string_view object, RightsMask right,
    std::uint64_t current_generation) const {
  GA_TRY(ParsedToken parsed, ParseToken(token));

  // MAC, memoized per thread on the token bytes: a striped transfer
  // presents the same token for every block, so after the first verify
  // the per-block cost is one 128-bit hash + compare instead of two
  // SHA-256 passes. Expiry/generation/scope/rights below are always
  // re-checked — they depend on the clock and the request, not on the
  // token bytes.
  const Hash128 hash = HashString128(token, hash_seed_);
  MemoSlot& slot = ThreadMemoSlot(hash);
  const bool memo_hit = slot.uid == memo_uid_ && slot.hash == hash &&
                        slot.len == token.size() &&
                        std::memcmp(slot.bytes, token.data(),
                                    token.size()) == 0;
  if (!memo_hit) {
    GA_TRY_VOID(VerifyMac(token));
    if (token.size() <= kMemoMaxToken) {
      slot.uid = memo_uid_;
      slot.hash = hash;
      slot.len = static_cast<std::uint32_t>(token.size());
      std::memcpy(slot.bytes, token.data(), token.size());
    }
  }

  GA_TRY_VOID(CheckTemporal(parsed.generation, parsed.expiry_us,
                            current_generation));
  if (!PathSegmentPrefix(parsed.scope, object)) {
    return Error{ErrCode::kAuthorizationDenied,
                 std::string{kReasonTokenScope} + " object " +
                     std::string{object} + " outside token scope " +
                     std::string{parsed.scope}};
  }
  if ((parsed.rights & right) != right) {
    return Error{ErrCode::kAuthorizationDenied,
                 std::string{kReasonTokenScope} + " right '" +
                     RightsMaskToString(right) + "' not in token rights '" +
                     RightsMaskToString(parsed.rights) + "'"};
  }
  return Ok();
}

}  // namespace gridauthz::core
