// Object/path scopes: the data-plane half of the policy language
// (ROADMAP item 3, the CAS policy-header shape — a url-base plus
// per-object rights granted to a subject).
//
// Concrete file syntax, appended to the Figure 3 statement grammar:
//
//   scope gsiftp://fusion.anl.gov/volumes:
//   subject: /O=Grid/O=NFC/CN=Bo Liu
//   object: /nfc read,write,list
//   object: /nfc/public read,list
//   endscope
//
// One block is one PathScopeStatement: a DN-prefix subject (same
// component-boundary matching as job statements), a url-base every
// object grant hangs under, and per-object rights entries. Resolution
// is longest-prefix at path-segment boundaries across ALL applicable
// statements — a deeper entry overrides a shallower one even when it
// grants fewer rights, which is how a subtree carve-out is written.
// Entries matching at the same (deepest) segment depth union their
// rights. Default deny.
//
// Object URLs are normalized before matching — percent-escapes decoded,
// duplicate and trailing slashes collapsed, scheme/authority
// lowercased — and anything that could alias past a prefix check
// (`.`/`..` segments, encoded slashes, truncated escapes) is rejected
// outright: the request is denied with a typed [path-invalid] reason
// rather than matched against a guess.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "core/request.h"
#include "gsi/dn.h"

namespace gridauthz::core {

// Rights are a bitmask so a capability token can carry the whole grant
// in one byte and the data path can test membership with an AND.
using RightsMask = std::uint8_t;
inline constexpr RightsMask kRightRead = 1u << 0;
inline constexpr RightsMask kRightWrite = 1u << 1;
inline constexpr RightsMask kRightDelete = 1u << 2;
inline constexpr RightsMask kRightList = 1u << 3;
inline constexpr RightsMask kAllRights =
    kRightRead | kRightWrite | kRightDelete | kRightList;

// Parses "read,write,list". Unknown or duplicate names are errors.
Expected<RightsMask> ParseRightsMask(std::string_view text);

// Canonical rendering: fixed read,write,delete,list order, or "none".
std::string RightsMaskToString(RightsMask mask);

// Maps a transfer action to the right it needs: get→read, put→write,
// delete→delete, list→list (the right names themselves also accepted).
Expected<RightsMask> RightForAction(std::string_view action);

// A parsed + normalized object URL: origin is "scheme://authority"
// lowercased, path is "/seg/seg" with no trailing slash ("" = root).
struct NormalizedObject {
  std::string origin;
  std::string path;

  std::string Display() const { return origin + path; }
};

// Fails (typed message, no guessing) on missing scheme/authority,
// `.`/`..` segments, encoded slashes (%2F) or NUL (%00), and truncated
// or non-hex percent-escapes.
Expected<NormalizedObject> NormalizeObjectUrl(std::string_view url);

// Same normalization for a '/'-rooted bare path (policy object entries).
Expected<std::string> NormalizeObjectPath(std::string_view path);

// One per-object grant inside a scope statement. `path` is relative to
// the statement's url-base, normalized ("" = the url-base itself).
struct ObjectEntry {
  std::string path;
  RightsMask rights = 0;
};

struct PathScopeStatement {
  // DN prefix matched component-wise against the requester's Grid DN.
  std::string subject_prefix;
  std::optional<gsi::DnPrefix> parsed_subject;
  // Normalized split of the url-base line.
  std::string origin;     // "gsiftp://fusion.anl.gov"
  std::string base_path;  // "/volumes" ("" = authority root)
  std::vector<ObjectEntry> entries;

  // Validates and normalizes all parts. `entries` paths are given
  // '/'-rooted; duplicates (post-normalization) are rejected because
  // they would make the same prefix resolve ambiguously.
  static Expected<PathScopeStatement> Create(std::string subject,
                                             std::string_view url_base,
                                             std::vector<ObjectEntry> entries);

  bool AppliesTo(const gsi::DistinguishedName* identity,
                 bool slash_rooted) const;

  std::string url_base() const { return origin + base_path; }
};

class PolicyDocument;

// Reference path evaluator: scans every scope statement. The compiled
// path-segment trie in CompiledPolicyDocument::EvaluateObject must be
// decision- AND reason-identical (property P9).
Decision EvaluateObjectNaive(const PolicyDocument& document,
                             std::string_view subject,
                             std::string_view object_url, RightsMask right);

// The session grant a capability token is minted from: the rights a
// subject holds over the WHOLE subtree at `url_base`. Sound by
// construction: the base's longest-prefix resolution ANDed with every
// applicable entry strictly under the base, so a deeper carve-out can
// only shrink the mask — a token can never authorize a check the full
// evaluator would deny.
struct ScopeGrant {
  std::string scope;  // normalized origin+path display
  RightsMask rights = 0;
};

Expected<ScopeGrant> ResolveSessionScope(const PolicyDocument& document,
                                         std::string_view subject,
                                         std::string_view url_base);

// Internal helpers shared by the naive and compiled evaluators (and the
// adversarial tests): segment-boundary prefix match and segment count.
bool PathSegmentPrefix(std::string_view prefix, std::string_view path);
std::size_t PathSegmentCount(std::string_view path);

// Longest-prefix resolution outcome, produced independently by the
// naive scan and the compiled trie walk; the final Decision (code and
// reason) is rendered by the shared DecideObject so P9 identity is
// structural for that step and only the resolution itself can diverge.
struct ObjectResolution {
  bool any_applicable = false;
  // -1 = no entry matched; otherwise segment depth of the matched
  // absolute prefix (origin excluded — it is always equal).
  int best_depth = -1;
  RightsMask rights = 0;  // union of entry rights at best_depth
  // Doc-order index of the first scope statement contributing at
  // best_depth.
  std::size_t statement = 0;
};

Decision DecideObject(const ObjectResolution& resolution,
                      const PolicyDocument& document,
                      std::string_view subject,
                      const NormalizedObject& object, RightsMask right);

// Exact reason-string builders shared by both evaluators so P9 identity
// is structural, not coincidental.
namespace pathscope_detail {
std::string ReasonInvalidObject(const Error& error);
std::string ReasonNoApplicable(std::string_view subject);
std::string ReasonNoEntry(const NormalizedObject& object,
                          std::string_view subject);
std::string ReasonRightsExcluded(RightsMask resolved, std::string_view matched,
                                 std::string_view statement_subject,
                                 RightsMask requested);
std::string ReasonGranted(RightsMask requested, std::string_view matched,
                          std::string_view statement_subject);
}  // namespace pathscope_detail

}  // namespace gridauthz::core
