#include "core/source.h"

#include "common/config.h"
#include "common/deadline.h"
#include "common/logging.h"
#include "core/provenance.h"
#include "obs/instrument.h"
#include "obs/metrics.h"

namespace gridauthz::core {

std::string_view MetricOutcome(const Expected<Decision>& decision) {
  if (!decision.ok()) return obs::kOutcomeError;
  return decision->permitted() ? obs::kOutcomePermit : obs::kOutcomeDeny;
}

StaticPolicySource::StaticPolicySource(std::string name,
                                       PolicyDocument document,
                                       EvaluatorOptions options)
    : name_(std::move(name)), options_(options) {
  snapshot_.store(std::make_shared<const CompiledPolicyDocument>(
      std::move(document), options));
}

Expected<Decision> StaticPolicySource::Authorize(
    const AuthorizationRequest& request) {
  obs::AuthzCallObservation observation{instruments_};
  // An epoch pin holds the snapshot for this request without touching
  // any shared mutex or refcount; a concurrent Replace() retires the
  // old document only after this guard unpins.
  const auto snapshot = snapshot_.Read();
  if (DecisionProvenance* prov = CurrentProvenance()) {
    prov->policy_source = name_;
    prov->policy_generation = policy_generation();
  }
  Expected<Decision> decision = snapshot->Evaluate(request);
  observation.set_outcome(MetricOutcome(decision));
  return decision;
}

void StaticPolicySource::Replace(PolicyDocument document) {
  snapshot_.store(std::make_shared<const CompiledPolicyDocument>(
      std::move(document), options_));
  generation_.fetch_add(1, std::memory_order_acq_rel);
  GA_LOG(kInfo, "policy") << "source '" << name_ << "' policy replaced";
}

FilePolicySource::FilePolicySource(std::string name, std::string path,
                                   EvaluatorOptions options)
    : name_(std::move(name)), path_(std::move(path)), options_(options) {
  state_.store(std::make_shared<const State>());
  if (auto loaded = Reload(); !loaded.ok()) {
    GA_LOG(kWarn, "policy") << "source '" << name_
                            << "' failed to load: " << loaded.error();
  }
}

Expected<void> FilePolicySource::Reload() {
  // Serialize reloaders; Authorize() never takes this lock.
  const std::lock_guard<std::mutex> lock(reload_mu_);
  const std::shared_ptr<const State> previous = state_.load();

  // A failed re-read keeps the last-good policy serving: replacing a
  // working policy with "no policy" would convert every request into an
  // authorization system failure because of one bad edit or a transient
  // I/O error. The failure is recorded and counted instead.
  auto record_failure = [&](const Error& error) {
    auto next = std::make_shared<State>();
    next->compiled = previous->compiled;
    next->load_error = error.to_string();
    state_.store(std::move(next));
    obs::Metrics()
        .GetCounter("policy_reload_failures_total", {{"source", name_}})
        .Increment();
    GA_LOG(kWarn, "policy") << "source '" << name_ << "' reload failed"
                            << (previous->compiled != nullptr
                                    ? " (keeping last-good policy): "
                                    : " (no policy loaded): ")
                            << error;
  };
  auto text = ReadFile(path_);
  if (!text.ok()) {
    record_failure(text.error());
    return text.error();
  }
  auto document = PolicyDocument::Parse(*text);
  if (!document.ok()) {
    record_failure(document.error());
    return document.error();
  }
  auto next = std::make_shared<State>();
  next->compiled = std::make_shared<const CompiledPolicyDocument>(
      std::move(document).value(), options_);
  state_.store(std::move(next));
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return Ok();
}

Expected<Decision> FilePolicySource::Authorize(
    const AuthorizationRequest& request) {
  obs::AuthzCallObservation observation{instruments_};
  const auto state = state_.Read();
  if (DecisionProvenance* prov = CurrentProvenance()) {
    prov->policy_source = name_;
    prov->policy_generation = policy_generation();
  }
  Expected<Decision> decision =
      state->compiled == nullptr
          ? Expected<Decision>{Error{
                ErrCode::kAuthorizationSystemFailure,
                "policy source '" + name_ + "' has no loaded policy (" +
                    state->load_error + ")"}}
          : state->compiled->Evaluate(request);
  observation.set_outcome(MetricOutcome(decision));
  return decision;
}

CombiningPdp::CombiningPdp(std::string name) : name_(std::move(name)) {}

void CombiningPdp::AddSource(std::shared_ptr<PolicySource> source) {
  sources_.push_back(std::move(source));
}

std::uint64_t CombiningPdp::policy_generation() const {
  std::uint64_t sum = 0;
  for (const auto& source : sources_) sum += source->policy_generation();
  return sum;
}

Expected<Decision> CombiningPdp::Authorize(
    const AuthorizationRequest& request) {
  obs::AuthzCallObservation observation{instruments_};
  Expected<Decision> combined = [&]() -> Expected<Decision> {
    if (sources_.empty()) {
      return Error{ErrCode::kAuthorizationSystemFailure,
                   "combining PDP '" + name_ + "' has no policy sources"};
    }
    for (const auto& source : sources_) {
      // Deadline check between sources: a permit requires every source's
      // answer, so running out of budget mid-evaluation must fail the
      // request (closed), not permit on the prefix evaluated so far.
      if (DeadlineExpiredAt(obs::ObsClock()->NowMicros())) {
        obs::Metrics()
            .GetCounter("authz_deadline_exceeded_total", {{"source", name_}})
            .Increment();
        return Error{ErrCode::kAuthorizationSystemFailure,
                     std::string{kReasonDeadlineExceeded} + " combining PDP '" +
                         name_ + "' ran out of deadline budget before source '" +
                         source->name() + "'"};
      }
      GA_TRY(Decision decision, source->Authorize(request));
      if (!decision.permitted()) {
        decision.reason =
            "source '" + source->name() + "': " + decision.reason;
        return decision;
      }
    }
    return Decision::Permit("permitted by all " +
                            std::to_string(sources_.size()) + " sources");
  }();
  observation.set_outcome(MetricOutcome(combined));
  return combined;
}

PolicyDocument MakeGt2DefaultDocument() {
  // "/" prefixes every DN, so these statements apply to all users.
  const char* text = R"(
/:
&(action = start)
&(action = cancel)(jobowner = self)
&(action = information)(jobowner = self)
&(action = signal)(jobowner = self)
)";
  auto document = PolicyDocument::Parse(text);
  // The text is a compile-time constant; parsing cannot fail.
  return std::move(document).value();
}

}  // namespace gridauthz::core
