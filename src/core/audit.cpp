#include "core/audit.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::core {

std::string_view to_string(AuditOutcome outcome) {
  switch (outcome) {
    case AuditOutcome::kPermit:
      return "PERMIT";
    case AuditOutcome::kDeny:
      return "DENY";
    case AuditOutcome::kSystemFailure:
      return "SYSTEM-FAILURE";
  }
  return "?";
}

std::string AuditRecord::ToLine() const {
  std::string out = "t=" + std::to_string(time);
  out += " outcome=" + std::string{to_string(outcome)};
  out += " source=" + source;
  out += " subject=\"" + subject + "\"";
  out += " action=" + action;
  if (!job_owner.empty() && job_owner != subject) {
    out += " jobowner=\"" + job_owner + "\"";
  }
  if (!job_id.empty()) out += " job=" + job_id;
  if (!reason.empty()) out += " reason=\"" + reason + "\"";
  if (!trace_id.empty()) out += " trace=" + trace_id;
  return out;
}

AuditLog::AuditLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void AuditLog::Append(AuditRecord record) {
  obs::Metrics().GetCounter("audit_records_total").Increment();
  std::lock_guard lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
  obs::Metrics().GetCounter("audit_records_dropped_total").Increment();
}

std::size_t AuditLog::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::uint64_t AuditLog::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

template <typename Fn>
void AuditLog::ForEach(Fn&& fn) const {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    fn(ring_[(head_ + i) % ring_.size()]);
  }
}

std::vector<AuditRecord> AuditLog::records() const {
  std::vector<AuditRecord> out;
  ForEach([&out](const AuditRecord& record) { out.push_back(record); });
  return out;
}

std::vector<AuditRecord> AuditLog::Query(
    const std::optional<std::string>& subject,
    const std::optional<std::string>& action,
    const std::optional<AuditOutcome>& outcome) const {
  std::vector<AuditRecord> out;
  ForEach([&](const AuditRecord& record) {
    if (subject && record.subject != *subject) return;
    if (action && record.action != *action) return;
    if (outcome && record.outcome != *outcome) return;
    out.push_back(record);
  });
  return out;
}

std::vector<AuditRecord> AuditLog::FailuresFor(
    const std::string& subject) const {
  std::vector<AuditRecord> out;
  ForEach([&](const AuditRecord& record) {
    if (record.subject == subject && record.outcome != AuditOutcome::kPermit) {
      out.push_back(record);
    }
  });
  return out;
}

std::string AuditLog::ToText() const {
  std::string out;
  ForEach([&out](const AuditRecord& record) {
    out += record.ToLine();
    out += '\n';
  });
  return out;
}

AuditingPolicySource::AuditingPolicySource(std::shared_ptr<PolicySource> inner,
                                           std::shared_ptr<AuditLog> log,
                                           const Clock* clock)
    : inner_(std::move(inner)), log_(std::move(log)), clock_(clock) {}

Expected<Decision> AuditingPolicySource::Authorize(
    const AuthorizationRequest& request) {
  AuditRecord record;
  record.time = clock_->Now();
  record.source = inner_->name();
  record.subject = request.subject;
  record.action = request.action;
  record.job_owner = request.job_owner;
  record.job_id = request.job_id;
  record.rsl = request.job_rsl.empty() ? "" : request.job_rsl.ToString();
  record.trace_id = obs::CurrentTraceId();

  Expected<Decision> decision = inner_->Authorize(request);
  if (!decision.ok()) {
    record.outcome = AuditOutcome::kSystemFailure;
    record.reason = decision.error().to_string();
  } else if (decision->permitted()) {
    record.outcome = AuditOutcome::kPermit;
    record.reason = decision->reason;
  } else {
    record.outcome = AuditOutcome::kDeny;
    record.reason = decision->reason;
  }
  log_->Append(std::move(record));
  return decision;
}

}  // namespace gridauthz::core
