#include "core/audit.h"

#include "core/audit_sink.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::core {

std::string_view to_string(AuditOutcome outcome) {
  switch (outcome) {
    case AuditOutcome::kPermit:
      return "PERMIT";
    case AuditOutcome::kDeny:
      return "DENY";
    case AuditOutcome::kSystemFailure:
      return "SYSTEM-FAILURE";
  }
  return "?";
}

Expected<AuditOutcome> AuditOutcomeFromString(std::string_view text) {
  if (text == "PERMIT") return AuditOutcome::kPermit;
  if (text == "DENY") return AuditOutcome::kDeny;
  if (text == "SYSTEM-FAILURE") return AuditOutcome::kSystemFailure;
  return Error{ErrCode::kParseError,
               "unknown audit outcome '" + std::string{text} + "'"};
}

std::string AuditRecord::ToLine() const {
  std::string out = "t=" + std::to_string(time);
  out += " outcome=" + std::string{to_string(outcome)};
  out += " source=" + source;
  out += " subject=\"" + subject + "\"";
  out += " action=" + action;
  if (!job_owner.empty() && job_owner != subject) {
    out += " jobowner=\"" + job_owner + "\"";
  }
  if (!job_id.empty()) out += " job=" + job_id;
  if (!reason.empty()) out += " reason=\"" + reason + "\"";
  if (!trace_id.empty()) out += " trace=" + trace_id;
  if (retry_attempt > 0) out += " retry-attempt=" + std::to_string(retry_attempt);
  return out;
}

AuditLog::AuditLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void AuditLog::Append(AuditRecord record) {
  obs::Metrics().GetCounter("audit_records_total").Increment();
  std::lock_guard lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
  obs::Metrics().GetCounter("audit_records_dropped_total").Increment();
}

std::size_t AuditLog::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::uint64_t AuditLog::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

template <typename Fn>
void AuditLog::ForEach(Fn&& fn) const {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    fn(ring_[(head_ + i) % ring_.size()]);
  }
}

std::vector<AuditRecord> AuditLog::records() const {
  std::vector<AuditRecord> out;
  ForEach([&out](const AuditRecord& record) { out.push_back(record); });
  return out;
}

std::vector<AuditRecord> AuditLog::Query(
    const std::optional<std::string>& subject,
    const std::optional<std::string>& action,
    const std::optional<AuditOutcome>& outcome) const {
  std::vector<AuditRecord> out;
  ForEach([&](const AuditRecord& record) {
    if (subject && record.subject != *subject) return;
    if (action && record.action != *action) return;
    if (outcome && record.outcome != *outcome) return;
    out.push_back(record);
  });
  return out;
}

std::vector<AuditRecord> AuditLog::FailuresFor(
    const std::string& subject) const {
  std::vector<AuditRecord> out;
  ForEach([&](const AuditRecord& record) {
    if (record.subject == subject && record.outcome != AuditOutcome::kPermit) {
      out.push_back(record);
    }
  });
  return out;
}

std::string AuditLog::ToText() const {
  std::string out;
  ForEach([&out](const AuditRecord& record) {
    out += record.ToLine();
    out += '\n';
  });
  return out;
}

AuditingPolicySource::AuditingPolicySource(std::shared_ptr<PolicySource> inner,
                                           std::shared_ptr<AuditLog> log,
                                           const Clock* clock,
                                           AuditingOptions options)
    : inner_(std::move(inner)),
      log_(std::move(log)),
      clock_(clock),
      options_(std::move(options)) {}

void AuditingPolicySource::Emit(AuditRecord record) {
  // Ring log takes the copy, the sink takes the moved original: the
  // sink's queue then carries the record's existing allocations instead
  // of fresh ones — this path is on the PEP's critical section.
  if (options_.sink != nullptr) {
    log_->Append(record);
    options_.sink->Submit(std::move(record));
    return;
  }
  log_->Append(std::move(record));
}

Expected<Decision> AuditingPolicySource::Authorize(
    const AuthorizationRequest& request) {
  // Collect provenance for this call: reuse the caller's scope (a PEP or
  // explain tool may have opened one) or install our own.
  std::optional<ProvenanceScope> scope;
  if (options_.collect_provenance && CurrentProvenance() == nullptr) {
    scope.emplace();
  }
  DecisionProvenance* prov =
      options_.collect_provenance ? CurrentProvenance() : nullptr;
  // Failed attempts already present belong to an earlier call audited
  // under the same shared scope; only attempts added below are ours.
  const std::size_t attempts_before =
      prov != nullptr ? prov->failed_attempts.size() : 0;

  AuditRecord record;
  record.time = clock_->Now();
  record.source = inner_->name();
  record.subject = request.subject;
  record.action = request.action;
  record.job_owner = request.job_owner;
  record.job_id = request.job_id;
  record.rsl = request.job_rsl.empty() ? "" : request.job_rsl.ToString();
  record.trace_id = obs::CurrentTraceId();

  Expected<Decision> decision = inner_->Authorize(request);
  if (!decision.ok()) {
    record.outcome = AuditOutcome::kSystemFailure;
    record.reason = decision.error().to_string();
  } else if (decision->permitted()) {
    record.outcome = AuditOutcome::kPermit;
    record.reason = decision->reason;
  } else {
    record.outcome = AuditOutcome::kDeny;
    record.reason = decision->reason;
  }

  if (prov != nullptr) {
    // One record per failed attempt of a retried call, emitted before
    // the final record (the order they happened). Incident review must
    // see the transient failures, not just the eventual outcome.
    if (options_.per_attempt_records) {
      for (std::size_t i = attempts_before;
           i < prov->failed_attempts.size(); ++i) {
        const FailedAttempt& failed = prov->failed_attempts[i];
        AuditRecord attempt = record;
        attempt.outcome = AuditOutcome::kSystemFailure;
        attempt.reason = failed.error;
        attempt.retry_attempt = failed.attempt;
        Emit(std::move(attempt));
      }
    }
    record.provenance = *prov;
    record.has_provenance = true;
  }
  Emit(std::move(record));
  return decision;
}

}  // namespace gridauthz::core
