#include "core/audit.h"

namespace gridauthz::core {

std::string_view to_string(AuditOutcome outcome) {
  switch (outcome) {
    case AuditOutcome::kPermit:
      return "PERMIT";
    case AuditOutcome::kDeny:
      return "DENY";
    case AuditOutcome::kSystemFailure:
      return "SYSTEM-FAILURE";
  }
  return "?";
}

std::string AuditRecord::ToLine() const {
  std::string out = "t=" + std::to_string(time);
  out += " outcome=" + std::string{to_string(outcome)};
  out += " source=" + source;
  out += " subject=\"" + subject + "\"";
  out += " action=" + action;
  if (!job_owner.empty() && job_owner != subject) {
    out += " jobowner=\"" + job_owner + "\"";
  }
  if (!job_id.empty()) out += " job=" + job_id;
  if (!reason.empty()) out += " reason=\"" + reason + "\"";
  return out;
}

void AuditLog::Append(AuditRecord record) {
  records_.push_back(std::move(record));
}

std::vector<AuditRecord> AuditLog::Query(
    const std::optional<std::string>& subject,
    const std::optional<std::string>& action,
    const std::optional<AuditOutcome>& outcome) const {
  std::vector<AuditRecord> out;
  for (const AuditRecord& record : records_) {
    if (subject && record.subject != *subject) continue;
    if (action && record.action != *action) continue;
    if (outcome && record.outcome != *outcome) continue;
    out.push_back(record);
  }
  return out;
}

std::vector<AuditRecord> AuditLog::FailuresFor(
    const std::string& subject) const {
  std::vector<AuditRecord> out;
  for (const AuditRecord& record : records_) {
    if (record.subject == subject && record.outcome != AuditOutcome::kPermit) {
      out.push_back(record);
    }
  }
  return out;
}

std::string AuditLog::ToText() const {
  std::string out;
  for (const AuditRecord& record : records_) {
    out += record.ToLine();
    out += '\n';
  }
  return out;
}

AuditingPolicySource::AuditingPolicySource(std::shared_ptr<PolicySource> inner,
                                           std::shared_ptr<AuditLog> log,
                                           const Clock* clock)
    : inner_(std::move(inner)), log_(std::move(log)), clock_(clock) {}

Expected<Decision> AuditingPolicySource::Authorize(
    const AuthorizationRequest& request) {
  AuditRecord record;
  record.time = clock_->Now();
  record.source = inner_->name();
  record.subject = request.subject;
  record.action = request.action;
  record.job_owner = request.job_owner;
  record.job_id = request.job_id;
  record.rsl = request.job_rsl.empty() ? "" : request.job_rsl.ToString();

  Expected<Decision> decision = inner_->Authorize(request);
  if (!decision.ok()) {
    record.outcome = AuditOutcome::kSystemFailure;
    record.reason = decision.error().to_string();
  } else if (decision->permitted()) {
    record.outcome = AuditOutcome::kPermit;
    record.reason = decision->reason;
  } else {
    record.outcome = AuditOutcome::kDeny;
    record.reason = decision->reason;
  }
  log_->Append(std::move(record));
  return decision;
}

}  // namespace gridauthz::core
