// HMAC-signed capability tokens for the data path (DESIGN.md §17).
//
// A token is minted once per transfer session after a full path-scope
// evaluation, and binds everything a per-file/per-block check needs:
//
//   gacap1.s24:<subject>o26:<scope>r:3,g:7,e:1700000123456789.<mac-hex>
//
// The payload uses netstring-style length prefixes for the two
// free-text fields (subject DN, normalized scope URL), so no escaping
// is needed and verification parses with string_views — zero
// allocation. The MAC is HMAC-SHA-256 over "gacap1." + payload under a
// service-local key, hex-encoded; verification recomputes it from
// cached ipad/opad midstates (common/hmac.h) and compares in constant
// time.
//
// Fail-closed contract: every malformed, forged, truncated, expired,
// stale-generation, or out-of-scope presentation is an Error whose
// message starts with a typed tag — kReasonTokenInvalid /
// kReasonTokenExpired / kReasonTokenStale / kReasonTokenScope /
// kReasonPathInvalid (common/error.h). There is no untyped failure.
//
// CheckAccess is the transfer-rate fast path: one MAC + scope/rights
// check, no evaluator, no cache probe, no allocation. A small
// per-thread direct-mapped memo of recently verified token bytes skips
// the MAC recompute when the same session presents the same token for
// every block of a striped transfer; expiry, generation, scope, and
// rights are still re-checked on every call (they depend on the check,
// not the token bytes).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/error.h"
#include "common/hmac.h"
#include "core/pathscope.h"

namespace gridauthz::core {

inline constexpr std::string_view kCapTokenPrefix = "gacap1.";

// What a token binds. `scope` is a normalized origin+path prefix
// (NormalizeObjectUrl display form); checks pass only for objects at or
// under it.
struct CapabilityClaims {
  std::string subject;
  std::string scope;
  RightsMask rights = 0;
  std::uint64_t generation = 0;  // policy generation at mint time
  std::int64_t expiry_us = 0;    // absolute, Clock::NowMicros scale
};

// Mints and verifies tokens under one symmetric key. Immutable after
// construction; safe to share across threads (the memo is per-thread).
class CapabilityTokenCodec {
 public:
  explicit CapabilityTokenCodec(std::string_view key,
                                const Clock* clock = nullptr);

  std::string Mint(const CapabilityClaims& claims) const;

  // Full verification: parse, MAC (constant-time compare), expiry
  // against the codec clock, generation against `current_generation`.
  // Returns the claims (allocates — session setup / refresh path only).
  Expected<CapabilityClaims> Verify(std::string_view token,
                                    std::uint64_t current_generation) const;

  // The data-path check: everything Verify does, plus object coverage
  // (scope is a segment-boundary prefix of the normalized object) and
  // rights membership — with no allocation on the success path.
  // `object` must already be normalized (NormalizedObject::Display
  // form); the caller normalizes once per file, not once per block.
  Expected<void> CheckAccess(std::string_view token, std::string_view object,
                             RightsMask right,
                             std::uint64_t current_generation) const;

  // Like Verify but skips the generation comparison: used by the
  // refresh path, which must trust an authentic-but-stale token's
  // claims to know what to re-evaluate.
  Expected<CapabilityClaims> VerifyIgnoringGeneration(
      std::string_view token) const;

 private:
  Expected<void> VerifyMac(std::string_view token) const;
  Expected<void> CheckTemporal(std::uint64_t token_generation,
                               std::int64_t expiry_us,
                               std::uint64_t current_generation) const;

  crypto::HmacKey key_;
  std::uint64_t memo_uid_;   // distinguishes codecs in the thread memo
  std::uint64_t hash_seed_;  // derived from the key, not guessable
  const Clock* clock_;
  SystemClock fallback_clock_;
};

}  // namespace gridauthz::core
