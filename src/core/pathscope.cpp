#include "core/pathscope.h"

#include <algorithm>

#include "common/strings.h"
#include "core/policy.h"

namespace gridauthz::core {

namespace {

struct RightName {
  std::string_view name;
  RightsMask bit;
};

constexpr RightName kRightNames[] = {
    {"read", kRightRead},
    {"write", kRightWrite},
    {"delete", kRightDelete},
    {"list", kRightList},
};

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

char AsciiLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

// Percent-decodes and segment-normalizes `raw` (which may be empty or
// start with '/'). Returns the canonical "/a/b" form ("" = root).
Expected<std::string> NormalizePathText(std::string_view raw) {
  // Decode escapes first; an encoded slash or NUL is rejected rather
  // than decoded, because either would let a path alias across the
  // segment boundaries the prefix checks rely on.
  std::string decoded;
  decoded.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c != '%') {
      if (c == '\0') {
        return Error{ErrCode::kInvalidArgument, "NUL byte in object path"};
      }
      decoded.push_back(c);
      continue;
    }
    if (i + 2 >= raw.size()) {
      return Error{ErrCode::kInvalidArgument,
                   "truncated percent-escape in object path"};
    }
    const int hi = HexNibble(raw[i + 1]);
    const int lo = HexNibble(raw[i + 2]);
    if (hi < 0 || lo < 0) {
      return Error{ErrCode::kInvalidArgument,
                   "malformed percent-escape in object path"};
    }
    const char value = static_cast<char>((hi << 4) | lo);
    if (value == '/') {
      return Error{ErrCode::kInvalidArgument,
                   "encoded slash (%2F) in object path"};
    }
    if (value == '\0') {
      return Error{ErrCode::kInvalidArgument,
                   "encoded NUL (%00) in object path"};
    }
    decoded.push_back(value);
    i += 2;
  }

  std::string out;
  out.reserve(decoded.size());
  std::size_t pos = 0;
  while (pos < decoded.size()) {
    while (pos < decoded.size() && decoded[pos] == '/') ++pos;
    if (pos >= decoded.size()) break;
    std::size_t end = decoded.find('/', pos);
    if (end == std::string::npos) end = decoded.size();
    std::string_view segment(decoded.data() + pos, end - pos);
    if (segment == "." || segment == "..") {
      return Error{ErrCode::kInvalidArgument,
                   "dot segment ('" + std::string{segment} +
                       "') in object path"};
    }
    out.push_back('/');
    out.append(segment);
    pos = end;
  }
  return out;
}

}  // namespace

Expected<RightsMask> ParseRightsMask(std::string_view text) {
  RightsMask mask = 0;
  for (const std::string& piece : strings::Split(text, ',')) {
    bool known = false;
    for (const RightName& rn : kRightNames) {
      if (piece == rn.name) {
        if (mask & rn.bit) {
          return Error{ErrCode::kInvalidArgument,
                       "duplicate right '" + piece + "'"};
        }
        mask = static_cast<RightsMask>(mask | rn.bit);
        known = true;
        break;
      }
    }
    if (!known) {
      return Error{ErrCode::kInvalidArgument, "unknown right '" + piece + "'"};
    }
  }
  if (mask == 0) {
    return Error{ErrCode::kInvalidArgument, "empty rights list"};
  }
  return mask;
}

std::string RightsMaskToString(RightsMask mask) {
  std::string out;
  for (const RightName& rn : kRightNames) {
    if (mask & rn.bit) {
      if (!out.empty()) out.push_back(',');
      out.append(rn.name);
    }
  }
  return out.empty() ? std::string{"none"} : out;
}

Expected<RightsMask> RightForAction(std::string_view action) {
  if (action == "get" || action == "read") return kRightRead;
  if (action == "put" || action == "write") return kRightWrite;
  if (action == "delete") return RightsMask{kRightDelete};
  if (action == "list") return RightsMask{kRightList};
  return Error{ErrCode::kInvalidArgument,
               "no object right for action '" + std::string{action} + "'"};
}

Expected<NormalizedObject> NormalizeObjectUrl(std::string_view url) {
  const std::string_view trimmed = strings::Trim(url);
  const std::size_t scheme_end = trimmed.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return Error{ErrCode::kInvalidArgument,
                 "object url must be scheme://authority[/path]"};
  }
  for (char c : trimmed.substr(0, scheme_end)) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.';
    if (!ok) {
      return Error{ErrCode::kInvalidArgument, "invalid scheme in object url"};
    }
  }
  std::string_view rest = trimmed.substr(scheme_end + 3);
  const std::size_t slash = rest.find('/');
  const std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  if (authority.empty()) {
    return Error{ErrCode::kInvalidArgument, "empty authority in object url"};
  }
  if (authority.find('%') != std::string_view::npos) {
    return Error{ErrCode::kInvalidArgument,
                 "percent-escape in object url authority"};
  }
  NormalizedObject out;
  out.origin.reserve(scheme_end + 3 + authority.size());
  for (char c : trimmed.substr(0, scheme_end)) out.origin.push_back(AsciiLower(c));
  out.origin.append("://");
  for (char c : authority) out.origin.push_back(AsciiLower(c));
  if (slash != std::string_view::npos) {
    auto path = NormalizePathText(rest.substr(slash));
    if (!path.ok()) return path.error();
    out.path = std::move(path).value();
  }
  return out;
}

Expected<std::string> NormalizeObjectPath(std::string_view path) {
  const std::string_view trimmed = strings::Trim(path);
  if (trimmed.empty() || trimmed.front() != '/') {
    return Error{ErrCode::kInvalidArgument,
                 "object path must start with '/'"};
  }
  return NormalizePathText(trimmed);
}

bool PathSegmentPrefix(std::string_view prefix, std::string_view path) {
  if (prefix.empty()) return true;
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

std::size_t PathSegmentCount(std::string_view path) {
  // Normalized paths are "" or "/a/b/...": one segment per '/'.
  return static_cast<std::size_t>(std::count(path.begin(), path.end(), '/'));
}

Expected<PathScopeStatement> PathScopeStatement::Create(
    std::string subject, std::string_view url_base,
    std::vector<ObjectEntry> entries) {
  PathScopeStatement out;
  out.subject_prefix = std::move(subject);
  auto parsed_subject = gsi::DnPrefix::Parse(out.subject_prefix);
  if (!parsed_subject.ok()) {
    return Error{ErrCode::kParseError,
                 "scope subject is not a valid DN prefix: " +
                     parsed_subject.error().message()};
  }
  out.parsed_subject = std::move(parsed_subject).value();

  auto base = NormalizeObjectUrl(url_base);
  if (!base.ok()) {
    return Error{ErrCode::kParseError,
                 "scope url-base: " + base.error().message()};
  }
  out.origin = std::move(base.value().origin);
  out.base_path = std::move(base.value().path);

  if (entries.empty()) {
    return Error{ErrCode::kParseError,
                 "scope for " + out.subject_prefix + " has no object entries"};
  }
  for (ObjectEntry& entry : entries) {
    auto normalized = NormalizeObjectPath(entry.path);
    if (!normalized.ok()) {
      return Error{ErrCode::kParseError,
                   "scope object '" + entry.path + "': " +
                       normalized.error().message()};
    }
    entry.path = std::move(normalized).value();
    if (entry.rights == 0) {
      return Error{ErrCode::kParseError,
                   "scope object '" + entry.path + "' grants no rights"};
    }
  }
  std::vector<ObjectEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const ObjectEntry& a, const ObjectEntry& b) {
              return a.path < b.path;
            });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].path == sorted[i - 1].path) {
      return Error{ErrCode::kParseError,
                   "duplicate scope object path '" +
                       (sorted[i].path.empty() ? std::string{"/"}
                                               : sorted[i].path) +
                       "'"};
    }
  }
  out.entries = std::move(entries);
  return out;
}

bool PathScopeStatement::AppliesTo(const gsi::DistinguishedName* identity,
                                   bool slash_rooted) const {
  std::optional<gsi::DnPrefix> local;
  const gsi::DnPrefix* prefix = nullptr;
  if (parsed_subject.has_value()) {
    prefix = &*parsed_subject;
  } else {
    auto parsed = gsi::DnPrefix::Parse(subject_prefix);
    if (!parsed.ok()) return false;
    local = std::move(parsed).value();
    prefix = &*local;
  }
  if (prefix->is_root()) return slash_rooted;
  return identity != nullptr && prefix->Matches(*identity);
}

namespace pathscope_detail {

std::string ReasonInvalidObject(const Error& error) {
  return "[path-invalid] object url rejected: " + error.message();
}

std::string ReasonNoApplicable(std::string_view subject) {
  return "no path-scope statement applies to " + std::string{subject};
}

std::string ReasonNoEntry(const NormalizedObject& object,
                          std::string_view subject) {
  return "no object entry covers " + object.Display() + " for " +
         std::string{subject};
}

std::string ReasonRightsExcluded(RightsMask resolved, std::string_view matched,
                                 std::string_view statement_subject,
                                 RightsMask requested) {
  return "rights '" + RightsMaskToString(resolved) + "' at '" +
         std::string{matched} + "' (scope for '" +
         std::string{statement_subject} + "') do not include '" +
         RightsMaskToString(requested) + "'";
}

std::string ReasonGranted(RightsMask requested, std::string_view matched,
                          std::string_view statement_subject) {
  return "granted '" + RightsMaskToString(requested) + "' at '" +
         std::string{matched} + "' by path scope for '" +
         std::string{statement_subject} + "'";
}

}  // namespace pathscope_detail

namespace {

ObjectResolution ResolveNaive(const PolicyDocument& document,
                              std::string_view subject,
                              const NormalizedObject& object) {
  const std::string_view trimmed = strings::Trim(subject);
  const bool slash_rooted = !trimmed.empty() && trimmed.front() == '/';
  auto parsed = gsi::DistinguishedName::Parse(trimmed);
  const gsi::DistinguishedName* identity = parsed.ok() ? &*parsed : nullptr;

  ObjectResolution resolution;
  const auto& scopes = document.path_scopes();
  for (std::size_t i = 0; i < scopes.size(); ++i) {
    const PathScopeStatement& scope = scopes[i];
    if (!scope.AppliesTo(identity, slash_rooted)) continue;
    resolution.any_applicable = true;
    if (scope.origin != object.origin) continue;
    if (!PathSegmentPrefix(scope.base_path, object.path)) continue;
    const std::string_view rel =
        std::string_view{object.path}.substr(scope.base_path.size());
    const int base_depth =
        static_cast<int>(PathSegmentCount(scope.base_path));
    for (const ObjectEntry& entry : scope.entries) {
      if (!PathSegmentPrefix(entry.path, rel)) continue;
      const int depth =
          base_depth + static_cast<int>(PathSegmentCount(entry.path));
      if (depth > resolution.best_depth) {
        resolution.best_depth = depth;
        resolution.rights = entry.rights;
        resolution.statement = i;
      } else if (depth == resolution.best_depth) {
        resolution.rights =
            static_cast<RightsMask>(resolution.rights | entry.rights);
      }
    }
  }
  return resolution;
}

// The absolute matched prefix display: the object's origin plus its
// first `depth` segments. Identical for every entry matching at that
// depth, so both evaluators can render it from the object alone.
std::string MatchedPrefixDisplay(const NormalizedObject& object, int depth) {
  if (depth <= 0) return object.origin;
  std::size_t pos = 0;
  int seen = 0;
  while (pos < object.path.size()) {
    std::size_t next = object.path.find('/', pos + 1);
    if (next == std::string::npos) next = object.path.size();
    ++seen;
    if (seen == depth) {
      return object.origin + object.path.substr(0, next);
    }
    pos = next;
  }
  return object.origin + object.path;
}

}  // namespace

Decision DecideObject(const ObjectResolution& resolution,
                      const PolicyDocument& document,
                      std::string_view subject, const NormalizedObject& object,
                      RightsMask right) {
  namespace detail = pathscope_detail;
  if (!resolution.any_applicable) {
    return Decision::Deny(DecisionCode::kDenyNoApplicableStatement,
                          detail::ReasonNoApplicable(subject));
  }
  if (resolution.best_depth < 0) {
    return Decision::Deny(DecisionCode::kDenyNoPermission,
                          detail::ReasonNoEntry(object, subject));
  }
  const std::string matched =
      MatchedPrefixDisplay(object, resolution.best_depth);
  const std::string& statement_subject =
      document.path_scopes()[resolution.statement].subject_prefix;
  if ((resolution.rights & right) != right) {
    return Decision::Deny(
        DecisionCode::kDenyNoPermission,
        detail::ReasonRightsExcluded(resolution.rights, matched,
                                     statement_subject, right));
  }
  return Decision::Permit(
      detail::ReasonGranted(right, matched, statement_subject));
}

Decision EvaluateObjectNaive(const PolicyDocument& document,
                             std::string_view subject,
                             std::string_view object_url, RightsMask right) {
  auto object = NormalizeObjectUrl(object_url);
  if (!object.ok()) {
    return Decision::Deny(DecisionCode::kDenyInvalidObject,
                          pathscope_detail::ReasonInvalidObject(object.error()));
  }
  const ObjectResolution resolution =
      ResolveNaive(document, subject, object.value());
  return DecideObject(resolution, document, subject, object.value(), right);
}

Expected<ScopeGrant> ResolveSessionScope(const PolicyDocument& document,
                                         std::string_view subject,
                                         std::string_view url_base) {
  auto base = NormalizeObjectUrl(url_base);
  if (!base.ok()) {
    return Error{ErrCode::kAuthorizationDenied,
                 pathscope_detail::ReasonInvalidObject(base.error())};
  }
  const NormalizedObject& object = base.value();
  const ObjectResolution at_base = ResolveNaive(document, subject, object);
  if (!at_base.any_applicable) {
    return Error{ErrCode::kAuthorizationDenied,
                 pathscope_detail::ReasonNoApplicable(subject)};
  }
  if (at_base.best_depth < 0) {
    return Error{ErrCode::kAuthorizationDenied,
                 pathscope_detail::ReasonNoEntry(object, subject)};
  }

  // Conservative subtree mask: start from the base's longest-prefix
  // resolution and AND in every applicable entry strictly below the
  // base. Any object under the base resolves either to the base's own
  // winning entries or to a deeper entry — whose rights are already
  // ANDed in — so the grant never exceeds a full evaluation.
  RightsMask mask = at_base.rights;
  const std::string_view trimmed = strings::Trim(subject);
  const bool slash_rooted = !trimmed.empty() && trimmed.front() == '/';
  auto parsed = gsi::DistinguishedName::Parse(trimmed);
  const gsi::DistinguishedName* identity = parsed.ok() ? &*parsed : nullptr;
  for (const PathScopeStatement& scope : document.path_scopes()) {
    if (!scope.AppliesTo(identity, slash_rooted)) continue;
    if (scope.origin != object.origin) continue;
    for (const ObjectEntry& entry : scope.entries) {
      const std::string absolute = scope.base_path + entry.path;
      if (absolute.size() > object.path.size() &&
          PathSegmentPrefix(object.path, absolute)) {
        mask = static_cast<RightsMask>(mask & entry.rights);
      }
    }
  }
  if (mask == 0) {
    return Error{ErrCode::kAuthorizationDenied,
                 "subtree rights at " + object.Display() + " for " +
                     std::string{subject} + " are empty"};
  }
  return ScopeGrant{object.Display(), mask};
}

}  // namespace gridauthz::core
