// The indexed evaluation fast path (DESIGN.md §9).
//
// A CompiledPolicyDocument is a PolicyDocument lowered into read-only
// lookup structures at load time so the per-request path allocates
// almost nothing:
//
//  * subject trie — statements are indexed by their parsed subject
//    components ("O=Grid" → "O=Globus" → ...). ApplicableTo walks the
//    requester's DN once instead of matching every statement, so lookup
//    cost scales with DN depth, not statement count.
//  * compiled assertion sets — the per-set work PolicyEvaluator::
//    SetSatisfied redoes on every call (gathering '=' alternatives into
//    a std::set, re-rendering failure strings, re-parsing numeric
//    bounds) is done once here. Evaluation walks precomputed tables
//    against a per-request attribute index built once per Evaluate.
//
// Decisions are bit-identical to PolicyEvaluator — same DecisionCode
// AND the same reason strings — which the compiled-vs-naive property
// test enforces. Instances are immutable after construction and safe to
// share across threads; the snapshot sources in source.h publish them
// behind std::shared_ptr<const ...>.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "core/evaluator.h"
#include "core/policy.h"
#include "core/request.h"

namespace gridauthz::core {

class CompiledPolicyDocument {
 public:
  explicit CompiledPolicyDocument(PolicyDocument document,
                                  EvaluatorOptions options = {});

  const PolicyDocument& document() const { return document_; }
  const EvaluatorOptions& options() const { return options_; }
  std::size_t size() const { return document_.size(); }

  // Same contract as PolicyDocument::ApplicableTo: statements applying
  // to `identity`, in document order — served from the subject trie.
  std::vector<const PolicyStatement*> ApplicableTo(
      std::string_view identity) const;

  // Same decisions (codes and reason strings) as
  // PolicyEvaluator::Evaluate over the same document and options.
  Decision Evaluate(const AuthorizationRequest& request) const;

  // Object/path-scope evaluation (data path). Same decisions — codes
  // AND reason strings — as EvaluateObjectNaive over the same document,
  // enforced by property P9. Served from a second subject trie over the
  // scope statements plus a path-segment trie (origin, then segments)
  // holding the per-entry rights: lookup cost scales with DN depth +
  // object depth, not statement count.
  Decision EvaluateObject(std::string_view subject,
                          std::string_view object_url, RightsMask right) const;

  bool has_path_scopes() const { return !document_.path_scopes().empty(); }

 private:
  // One precompiled non-'=' relation, evaluated in original set order.
  struct CompiledRelation {
    std::string attribute;
    rsl::RelOp op = rsl::RelOp::kNeq;
    std::vector<std::string> values;        // raw; `self` resolved per request
    std::optional<std::int64_t> bound;      // numeric ops; nullopt = unusable
    std::string text;                       // Relation::ToString for failures
  };

  // '=' relations for one attribute, merged: the values are
  // alternatives, NULL lifted out as allows_absent.
  struct EqEntry {
    std::string attribute;
    bool allows_absent = false;
    std::vector<std::string> allowed;  // raw; `self` resolved per request
    std::string representative_text;   // last '=' relation, for failures
  };

  // The evaluatable core of a conjunction.
  struct SetBody {
    std::vector<EqEntry> eq;               // sorted by attribute
    std::vector<CompiledRelation> others;  // non-'=' in set order
  };

  struct CompiledSet {
    SetBody body;
    std::vector<std::string> mentioned;  // sorted attributes, strict mode
    bool applies_to_all_actions = true;  // no `action` relation in the set
    SetBody action_part;                 // just the `action` relations
  };

  struct CompiledStatement {
    const PolicyStatement* statement = nullptr;
    std::vector<CompiledSet> sets;
  };

  struct TrieNode {
    // Keyed by "TYPE=value" (types uppercased at parse time).
    std::vector<std::pair<std::string, std::unique_ptr<TrieNode>>> children;
    std::vector<std::size_t> statements;  // doc-order indices ending here
  };

  // Path trie over scope entries: the first edge is the normalized
  // origin ("gsiftp://host"), every further edge one path segment.
  struct PathTrieNode {
    std::vector<std::pair<std::string, std::unique_ptr<PathTrieNode>>>
        children;
    // (scope statement index, entry rights) for entries whose absolute
    // prefix (base + entry path) terminates at this node.
    std::vector<std::pair<std::size_t, RightsMask>> entries;
  };

  class RequestIndex;

  static SetBody CompileBody(const std::vector<const rsl::Relation*>& relations);
  static CompiledSet CompileSet(const rsl::Conjunction& set);
  TrieNode* Child(TrieNode* node, const std::string& key);
  const TrieNode* FindChild(const TrieNode* node, std::string_view key) const;

  // Doc-order indices of statements whose subject covers `identity`.
  // Arena-backed: inside a request scope the result is bump-allocated
  // and freed wholesale with the request; outside one the allocator
  // falls back to the heap.
  ArenaVector<std::size_t> Lookup(std::string_view identity) const;

  // Same, over the scope-statement subject trie.
  ArenaVector<std::size_t> LookupScopes(std::string_view identity) const;

  static PathTrieNode* PathChild(PathTrieNode* node, std::string_view key);
  static const PathTrieNode* FindPathChild(const PathTrieNode* node,
                                           std::string_view key);

  static bool BodySatisfied(const SetBody& body, const RequestIndex& index,
                            std::string_view subject,
                            std::string* failed_relation = nullptr);

  Decision EvaluateImpl(const AuthorizationRequest& request) const;

  PolicyDocument document_;
  EvaluatorOptions options_;
  std::vector<CompiledStatement> compiled_;  // parallel to statements()
  TrieNode root_;
  TrieNode scope_root_;   // subject components → path_scopes() indices
  PathTrieNode path_root_;
};

}  // namespace gridauthz::core
