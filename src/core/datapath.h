// The data-plane authorizer (DESIGN.md §17): one full path-scope
// evaluation at session setup mints a capability token; every
// subsequent per-file/per-block check is CapabilityTokenCodec::
// CheckAccess — O(token-verify), no evaluator, no cache probe.
//
// Generation fallback: a policy-generation bump invalidates every
// outstanding token ([token-stale]). Check() then re-evaluates the
// token's scope against the CURRENT policy and, if the subject still
// holds rights there, re-mints — the caller swaps in the refreshed
// token and the transfer continues without re-opening the session. Any
// other failure stays a typed fail-closed deny.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/error.h"
#include "core/captoken.h"
#include "core/compiled.h"
#include "core/pathscope.h"
#include "core/source.h"
#include "obs/instrument.h"

namespace gridauthz::core {

struct DataPathParams {
  // The current compiled policy and its generation. Generation is read
  // BEFORE the snapshot when minting, so a racing policy swap can only
  // produce a token that is stale against the new generation (fails
  // closed, then refreshes) — never one that outlives the policy it was
  // minted from.
  std::function<std::shared_ptr<const CompiledPolicyDocument>()> snapshot;
  std::function<std::uint64_t()> generation;
  // Symmetric key for the token MAC; service-local.
  std::string hmac_key;
  const Clock* clock = nullptr;  // null = SystemClock
  std::int64_t token_ttl_us = 600'000'000;  // 10 minutes
};

struct SessionToken {
  std::string token;
  CapabilityClaims claims;
};

class DataPathAuthorizer {
 public:
  explicit DataPathAuthorizer(DataPathParams params);

  // Convenience: serve policy + generation from a StaticPolicySource.
  DataPathAuthorizer(std::shared_ptr<StaticPolicySource> source,
                     std::string hmac_key, const Clock* clock = nullptr);

  // Session setup: one full evaluation (ResolveSessionScope — the
  // subtree-sound rights mask at `url_base`), then mint. A deny is a
  // typed error; no token is produced.
  Expected<SessionToken> MintSession(std::string_view subject,
                                     std::string_view url_base);

  // Re-evaluates an authentic (possibly stale-generation) token's scope
  // under the current policy and mints a replacement.
  Expected<SessionToken> Refresh(std::string_view token);

  struct CheckResult {
    // Set when a stale token was transparently re-minted; the caller
    // must present this token from now on.
    std::optional<std::string> refreshed;
  };

  // The per-file/per-block fast path. `object` is the normalized
  // object display (NormalizeObject) — normalize once per file, check
  // once per block. Success allocates nothing unless a refresh ran.
  Expected<CheckResult> Check(std::string_view token, std::string_view object,
                              RightsMask right);

  // Normalizes an object URL to the display form Check expects.
  static Expected<std::string> NormalizeObject(std::string_view url);

  const CapabilityTokenCodec& codec() const { return codec_; }
  std::uint64_t current_generation() const { return params_.generation(); }

 private:
  DataPathParams params_;
  SystemClock fallback_clock_;
  const Clock* clock_;  // params_.clock or fallback_clock_
  CapabilityTokenCodec codec_;

  // Token-path series (obs): mints by outcome, checks by outcome
  // (permit / deny / stale — stale also counts the fallback
  // re-evaluation), refreshes by outcome.
  obs::CounterHandle mints_ok_{"datapath_token_mints_total",
                               {{"outcome", "ok"}}};
  obs::CounterHandle mints_denied_{"datapath_token_mints_total",
                                   {{"outcome", "deny"}}};
  obs::CounterHandle checks_ok_{"datapath_token_checks_total",
                                {{"outcome", "permit"}}};
  obs::CounterHandle checks_denied_{"datapath_token_checks_total",
                                    {{"outcome", "deny"}}};
  obs::CounterHandle checks_stale_{"datapath_token_checks_total",
                                   {{"outcome", "stale"}}};
  obs::CounterHandle refreshes_ok_{"datapath_token_refreshes_total",
                                   {{"outcome", "ok"}}};
  obs::CounterHandle refreshes_denied_{"datapath_token_refreshes_total",
                                       {{"outcome", "deny"}}};
};

}  // namespace gridauthz::core
