// Durable audit persistence (DESIGN.md §10). The in-memory AuditLog ring
// answers "what happened recently"; a production authorization service
// must answer it across restarts. AuditSink is the abstraction; the
// JSONL FileAuditSink is the implementation:
//
//  * one schema-versioned flat JSON object per line ("v":1), so the file
//    is greppable, tail-able, and parseable with nothing but this repo;
//  * a bounded producer queue drained by a background flusher thread —
//    Submit() never blocks the PEP and never does I/O; when the queue is
//    full the record is dropped and counted (audit_sink_dropped_total),
//    because stalling authorization on a slow disk is the worse failure;
//  * size-based rotation: when the active file would exceed
//    max_file_bytes it becomes <path>.1 (older files shift up, the
//    oldest beyond max_rotated_files is deleted), bounding total disk;
//  * crash-safe shutdown: the destructor drains the queue, flushes, and
//    joins the flusher before returning;
//  * a reader/query API (subject / action / outcome / time-range) that
//    re-parses the files — the operator's incident-review entry point.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/audit.h"

namespace gridauthz::core {

// Serializes one record as a flat JSON object (no trailing newline).
// Every field — including the attached DecisionProvenance — round-trips
// byte-identically through AuditRecordFromJsonLine.
std::string AuditRecordToJsonLine(const AuditRecord& record);
Expected<AuditRecord> AuditRecordFromJsonLine(std::string_view line);

// Destination for audit records. Implementations must be thread-safe and
// must never block the submitting (PEP) thread on I/O.
class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void Submit(AuditRecord record) = 0;
  // Blocks until every record submitted so far is durably written.
  virtual void Flush() {}
};

struct FileAuditSinkOptions {
  std::string path;                      // active JSONL file
  std::size_t max_file_bytes = 1 << 20;  // rotate beyond this
  std::size_t max_rotated_files = 3;     // <path>.1 .. <path>.N kept
  std::size_t queue_capacity = 1024;     // producer queue; full = drop
};

struct AuditQuery {
  std::optional<std::string> subject;
  std::optional<std::string> action;
  std::optional<AuditOutcome> outcome;
  std::optional<TimePoint> time_min;  // inclusive
  std::optional<TimePoint> time_max;  // inclusive
};

class FileAuditSink final : public AuditSink {
 public:
  explicit FileAuditSink(FileAuditSinkOptions options);
  ~FileAuditSink() override;
  FileAuditSink(const FileAuditSink&) = delete;
  FileAuditSink& operator=(const FileAuditSink&) = delete;

  void Submit(AuditRecord record) override;
  void Flush() override;

  // Flushes, then re-reads the rotated files (oldest first) and the
  // active file, returning records matching every set filter. Fails on
  // unreadable or corrupt lines rather than silently skipping them.
  Expected<std::vector<AuditRecord>> Query(const AuditQuery& query);

  std::uint64_t written() const {
    return written_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  const FileAuditSinkOptions& options() const { return options_; }

 private:
  void FlusherLoop();
  // file_mu_ held by all three:
  void OpenLocked();
  void RotateLocked();
  // Serializes and writes a whole drained batch (single write per file,
  // rotating between writes as the size cap requires). Returns how many
  // records were written; the caller owns the metrics increments.
  std::size_t WriteBatchLocked(const std::deque<AuditRecord>& batch);

  std::string RotatedPath(std::size_t index) const;

  FileAuditSinkOptions options_;

  // Producer queue state.
  std::mutex mu_;
  std::condition_variable cv_;          // producers -> flusher
  std::condition_variable drained_cv_;  // flusher -> Flush()
  std::deque<AuditRecord> queue_;
  bool stop_ = false;
  bool writing_ = false;  // flusher mid-batch (queue already swapped out)

  // File state: flusher writes, Query reads; never under mu_.
  std::mutex file_mu_;
  std::ofstream out_;
  std::size_t current_bytes_ = 0;
  std::string buffer_;  // batch serialization buffer, reused across batches

  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> dropped_{0};

  std::thread flusher_;
};

}  // namespace gridauthz::core
