#include "core/provenance.h"

#include <charconv>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace gridauthz::core {

namespace {

thread_local DecisionProvenance* g_current = nullptr;

std::int64_t ParseIntOr(std::string_view s, std::int64_t fallback) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return fallback;
  return value;
}

}  // namespace

bool DecisionProvenance::empty() const {
  return evaluator.empty() && matched_statement.empty() &&
         decision_kind.empty() && policy_source.empty() && !cache_checked &&
         attempts == 0 && failed_attempts.empty() && breaker_state.empty() &&
         degrade_tag.empty() && pep_action.empty() && pep_job_id.empty() &&
         peer_trace_id.empty() && stages.empty();
}

std::string DecisionProvenance::ToText() const {
  std::string out;
  auto line = [&out](std::string_view key, const std::string& value) {
    if (value.empty()) return;
    out += "  ";
    out += key;
    out += ": ";
    out += value;
    out += '\n';
  };
  line("decision", decision_kind);
  line("matched statement", matched_statement);
  if (matched_set > 0) line("assertion set", std::to_string(matched_set));
  line("failed relation", failed_relation);
  line("evaluator", evaluator);
  line("policy source", policy_source);
  if (policy_generation > 0) {
    line("policy generation", std::to_string(policy_generation));
  }
  if (cache_checked) {
    line("decision cache", cache_hit ? "hit" : "miss");
    if (cache_generation > 0) {
      line("cache generation", std::to_string(cache_generation));
    }
  }
  if (attempts > 0) line("attempts", std::to_string(attempts));
  for (const FailedAttempt& failed : failed_attempts) {
    line("attempt " + std::to_string(failed.attempt) + " failed",
         failed.error);
  }
  line("breaker state", breaker_state);
  line("degraded", degrade_tag);
  line("pep action", pep_action);
  line("pep job", pep_job_id);
  line("peer trace", peer_trace_id);
  for (const ProvenanceStage& stage : stages) {
    line("stage " + stage.name, std::to_string(stage.duration_us) + "us");
  }
  if (out.empty()) out = "  (no provenance collected)\n";
  return out;
}

std::string DecisionProvenance::StagesToString() const {
  std::string out;
  for (const ProvenanceStage& stage : stages) {
    if (!out.empty()) out += ',';
    out += stage.name;
    out += ':';
    out += std::to_string(stage.duration_us);
  }
  return out;
}

std::vector<ProvenanceStage> DecisionProvenance::StagesFromString(
    std::string_view text) {
  std::vector<ProvenanceStage> out;
  for (std::string_view part : strings::Split(text, ',')) {
    if (part.empty()) continue;
    const std::size_t colon = part.rfind(':');
    if (colon == std::string_view::npos) continue;
    ProvenanceStage stage;
    stage.name = std::string{part.substr(0, colon)};
    stage.duration_us = ParseIntOr(part.substr(colon + 1), 0);
    out.push_back(std::move(stage));
  }
  return out;
}

std::string DecisionProvenance::FailedAttemptsToString() const {
  std::string out;
  for (const FailedAttempt& failed : failed_attempts) {
    if (!out.empty()) out += '\x1f';
    out += std::to_string(failed.attempt);
    out += ':';
    out += failed.error;
  }
  return out;
}

std::vector<FailedAttempt> DecisionProvenance::FailedAttemptsFromString(
    std::string_view text) {
  std::vector<FailedAttempt> out;
  for (std::string_view part :
       strings::Split(text, '\x1f', /*trim=*/false)) {
    if (part.empty()) continue;
    const std::size_t colon = part.find(':');
    if (colon == std::string_view::npos) continue;
    FailedAttempt failed;
    failed.attempt =
        static_cast<int>(ParseIntOr(part.substr(0, colon), 0));
    failed.error = std::string{part.substr(colon + 1)};
    out.push_back(std::move(failed));
  }
  return out;
}

DecisionProvenance* CurrentProvenance() { return g_current; }

ProvenanceScope::ProvenanceScope() : previous_(g_current) {
  g_current = &record_;
}

ProvenanceScope::~ProvenanceScope() { g_current = previous_; }

ProvenanceStageTimer::ProvenanceStageTimer(std::string_view name)
    : target_(g_current), name_(name) {
  profiled_ = obs::Profiler().Enter(name);
  if (target_ != nullptr || profiled_) {
    start_us_ = obs::ObsClock()->NowMicros();
  }
}

ProvenanceStageTimer::~ProvenanceStageTimer() {
  if (target_ == nullptr && !profiled_) {
    // Still exits the profiler's depth tracking (an unsampled stage
    // must not shift which stage counts as a root).
    obs::Profiler().Leave(false, 0);
    return;
  }
  const std::int64_t elapsed_us = obs::ObsClock()->NowMicros() - start_us_;
  obs::Profiler().Leave(profiled_, elapsed_us);
  if (target_ == nullptr) return;
  // Annotate the record captured at construction, not g_current: an
  // inner scope opened meanwhile must not receive this stage.
  target_->stages.push_back(ProvenanceStage{std::string{name_}, elapsed_us});
}

}  // namespace gridauthz::core
