// The decision cache on top of the snapshot fast path (DESIGN.md §9).
//
// Management actions (cancel / information / signal) on a long-running
// job ask the same question over and over: same subject, same job, same
// policy. ShardedDecisionCache memoizes those answers; shards bound lock
// contention under the job manager's concurrent callouts. Three rules
// keep it honest:
//
//  * `start` is NEVER cached — admitting new work must always consult
//    live policy (the same fail-closed stance the fault layer's
//    LastGoodCache takes, and the paper's default-deny);
//  * every entry is stamped with the source's policy generation; a
//    reload or Replace bumps the generation and orphans every older
//    entry, so no decision outlives the policy that produced it;
//  * entries expire after a TTL and are evicted LRU beyond capacity.
//
// CachingPolicySource wires the cache in front of any PolicySource that
// reports policy generations. It differs from fault::LastGoodCache in
// intent: that cache serves stale answers while the backend is DOWN;
// this one skips re-evaluating while policy is provably UNCHANGED.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/request.h"
#include "core/source.h"
#include "obs/contention.h"
#include "obs/instrument.h"

namespace gridauthz::core {

struct DecisionCacheOptions {
  std::size_t shard_count = 8;
  std::size_t capacity_per_shard = 256;  // entries; LRU beyond this
  std::int64_t ttl_us = 60'000'000;      // entry lifetime
};

class ShardedDecisionCache {
 public:
  explicit ShardedDecisionCache(DecisionCacheOptions options = {});

  // A fresh decision cached for `key` at `generation`, or nullopt.
  // Entries from other generations (and expired ones) are dropped on
  // contact.
  std::optional<Decision> Lookup(const std::string& key,
                                 std::uint64_t generation,
                                 std::int64_t now_us);

  void Record(const std::string& key, std::uint64_t generation,
              std::int64_t now_us, const Decision& decision);

  void Clear();
  std::size_t size() const;

 private:
  // Provenance captured when the entry was recorded: enough to let a
  // cache hit still name the statement that produced the decision
  // (DESIGN.md §10). Populated from / restored into the ambient
  // DecisionProvenance; empty when no collection scope was active.
  struct CachedProvenance {
    std::string evaluator;
    std::string matched_statement;
    int matched_set = 0;
    std::string decision_kind;
    std::string failed_relation;
    std::string policy_source;
  };
  struct Entry {
    Decision decision;
    std::uint64_t generation = 0;
    std::int64_t stored_at_us = 0;
    CachedProvenance provenance;
    std::list<std::string>::iterator lru_it;
  };
  struct Shard {
    // All shards charge one contention site: the interesting question
    // is "does the cache lock hurt", not which of 8 shards.
    obs::ProfiledMutex mu{"decision_cache/shard"};
    std::map<std::string, Entry> entries;
    std::list<std::string> lru;  // front = most recent
  };

  Shard& ShardFor(const std::string& key);

  DecisionCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Wraps a PolicySource with the decision cache. Only management actions
// with a non-zero inner policy generation are served from cache; start
// requests and generation-less sources pass straight through. Hits and
// misses are counted as authz_cache_hits_total / authz_cache_misses_total
// {source}.
class CachingPolicySource final : public PolicySource {
 public:
  CachingPolicySource(std::shared_ptr<PolicySource> inner,
                      DecisionCacheOptions options = {},
                      const Clock* clock = nullptr);  // null = obs clock

  const std::string& name() const override { return inner_->name(); }
  Expected<Decision> Authorize(const AuthorizationRequest& request) override;
  std::uint64_t policy_generation() const override {
    return inner_->policy_generation();
  }

  std::size_t cache_size() const { return cache_.size(); }

  // The cache key: everything a decision can depend on. Exposed for
  // tests.
  static std::string Key(const AuthorizationRequest& request);

 private:
  std::shared_ptr<PolicySource> inner_;
  // Hit/miss land on every cached-path call; resolved once, not per call.
  obs::CounterHandle hits_{std::string{obs::kMetricCacheHits},
                           {{"source", inner_->name()}}};
  obs::CounterHandle misses_{std::string{obs::kMetricCacheMisses},
                             {{"source", inner_->name()}}};
  const Clock* clock_;  // null = obs::ObsClock() at call time
  ShardedDecisionCache cache_;
};

}  // namespace gridauthz::core
