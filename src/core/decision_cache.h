// The decision cache on top of the snapshot fast path (DESIGN.md §9, §14).
//
// Management actions (cancel / information / signal) on a long-running
// job ask the same question over and over: same subject, same job, same
// policy. ShardedDecisionCache memoizes those answers. Three rules keep
// it honest:
//
//  * `start` is NEVER cached — admitting new work must always consult
//    live policy (the same fail-closed stance the fault layer's
//    LastGoodCache takes, and the paper's default-deny);
//  * every entry is stamped with the source's policy generation; a
//    reload or Replace bumps the generation and orphans every older
//    entry, so no decision outlives the policy that produced it;
//  * entries expire after a TTL and are evicted CLOCK-wise beyond
//    capacity.
//
// Layout (the million-RPS rework): each shard is a set-associative
// open-addressing table — fixed slots, no per-entry heap nodes, no LRU
// list to splice on every hit. Entries are indexed by a 128-bit hash of
// the request key (common/hash128.h); the full key is kept only to
// verify a hash match, never to place the entry. Shards are selected by
// a thread-affine index (each thread sticks to "its" shard), so under
// the job manager's concurrent callouts threads stop colliding on one
// shard lock; the same key may then live in several shards, which is
// safe because entries are verified by full key and invalidated by
// generation/TTL on contact, never by cross-shard delete. On top of
// that, each thread keeps a small local table of entries it has hit
// before, revalidated by generation/TTL and a cache flush sequence —
// repeat hits touch no lock at all.
//
// CachingPolicySource wires the cache in front of any PolicySource that
// reports policy generations. It differs from fault::LastGoodCache in
// intent: that cache serves stale answers while the backend is DOWN;
// this one skips re-evaluating while policy is provably UNCHANGED.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/hash128.h"
#include "core/request.h"
#include "core/source.h"
#include "obs/contention.h"
#include "obs/instrument.h"

namespace gridauthz::core {

struct DecisionCacheOptions {
  std::size_t shard_count = 8;
  // Entries per shard, CLOCK-evicted beyond this. 0 disables the cache
  // entirely (every Lookup misses, Record is a no-op) — it must never
  // mean "unbounded".
  std::size_t capacity_per_shard = 256;
  std::int64_t ttl_us = 60'000'000;  // entry lifetime
  // Per-thread lock-free hit table in front of the shards. Off, every
  // lookup takes the shard lock — strict shard-only semantics, used by
  // tests that assert exact eviction order.
  bool thread_local_fast_path = true;
  // Hash seed; tests use it to steer keys into colliding table sets.
  std::uint64_t hash_seed = 0;
};

// Why a lookup missed — split so /metrics can tell "the policy changed"
// (invalidated) from "the entry aged out" (expired) from "never seen"
// (cold). The first two drop the entry on contact.
enum class CacheMissKind : std::uint8_t {
  kCold = 0,
  kExpired,
  kInvalidated,
};

class ShardedDecisionCache {
 public:
  explicit ShardedDecisionCache(DecisionCacheOptions options = {});
  ~ShardedDecisionCache();
  ShardedDecisionCache(const ShardedDecisionCache&) = delete;
  ShardedDecisionCache& operator=(const ShardedDecisionCache&) = delete;

  // A fresh decision cached for `key` at `generation`, or nullopt.
  // Entries from other generations (and expired ones) are dropped on
  // contact; when `miss_kind` is non-null it reports why a miss missed.
  std::optional<Decision> Lookup(const std::string& key,
                                 std::uint64_t generation,
                                 std::int64_t now_us,
                                 CacheMissKind* miss_kind = nullptr);

  void Record(const std::string& key, std::uint64_t generation,
              std::int64_t now_us, const Decision& decision);

  void Clear();
  std::size_t size() const;

  // Total slots the table can ever hold (set count × associativity,
  // summed over shards); size() never exceeds this. 0 when disabled.
  std::size_t capacity() const;

  // Drop-on-contact / eviction counters (test + metrics introspection).
  std::uint64_t expired_drops() const {
    return expired_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t invalidated_drops() const {
    return invalidated_drops_.load(std::memory_order_relaxed);
  }
  std::uint64_t capacity_evictions() const {
    return capacity_evictions_.load(std::memory_order_relaxed);
  }

 private:
  // Provenance captured when the entry was recorded: enough to let a
  // cache hit still name the statement that produced the decision
  // (DESIGN.md §10). Populated from / restored into the ambient
  // DecisionProvenance; empty when no collection scope was active.
  struct CachedProvenance {
    std::string evaluator;
    std::string matched_statement;
    int matched_set = 0;
    std::string decision_kind;
    std::string failed_relation;
    std::string policy_source;
  };
  struct Entry {
    Hash128 hash;       // placement + first-stage compare
    std::string key;    // full key: verifies the hash match
    Decision decision;
    std::uint64_t generation = 0;
    std::int64_t stored_at_us = 0;
    CachedProvenance provenance;
    bool occupied = false;
    std::uint8_t ref = 0;  // CLOCK reference bit: set on hit
  };
  struct Shard {
    // All shards charge one contention site: the interesting question
    // is "does the cache lock hurt", not which of N shards.
    obs::ProfiledMutex mu{"decision_cache/shard"};
    std::vector<Entry> slots;      // num_sets × ways, set-major
    std::vector<std::uint32_t> hands;  // CLOCK hand per set
    std::size_t live = 0;
  };

  // One slot of the per-thread hit table: a direct-mapped copy of a
  // shard entry, revalidated on every use by cache instance id (a
  // global monotonic counter, so a destroyed cache's slots can never be
  // mistaken for a new cache reusing its address), flush sequence,
  // hash, full key, generation, and TTL.
  struct LocalEntry {
    std::uint64_t cache_instance = 0;
    std::uint64_t flush_seq = 0;
    Hash128 hash;
    std::string key;
    Decision decision;
    std::uint64_t generation = 0;
    std::int64_t stored_at_us = 0;
    CachedProvenance provenance;
  };

  Shard& ShardFor();
  static LocalEntry* LocalSlot(const Hash128& hash);
  static void RestoreProvenance(const CachedProvenance& provenance,
                                std::uint64_t generation);

  DecisionCacheOptions options_;
  std::size_t ways_ = 0;
  std::size_t set_mask_ = 0;  // num_sets - 1 (num_sets is a power of two)
  std::vector<std::unique_ptr<Shard>> shards_;
  // Distinguishes this cache in the per-thread hit tables; a monotonic
  // id (never a pointer) so a recycled allocation can't impersonate a
  // destroyed cache.
  std::uint64_t instance_id_;
  // Bumped by Clear(): per-thread entries stamped with an older value
  // are dead.
  std::atomic<std::uint64_t> flush_seq_{1};
  std::atomic<std::uint64_t> expired_drops_{0};
  std::atomic<std::uint64_t> invalidated_drops_{0};
  std::atomic<std::uint64_t> capacity_evictions_{0};
};

// Wraps a PolicySource with the decision cache. Only management actions
// with a non-zero inner policy generation are served from cache; start
// requests and generation-less sources pass straight through. Hits and
// misses are counted as authz_cache_hits_total / authz_cache_misses_total
// {source}; misses caused by policy change / TTL are additionally
// counted as authz_cache_invalidated_total / authz_cache_expired_total.
class CachingPolicySource final : public PolicySource {
 public:
  CachingPolicySource(std::shared_ptr<PolicySource> inner,
                      DecisionCacheOptions options = {},
                      const Clock* clock = nullptr);  // null = obs clock

  const std::string& name() const override { return inner_->name(); }
  Expected<Decision> Authorize(const AuthorizationRequest& request) override;
  std::uint64_t policy_generation() const override {
    return inner_->policy_generation();
  }

  std::size_t cache_size() const { return cache_.size(); }

  // The cache key: everything a decision can depend on, each field
  // length-prefixed so no value can masquerade as a field boundary.
  // Exposed for tests.
  static std::string Key(const AuthorizationRequest& request);
  // Same, appended into a caller-owned buffer (the serving path reuses
  // a per-thread buffer instead of allocating a string per request).
  static void AppendKey(const AuthorizationRequest& request, std::string& out);

 private:
  std::shared_ptr<PolicySource> inner_;
  // Hit/miss land on every cached-path call; resolved once, not per call.
  obs::CounterHandle hits_{std::string{obs::kMetricCacheHits},
                           {{"source", inner_->name()}}};
  obs::CounterHandle misses_{std::string{obs::kMetricCacheMisses},
                             {{"source", inner_->name()}}};
  obs::CounterHandle expired_{"authz_cache_expired_total",
                              {{"source", inner_->name()}}};
  obs::CounterHandle invalidated_{"authz_cache_invalidated_total",
                                  {{"source", inner_->name()}}};
  const Clock* clock_;  // null = obs::ObsClock() at call time
  ShardedDecisionCache cache_;
};

}  // namespace gridauthz::core
