#include "core/policy.h"

#include "common/strings.h"
#include "gsi/dn.h"

namespace gridauthz::core {

bool PolicyStatement::AppliesTo(std::string_view identity) const {
  return gsi::DnStringPrefixMatch(subject_prefix, identity);
}

namespace {

// True if `line` opens a new statement: optional '&', then a '/'-rooted
// DN prefix, then ':'. Assertion continuation lines instead start with
// '&(' or '('.
bool IsSubjectLine(std::string_view line) {
  if (line.empty()) return false;
  std::string_view rest = line;
  if (rest.front() == '&') rest.remove_prefix(1);
  rest = strings::Trim(rest);
  if (rest.empty() || rest.front() != '/') return false;
  return rest.find(':') != std::string_view::npos;
}

struct RawStatement {
  StatementKind kind;
  std::string subject;
  std::vector<std::string> set_texts;
  int line_number;
};

}  // namespace

Expected<PolicyDocument> PolicyDocument::Parse(std::string_view text) {
  std::vector<RawStatement> raw_statements;
  RawStatement* current = nullptr;
  int line_number = 0;

  for (const std::string& raw_line : strings::Lines(text)) {
    ++line_number;
    std::string_view line = strings::Trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    if (IsSubjectLine(line)) {
      RawStatement statement;
      statement.line_number = line_number;
      statement.kind = StatementKind::kPermission;
      std::string_view rest = line;
      if (rest.front() == '&') {
        statement.kind = StatementKind::kRequirement;
        rest.remove_prefix(1);
        rest = strings::Trim(rest);
      }
      std::size_t colon = rest.find(':');
      statement.subject = std::string{strings::Trim(rest.substr(0, colon))};
      if (statement.subject.empty() || statement.subject.front() != '/') {
        return Error{ErrCode::kParseError,
                     "policy line " + std::to_string(line_number) +
                         ": subject must be a '/'-rooted DN prefix"};
      }
      raw_statements.push_back(std::move(statement));
      current = &raw_statements.back();

      // Inline assertions after the colon form the first assertion set.
      std::string_view inline_text = strings::Trim(rest.substr(colon + 1));
      if (!inline_text.empty()) {
        current->set_texts.emplace_back(inline_text);
      }
      continue;
    }

    if (current == nullptr) {
      return Error{ErrCode::kParseError,
                   "policy line " + std::to_string(line_number) +
                       ": assertions before any subject"};
    }
    if (line.front() == '&') {
      // A new assertion set.
      current->set_texts.emplace_back(line);
    } else if (line.front() == '(') {
      // Continuation of the current assertion set.
      if (current->set_texts.empty()) {
        current->set_texts.emplace_back(line);
      } else {
        current->set_texts.back() += ' ';
        current->set_texts.back() += line;
      }
    } else {
      return Error{ErrCode::kParseError,
                   "policy line " + std::to_string(line_number) +
                       ": expected an assertion set ('&(...)' or '(...)')"};
    }
  }

  std::vector<PolicyStatement> statements;
  statements.reserve(raw_statements.size());
  for (RawStatement& raw : raw_statements) {
    PolicyStatement statement;
    statement.kind = raw.kind;
    statement.subject_prefix = std::move(raw.subject);
    if (raw.set_texts.empty()) {
      return Error{ErrCode::kParseError,
                   "policy line " + std::to_string(raw.line_number) +
                       ": statement for " + statement.subject_prefix +
                       " has no assertions"};
    }
    for (const std::string& set_text : raw.set_texts) {
      auto parsed = rsl::ParseConjunction(set_text);
      if (!parsed.ok()) {
        return Error{ErrCode::kParseError,
                     "policy statement for " + statement.subject_prefix +
                         ": " + parsed.error().message()};
      }
      statement.assertion_sets.push_back(std::move(parsed).value());
    }
    statements.push_back(std::move(statement));
  }
  return PolicyDocument{std::move(statements)};
}

std::vector<const PolicyStatement*> PolicyDocument::ApplicableTo(
    std::string_view identity) const {
  std::vector<const PolicyStatement*> out;
  for (const PolicyStatement& statement : statements_) {
    if (statement.AppliesTo(identity)) out.push_back(&statement);
  }
  return out;
}

std::string PolicyDocument::ToString() const {
  std::string out;
  for (const PolicyStatement& statement : statements_) {
    if (statement.kind == StatementKind::kRequirement) out += '&';
    out += statement.subject_prefix;
    out += ":\n";
    for (const rsl::Conjunction& set : statement.assertion_sets) {
      out += set.ToString();
      out += '\n';
    }
    out += '\n';
  }
  return out;
}

}  // namespace gridauthz::core
