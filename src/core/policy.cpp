#include "core/policy.h"

#include "common/strings.h"
#include "gsi/dn.h"

namespace gridauthz::core {

bool PolicyStatement::AppliesTo(std::string_view identity) const {
  if (parsed_subject.has_value()) {
    return parsed_subject->MatchesText(identity);
  }
  return gsi::DnStringPrefixMatch(subject_prefix, identity);
}

bool PolicyStatement::AppliesTo(const gsi::DistinguishedName* identity,
                                bool slash_rooted) const {
  std::optional<gsi::DnPrefix> local;
  const gsi::DnPrefix* prefix = nullptr;
  if (parsed_subject.has_value()) {
    prefix = &*parsed_subject;
  } else {
    auto parsed = gsi::DnPrefix::Parse(subject_prefix);
    if (!parsed.ok()) return false;
    local = std::move(parsed).value();
    prefix = &*local;
  }
  if (prefix->is_root()) return slash_rooted;
  return identity != nullptr && prefix->Matches(*identity);
}

namespace {

// Position of the ':' that terminates a subject on a subject line: the
// LAST colon outside double quotes and outside parenthesized assertion
// text, so a DN component value containing ':' does not silently
// truncate the subject. npos when the line has no such colon.
std::size_t SubjectColon(std::string_view line) {
  std::size_t found = std::string_view::npos;
  int paren_depth = 0;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') in_quotes = false;
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == '(') {
      ++paren_depth;
    } else if (c == ')') {
      if (paren_depth > 0) --paren_depth;
    } else if (c == ':' && paren_depth == 0) {
      found = i;
    }
  }
  return found;
}

// True if `line` opens a new statement: optional '&', then a '/'-rooted
// DN prefix, then ':'. Assertion continuation lines instead start with
// '&(' or '('.
bool IsSubjectLine(std::string_view line) {
  if (line.empty()) return false;
  std::string_view rest = line;
  if (rest.front() == '&') rest.remove_prefix(1);
  rest = strings::Trim(rest);
  if (rest.empty() || rest.front() != '/') return false;
  return SubjectColon(rest) != std::string_view::npos;
}

struct RawStatement {
  StatementKind kind;
  std::string subject;
  std::vector<std::string> set_texts;
  int line_number;
};

// An open `scope <url-base>:` block being accumulated.
struct RawScope {
  std::string url_base;
  std::string subject;
  bool has_subject = false;
  std::vector<ObjectEntry> entries;
  int line_number;
};

Error ScopeError(int line_number, std::string message) {
  return Error{ErrCode::kParseError, "policy line " +
                                         std::to_string(line_number) + ": " +
                                         std::move(message)};
}

}  // namespace

Expected<PolicyDocument> PolicyDocument::Parse(std::string_view text) {
  std::vector<RawStatement> raw_statements;
  std::vector<PathScopeStatement> scopes;
  RawStatement* current = nullptr;
  std::optional<RawScope> scope;
  int line_number = 0;

  for (const std::string& raw_line : strings::Lines(text)) {
    ++line_number;
    std::string_view line = strings::Trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    if (scope.has_value()) {
      if (line == "endscope") {
        if (!scope->has_subject) {
          return ScopeError(line_number, "scope block has no 'subject:' line");
        }
        auto built = PathScopeStatement::Create(
            std::move(scope->subject), scope->url_base,
            std::move(scope->entries));
        if (!built.ok()) {
          return ScopeError(scope->line_number, built.error().message());
        }
        scopes.push_back(std::move(built).value());
        scope.reset();
        continue;
      }
      if (strings::StartsWith(line, "subject:")) {
        if (scope->has_subject) {
          return ScopeError(line_number,
                            "scope block has more than one 'subject:' line");
        }
        scope->subject = std::string{strings::Trim(line.substr(8))};
        scope->has_subject = true;
        continue;
      }
      if (strings::StartsWith(line, "object:")) {
        const std::string_view body = strings::Trim(line.substr(7));
        // The rights list is the text after the LAST whitespace run, so
        // object paths themselves may contain spaces.
        const std::size_t split = body.find_last_of(" \t");
        if (split == std::string_view::npos) {
          return ScopeError(line_number,
                            "object line must be 'object: <path> <rights>'");
        }
        ObjectEntry entry;
        entry.path = std::string{strings::Trim(body.substr(0, split))};
        auto rights = ParseRightsMask(strings::Trim(body.substr(split + 1)));
        if (!rights.ok()) {
          return ScopeError(line_number, rights.error().message());
        }
        entry.rights = rights.value();
        scope->entries.push_back(std::move(entry));
        continue;
      }
      return ScopeError(line_number,
                        "expected 'subject:', 'object:', or 'endscope' "
                        "inside a scope block");
    }

    if (strings::StartsWith(line, "scope ") || line == "scope") {
      if (line.back() != ':') {
        return ScopeError(line_number, "scope line must end with ':'");
      }
      std::string_view base = strings::Trim(line.substr(5));
      base.remove_suffix(1);  // the trailing ':'
      scope.emplace();
      scope->url_base = std::string{strings::Trim(base)};
      scope->line_number = line_number;
      current = nullptr;  // a scope block ends any open job statement
      continue;
    }

    if (IsSubjectLine(line)) {
      RawStatement statement;
      statement.line_number = line_number;
      statement.kind = StatementKind::kPermission;
      std::string_view rest = line;
      if (rest.front() == '&') {
        statement.kind = StatementKind::kRequirement;
        rest.remove_prefix(1);
        rest = strings::Trim(rest);
      }
      std::size_t colon = SubjectColon(rest);
      statement.subject = std::string{strings::Trim(rest.substr(0, colon))};
      if (statement.subject.empty() || statement.subject.front() != '/') {
        return Error{ErrCode::kParseError,
                     "policy line " + std::to_string(line_number) +
                         ": subject must be a '/'-rooted DN prefix"};
      }

      // Inline assertions after the colon form the first assertion set.
      // Anything else after the separator means the line is ambiguous —
      // typically a subject whose DN contains ':' but is missing its own
      // terminating ':' (e.g. "/O=Grid/CN=a:b" instead of
      // "/O=Grid/CN=a:b:").
      std::string_view inline_text = strings::Trim(rest.substr(colon + 1));
      if (!inline_text.empty() && inline_text.front() != '(' &&
          inline_text.front() != '&') {
        return Error{ErrCode::kParseError,
                     "policy line " + std::to_string(line_number) +
                         ": ambiguous subject line: text after the "
                         "subject-terminating ':' must be assertion sets; a "
                         "subject DN containing ':' needs its own trailing "
                         "':'"};
      }
      raw_statements.push_back(std::move(statement));
      current = &raw_statements.back();
      if (!inline_text.empty()) {
        current->set_texts.emplace_back(inline_text);
      }
      continue;
    }

    if (current == nullptr) {
      return Error{ErrCode::kParseError,
                   "policy line " + std::to_string(line_number) +
                       ": assertions before any subject"};
    }
    if (line.front() == '&') {
      // A new assertion set.
      current->set_texts.emplace_back(line);
    } else if (line.front() == '(') {
      // Continuation of the current assertion set.
      if (current->set_texts.empty()) {
        current->set_texts.emplace_back(line);
      } else {
        current->set_texts.back() += ' ';
        current->set_texts.back() += line;
      }
    } else {
      return Error{ErrCode::kParseError,
                   "policy line " + std::to_string(line_number) +
                       ": expected an assertion set ('&(...)' or '(...)')"};
    }
  }

  if (scope.has_value()) {
    return ScopeError(scope->line_number,
                      "scope block is missing its 'endscope' line");
  }

  std::vector<PolicyStatement> statements;
  statements.reserve(raw_statements.size());
  for (RawStatement& raw : raw_statements) {
    PolicyStatement statement;
    statement.kind = raw.kind;
    statement.subject_prefix = std::move(raw.subject);
    auto parsed_subject = gsi::DnPrefix::Parse(statement.subject_prefix);
    if (!parsed_subject.ok()) {
      return Error{ErrCode::kParseError,
                   "policy line " + std::to_string(raw.line_number) +
                       ": subject is not a valid DN prefix: " +
                       parsed_subject.error().message()};
    }
    statement.parsed_subject = std::move(parsed_subject).value();
    if (raw.set_texts.empty()) {
      return Error{ErrCode::kParseError,
                   "policy line " + std::to_string(raw.line_number) +
                       ": statement for " + statement.subject_prefix +
                       " has no assertions"};
    }
    for (const std::string& set_text : raw.set_texts) {
      auto parsed = rsl::ParseConjunction(set_text);
      if (!parsed.ok()) {
        return Error{ErrCode::kParseError,
                     "policy statement for " + statement.subject_prefix +
                         ": " + parsed.error().message()};
      }
      statement.assertion_sets.push_back(std::move(parsed).value());
    }
    statements.push_back(std::move(statement));
  }
  PolicyDocument document{std::move(statements)};
  document.path_scopes_ = std::move(scopes);
  return document;
}

std::vector<const PolicyStatement*> PolicyDocument::ApplicableTo(
    std::string_view identity) const {
  // Parse the identity once; every statement then matches by component
  // comparison.
  const std::string_view trimmed = strings::Trim(identity);
  const bool slash_rooted = !trimmed.empty() && trimmed.front() == '/';
  auto parsed = gsi::DistinguishedName::Parse(trimmed);
  const gsi::DistinguishedName* identity_dn = parsed.ok() ? &*parsed : nullptr;
  std::vector<const PolicyStatement*> out;
  for (const PolicyStatement& statement : statements_) {
    if (statement.AppliesTo(identity_dn, slash_rooted)) {
      out.push_back(&statement);
    }
  }
  return out;
}

std::string PolicyDocument::ToString() const {
  std::string out;
  for (const PolicyStatement& statement : statements_) {
    if (statement.kind == StatementKind::kRequirement) out += '&';
    out += statement.subject_prefix;
    out += ":\n";
    for (const rsl::Conjunction& set : statement.assertion_sets) {
      out += set.ToString();
      out += '\n';
    }
    out += '\n';
  }
  for (const PathScopeStatement& scope : path_scopes_) {
    out += "scope ";
    out += scope.url_base();
    out += ":\n";
    out += "subject: ";
    out += scope.subject_prefix;
    out += '\n';
    for (const ObjectEntry& entry : scope.entries) {
      out += "object: ";
      out += entry.path.empty() ? "/" : entry.path;
      out += ' ';
      out += RightsMaskToString(entry.rights);
      out += '\n';
    }
    out += "endscope\n\n";
  }
  return out;
}

}  // namespace gridauthz::core
