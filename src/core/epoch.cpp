#include "core/epoch.h"

namespace gridauthz::core {

// Per-thread reader state: the claimed slot and the pin nesting depth.
// Claiming touches the shared slot array only on a thread's first read;
// the slot is released (and its epoch already quiescent) at thread
// exit so slots recycle across short-lived threads. A thread that found
// every slot taken stays on the fallback path for its lifetime rather
// than re-scanning 256 slots per read.
struct EpochThreadState {
  EpochDomain::ReaderSlot* slot = nullptr;
  int depth = 0;
  bool claim_attempted = false;

  ~EpochThreadState() {
    if (slot != nullptr) {
      EpochDomain::Instance().ReleaseSlot(slot);
      slot = nullptr;
    }
  }
};

namespace {
thread_local EpochThreadState t_reader;
}  // namespace

EpochDomain& EpochDomain::Instance() {
  static EpochDomain* domain = new EpochDomain();  // never destroyed
  return *domain;
}

EpochDomain::ReaderSlot* EpochDomain::ClaimSlot() {
  for (ReaderSlot& slot : slots_) {
    bool expected = false;
    if (slot.claimed.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      return &slot;
    }
  }
  return nullptr;
}

void EpochDomain::ReleaseSlot(ReaderSlot* slot) {
  slot->pinned.store(0, std::memory_order_release);
  slot->claimed.store(false, std::memory_order_release);
}

bool EpochDomain::Pin() {
  EpochThreadState& state = t_reader;
  if (state.depth > 0) {
    // Nested read: the outer pin's epoch already lower-bounds every
    // retire epoch a writer can assign from here on.
    ++state.depth;
    return true;
  }
  if (state.slot == nullptr) {
    if (state.claim_attempted) return false;  // exhausted; don't rescan
    state.claim_attempted = true;
    state.slot = Instance().ClaimSlot();
    if (state.slot == nullptr) return false;
  }
  EpochDomain& domain = Instance();
  std::uint64_t observed = domain.epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    // Publish the pin, then re-validate: if a writer bumped the epoch
    // between the load and the store it may have scanned our slot
    // before the store landed, so the pin must be re-issued at the new
    // epoch before any snapshot pointer is dereferenced.
    state.slot->pinned.store(observed, std::memory_order_seq_cst);
    const std::uint64_t check = domain.epoch_.load(std::memory_order_seq_cst);
    if (check == observed) break;
    observed = check;
  }
  state.depth = 1;
  return true;
}

void EpochDomain::Unpin() {
  EpochThreadState& state = t_reader;
  if (--state.depth == 0) {
    // Release: everything this reader did inside the snapshot
    // happens-before a writer that observes the quiescent slot.
    state.slot->pinned.store(0, std::memory_order_release);
  }
}

bool EpochDomain::SafeToReclaim(std::uint64_t retire_epoch) const {
  for (const ReaderSlot& slot : slots_) {
    const std::uint64_t pinned = slot.pinned.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < retire_epoch) return false;
  }
  return true;
}

std::size_t EpochDomain::ClaimedSlotCountForTest() const {
  std::size_t count = 0;
  for (const ReaderSlot& slot : slots_) {
    if (slot.claimed.load(std::memory_order_acquire)) ++count;
  }
  return count;
}

}  // namespace gridauthz::core
