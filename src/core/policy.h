// The paper's policy language (section 5.1): a policy is a sequence of
// statements relating a user or DN-prefix group to sets of action-based
// assertions written in RSL syntax. Default deny — "unless a specific
// stipulation has been made, an action will not be allowed".
//
// Concrete file syntax, reproduced from Figure 3:
//
//   &/O=Grid/O=Globus/OU=mcs.anl.gov: (action = start)(jobtag != NULL)
//
//   /O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu:
//   &(action = start)(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count<4)
//   &(action = start)(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count<4)
//
// A statement subject is a DN prefix of the user's Grid DN, ended by
// ':' (the last ':' outside quotes and parentheses, so DN component
// values may themselves contain colons). Subjects match at component
// boundaries: "/O=Grid/CN=John" covers "/O=Grid/CN=John" and its proxy
// "/O=Grid/CN=John/CN=proxy" but not "/O=Grid/CN=Johnson".
// A leading '&' before the subject marks a REQUIREMENT statement:
// every applicable assertion set must hold for the request to proceed.
// Statements without the marker are PERMISSIONS: the request must be
// covered by at least one assertion set of some applicable permission.
// Each subsequent line starting with '&' opens a new assertion set
// (an RSL conjunction); lines starting with '(' continue the current set.
// '#' begins a comment line.
//
// `scope <url-base>: ... endscope` blocks add object/path-scope
// statements for the data path (see pathscope.h for grammar and
// matching semantics).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/pathscope.h"
#include "gsi/dn.h"
#include "rsl/rsl.h"

namespace gridauthz::core {

// Special policy values from the paper's RSL extensions.
inline constexpr std::string_view kNullValue = "NULL";  // "a non-empty value"
inline constexpr std::string_view kSelfValue = "self";  // the requester's DN

enum class StatementKind {
  kPermission,   // grants: some assertion set must cover the request
  kRequirement,  // constrains: every applicable assertion set must hold
};

struct PolicyStatement {
  StatementKind kind = StatementKind::kPermission;
  // DN prefix matched (component-wise) against the requester's Grid DN.
  std::string subject_prefix;
  // The parsed form of subject_prefix. PolicyDocument::Parse fills it;
  // directly-constructed statements may leave it empty, in which case
  // AppliesTo parses subject_prefix on each call.
  std::optional<gsi::DnPrefix> parsed_subject;
  // Each conjunction is one assertion set.
  std::vector<rsl::Conjunction> assertion_sets;

  bool AppliesTo(std::string_view identity) const;

  // Pre-parsed-identity form used by ApplicableTo: `identity` is null
  // when the identity string did not parse as a DN; `slash_rooted` says
  // whether the trimmed identity text starts with '/' (all the root
  // subject "/" requires).
  bool AppliesTo(const gsi::DistinguishedName* identity,
                 bool slash_rooted) const;
};

class PolicyDocument {
 public:
  PolicyDocument() = default;
  explicit PolicyDocument(std::vector<PolicyStatement> statements)
      : statements_(std::move(statements)) {}

  // Parses the Figure 3 file format described above.
  static Expected<PolicyDocument> Parse(std::string_view text);

  const std::vector<PolicyStatement>& statements() const { return statements_; }
  bool empty() const { return statements_.empty() && path_scopes_.empty(); }
  std::size_t size() const { return statements_.size(); }

  void Add(PolicyStatement statement) {
    statements_.push_back(std::move(statement));
  }

  // Object/path-scope statements (`scope <url-base>: ... endscope`
  // blocks — see pathscope.h). Kept separate from the job statements:
  // they gate the data path, not job management.
  const std::vector<PathScopeStatement>& path_scopes() const {
    return path_scopes_;
  }
  void AddPathScope(PathScopeStatement scope) {
    path_scopes_.push_back(std::move(scope));
  }

  // Statements applying to `identity`, in document order.
  std::vector<const PolicyStatement*> ApplicableTo(
      std::string_view identity) const;

  // Serializes back to the file format (round-trips through Parse).
  std::string ToString() const;

 private:
  std::vector<PolicyStatement> statements_;
  std::vector<PathScopeStatement> path_scopes_;
};

}  // namespace gridauthz::core
