// Epoch-based lock-free snapshot publication (DESIGN.md §14).
//
// The mutex-guarded SnapshotPtr made every Authorize() serialize on one
// lock just to bump a shared_ptr refcount — /contention ranked that
// mutex (and the refcount cache-line ping-pong behind it) at the top of
// the serving-path wait profile once the decision cache stopped
// contending. EpochSnapshotPtr removes both: readers pin the current
// snapshot by publishing the global epoch into a per-thread slot (one
// uncontended seq_cst store plus a validation load — no shared mutex,
// no refcount write), and writers swap the pointer, bump the epoch, and
// retire the old snapshot until every pinned slot has moved past the
// retire epoch.
//
// Why not std::atomic<std::shared_ptr>: libstdc++ implements it with a
// spinlock pool whose reader unlock is a relaxed store ThreadSanitizer
// cannot pair with the next writer, so the TSan matrix would light up
// on every reload; and even a clean implementation still bounces the
// control-block refcount line between every reader core. The epoch
// scheme uses only explicit seq_cst / acquire / release operations on
// slots TSan models exactly, and readers write only their own
// cache-line-aligned slot.
//
// Memory-ordering contract (the part TSan checks):
//  * pin:    slot.store(E, seq_cst) then re-validate epoch == E; only
//            then is current_ loaded (acquire). A writer that bumped the
//            epoch to E published its swap before the bump, so a pin at
//            epoch >= retire-epoch can only observe the new pointer.
//  * unpin:  slot.store(0, release) — everything the reader did with
//            the snapshot happens-before a writer's acquire scan that
//            observes the quiescent (or re-pinned) slot, which
//            happens-before the writer destroys the snapshot.
//
// Reads nest (a source calling another source under an active pin is
// fine: the outer pin's epoch lower-bounds every later retire epoch).
// Threads claim one of kMaxReaderThreads fixed slots on first read and
// release it at thread exit; if all slots are claimed by live threads,
// extra threads fall back to the mutex-guarded shared_ptr path — slower
// but identical semantics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/contention.h"

namespace gridauthz::core {

// Process-wide epoch domain shared by every EpochSnapshotPtr: one global
// epoch counter and one fixed array of per-thread reader slots. Sharing
// a domain means a thread pays one slot store per outermost read no
// matter how many snapshot sources it consults.
class EpochDomain {
 public:
  static constexpr std::size_t kMaxReaderThreads = 256;

  struct alignas(64) ReaderSlot {
    // 0 = quiescent; otherwise the epoch this thread pinned.
    std::atomic<std::uint64_t> pinned{0};
    std::atomic<bool> claimed{false};
  };

  static EpochDomain& Instance();

  // Pins the current epoch for this thread (nestable). Returns false
  // when no reader slot could be claimed — the caller must fall back to
  // a refcounted read. Every successful Pin() must be paired with
  // Unpin().
  static bool Pin();
  static void Unpin();

  // Monotonic; bumped by writers after each snapshot swap.
  std::uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }
  std::uint64_t BumpEpoch() {
    return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  // True when a snapshot retired at `retire_epoch` can be destroyed:
  // every claimed slot is quiescent or pinned at >= retire_epoch. The
  // acquire loads here complete the happens-before edge from each
  // reader's last slot store to the destruction that follows.
  bool SafeToReclaim(std::uint64_t retire_epoch) const;

  // Slots currently claimed by live threads (test introspection).
  std::size_t ClaimedSlotCountForTest() const;

 private:
  EpochDomain() = default;

  ReaderSlot* ClaimSlot();
  void ReleaseSlot(ReaderSlot* slot);

  std::atomic<std::uint64_t> epoch_{1};
  ReaderSlot slots_[kMaxReaderThreads];

  friend struct EpochThreadState;
};

// Publishes an immutable snapshot to concurrent readers with lock-free
// epoch-pinned reads. Ownership stays in shared_ptr (so the slow-path
// load() and external holders keep working); the epoch machinery only
// defers releasing a replaced snapshot until no reader can still be
// inside it.
template <typename T>
class EpochSnapshotPtr {
 public:
  EpochSnapshotPtr() = default;
  EpochSnapshotPtr(const EpochSnapshotPtr&) = delete;
  EpochSnapshotPtr& operator=(const EpochSnapshotPtr&) = delete;

  // Pins the current snapshot for this scope. The fast path is two
  // atomic slot operations; when no reader slot is available the guard
  // silently degrades to holding a shared_ptr.
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : ptr_(other.ptr_), pinned_(other.pinned_),
          fallback_(std::move(other.fallback_)) {
      other.pinned_ = false;
      other.ptr_ = nullptr;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard& operator=(ReadGuard&&) = delete;
    ~ReadGuard() {
      if (pinned_) EpochDomain::Unpin();
    }

    const T* get() const { return ptr_; }
    const T& operator*() const { return *ptr_; }
    const T* operator->() const { return ptr_; }
    explicit operator bool() const { return ptr_ != nullptr; }

   private:
    friend class EpochSnapshotPtr;
    ReadGuard(const T* ptr, bool pinned) : ptr_(ptr), pinned_(pinned) {}
    explicit ReadGuard(std::shared_ptr<const T> fallback)
        : ptr_(fallback.get()), pinned_(false),
          fallback_(std::move(fallback)) {}

    const T* ptr_;
    bool pinned_;
    std::shared_ptr<const T> fallback_;
  };

  ReadGuard Read() const {
    if (EpochDomain::Pin()) {
      // The pin is published and validated, so this pointer (old or
      // new) cannot be reclaimed until the guard unpins.
      return ReadGuard(current_.load(std::memory_order_acquire), true);
    }
    return ReadGuard(load());
  }

  // Refcounted snapshot copy — the slow path for accessors that hand
  // the snapshot out of the read scope (never on the per-request path).
  std::shared_ptr<const T> load() const {
    const std::lock_guard<obs::ProfiledMutex> lock(mu_);
    return owner_;
  }

  // Swaps in `next` and retires the previous snapshot; the previous
  // snapshot is destroyed only once every pinned reader has moved past
  // the swap (possibly by a later store/CollectRetired call).
  void store(std::shared_ptr<const T> next) {
    const T* raw = next.get();
    std::vector<std::shared_ptr<const T>> reclaimed;  // destroyed unlocked
    {
      const std::lock_guard<obs::ProfiledMutex> lock(mu_);
      current_.store(raw, std::memory_order_release);
      if (owner_ != nullptr) {
        const std::uint64_t retire_epoch = EpochDomain::Instance().BumpEpoch();
        retired_.push_back(RetiredSnapshot{std::move(owner_), retire_epoch});
      }
      owner_ = std::move(next);
      CollectLocked(reclaimed);
    }
  }

  // Drops every retired snapshot no reader can still observe; returns
  // how many remain deferred. Called by store(); exposed so tests (and
  // idle maintenance) can bound how long a replaced policy document
  // stays resident.
  std::size_t CollectRetired() {
    std::vector<std::shared_ptr<const T>> reclaimed;
    const std::lock_guard<obs::ProfiledMutex> lock(mu_);
    CollectLocked(reclaimed);
    return retired_.size();
  }

 private:
  struct RetiredSnapshot {
    std::shared_ptr<const T> snapshot;
    std::uint64_t retire_epoch = 0;
  };

  void CollectLocked(std::vector<std::shared_ptr<const T>>& reclaimed) {
    std::size_t kept = 0;
    for (RetiredSnapshot& r : retired_) {
      if (EpochDomain::Instance().SafeToReclaim(r.retire_epoch)) {
        reclaimed.push_back(std::move(r.snapshot));
      } else {
        retired_[kept++] = std::move(r);
      }
    }
    retired_.resize(kept);
  }

  std::atomic<const T*> current_{nullptr};
  // Writer-side state: rare (policy replace/reload), so one profiled
  // mutex names it in /contention without touching the read path.
  mutable obs::ProfiledMutex mu_{"policy_snapshot/writer"};
  std::shared_ptr<const T> owner_;
  std::vector<RetiredSnapshot> retired_;
};

}  // namespace gridauthz::core
