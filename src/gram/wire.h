// The GRAM wire protocol: framed key/value messages in the style of
// GT2's application/x-globus-gram HTTP encoding, with typed encoders and
// decoders for job requests, management requests, and their replies.
//
// The paper's protocol extension lives here concretely: replies carry an
// explicit error code distinguishing AUTHORIZATION_DENIED from
// AUTHORIZATION_SYSTEM_FAILURE plus a free-text `reason` "describing
// reasons for authorization denial" (section 5.2), and management
// replies carry the job owner identity so the extended client can
// recognize job originators other than itself.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/error.h"
#include "gram/protocol.h"

namespace gridauthz::gram::wire {

// A protocol frame: ordered "key: value" lines, CRLF-terminated, with
// backslash escaping for embedded newlines and backslashes. Unknown keys
// are preserved (forward compatibility).
class Message {
 public:
  static constexpr std::string_view kProtocolVersion = "2";

  void Set(std::string_view key, std::string_view value);
  void SetInt(std::string_view key, std::int64_t value);
  std::optional<std::string> Get(std::string_view key) const;
  Expected<std::string> Require(std::string_view key) const;
  Expected<std::int64_t> RequireInt(std::string_view key) const;

  std::size_t size() const { return fields_.size(); }

  // Serializes as "protocol-version: 2\r\nkey: value\r\n...".
  std::string Serialize() const;
  // Parses a frame; fails on missing/unsupported protocol-version,
  // malformed lines, or duplicate keys.
  static Expected<Message> Parse(std::string_view text);

 private:
  std::map<std::string, std::string> fields_;
};

// ---- typed messages --------------------------------------------------

struct JobRequest {
  std::string rsl;
  std::optional<std::string> callback_url;
  // Observability extension: the client's trace context, carried as the
  // `trace-id` attribute so server-side spans, audit records, and log
  // lines join to the originating wire request. Optional — stock peers
  // simply omit it.
  std::optional<std::string> trace_id;
  // Resilience extension: the client's absolute deadline (microseconds
  // on the shared clock) carried as `deadline-micros`, so the server
  // stops evaluating once the caller's budget is spent, and the retry
  // ordinal carried as `retry-attempt` (1-based) so server logs can
  // distinguish fresh requests from retransmissions. Both optional.
  std::optional<std::int64_t> deadline_micros;
  std::optional<std::int64_t> attempt;

  Message Encode() const;
  static Expected<JobRequest> Decode(const Message& message);
};

struct JobRequestReply {
  GramErrorCode code = GramErrorCode::kNone;
  std::string job_contact;  // set on success
  std::string reason;       // extension: why authorization failed

  Message Encode() const;
  static Expected<JobRequestReply> Decode(const Message& message);
};

struct ManagementRequest {
  std::string action;  // cancel | information | signal
  std::string job_contact;
  std::optional<SignalRequest> signal;  // for action == signal
  // Observability extension, as on JobRequest.
  std::optional<std::string> trace_id;
  // Resilience extensions, as on JobRequest.
  std::optional<std::int64_t> deadline_micros;
  std::optional<std::int64_t> attempt;

  Message Encode() const;
  static Expected<ManagementRequest> Decode(const Message& message);
};

struct ManagementReply {
  GramErrorCode code = GramErrorCode::kNone;
  JobStatus status = JobStatus::kUnsubmitted;
  std::string job_owner;              // extension: originator identity
  std::optional<std::string> jobtag;  // extension
  std::string reason;

  Message Encode() const;
  static Expected<ManagementReply> Decode(const Message& message);
};

// Error-code <-> wire rendering (uses the GRAM protocol error names).
std::string_view ErrorCodeToWire(GramErrorCode code);
Expected<GramErrorCode> ErrorCodeFromWire(std::string_view text);

std::string_view StatusToWire(JobStatus status);
Expected<JobStatus> StatusFromWire(std::string_view text);

}  // namespace gridauthz::gram::wire
