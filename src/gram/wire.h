// The GRAM wire protocol: framed key/value messages in the style of
// GT2's application/x-globus-gram HTTP encoding, with typed encoders and
// decoders for job requests, management requests, and their replies.
//
// The paper's protocol extension lives here concretely: replies carry an
// explicit error code distinguishing AUTHORIZATION_DENIED from
// AUTHORIZATION_SYSTEM_FAILURE plus a free-text `reason` "describing
// reasons for authorization denial" (section 5.2), and management
// replies carry the job owner identity so the extended client can
// recognize job originators other than itself.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "gram/protocol.h"

namespace gridauthz::gram::wire {

class MessageView;
class FrameWriter;

// A protocol frame: ordered "key: value" lines, CRLF-terminated, with
// backslash escaping for embedded newlines and backslashes. Unknown keys
// are preserved (forward compatibility).
class Message {
 public:
  static constexpr std::string_view kProtocolVersion = "2";

  void Set(std::string_view key, std::string_view value);
  void SetInt(std::string_view key, std::int64_t value);
  std::optional<std::string> Get(std::string_view key) const;
  Expected<std::string> Require(std::string_view key) const;
  Expected<std::int64_t> RequireInt(std::string_view key) const;

  std::size_t size() const { return fields_.size(); }

  // Serializes as "protocol-version: 2\r\nkey: value\r\n...".
  std::string Serialize() const;
  // Parses a frame; fails on missing/unsupported protocol-version,
  // malformed lines, or duplicate keys.
  static Expected<Message> Parse(std::string_view text);

 private:
  std::map<std::string, std::string> fields_;
};

// Zero-copy frame parser for the hot path (DESIGN.md §11): a single pass
// over the frame, fields stored as string_views into the input buffer —
// no per-field heap nodes, no std::map. Values containing escape
// sequences are unescaped into a small internal arena (kept as offsets,
// so moving the view never dangles). The first 16 fields live inline;
// larger frames spill to a vector. Decode-equivalent to Message::Parse:
// both accept and reject exactly the same frames with the same decoded
// fields (enforced by the parity fuzz test); Message stays the
// allocating reference codec for tests and compatibility.
//
// The view borrows `text` — the frame buffer must outlive it.
class MessageView {
 public:
  static Expected<MessageView> Parse(std::string_view text);

  std::optional<std::string_view> Get(std::string_view key) const;
  Expected<std::string_view> Require(std::string_view key) const;
  Expected<std::int64_t> RequireInt(std::string_view key) const;

  std::size_t size() const { return count_; }
  // Field i in frame order (0 <= i < size()).
  std::pair<std::string_view, std::string_view> field(std::size_t i) const;

 private:
  struct Field {
    std::string_view key;
    std::string_view value;  // empty and unused when in_arena
    bool in_arena = false;
    std::uint32_t arena_offset = 0;
    std::uint32_t arena_length = 0;
  };

  Expected<void> Append(std::string_view key, std::string_view raw_value);
  const Field& at(std::size_t i) const {
    return i < kInlineFields ? inline_[i] : overflow_[i - kInlineFields];
  }
  std::string_view ValueOf(const Field& field) const {
    return field.in_arena ? std::string_view{arena_}.substr(
                                field.arena_offset, field.arena_length)
                          : field.value;
  }

  static constexpr std::size_t kInlineFields = 16;
  std::array<Field, kInlineFields> inline_{};
  std::vector<Field> overflow_;
  std::size_t count_ = 0;
  std::string arena_;  // unescaped bytes of escaped values
};

// Write side of the zero-copy codec: serializes a frame straight into a
// caller-owned, reusable buffer. Reset() stamps the protocol-version
// line; Add() escapes the value directly into the buffer with no
// intermediate Message map or temporary strings. Fields are emitted in
// call order — callers that want byte-identity with Message::Serialize
// (which emits sorted keys) add fields in sorted order, as the typed
// EncodeTo methods below do.
class FrameWriter {
 public:
  explicit FrameWriter(std::string* out) : out_(out) { Reset(); }

  void Reset();
  void Add(std::string_view key, std::string_view value);
  void AddInt(std::string_view key, std::int64_t value);

  const std::string& str() const { return *out_; }

 private:
  std::string* out_;
};

// ---- typed messages --------------------------------------------------

struct JobRequest {
  std::string rsl;
  std::optional<std::string> callback_url;
  // Observability extension: the client's trace context, carried as the
  // `trace-id` attribute so server-side spans, audit records, and log
  // lines join to the originating wire request. Optional — stock peers
  // simply omit it.
  std::optional<std::string> trace_id;
  // Resilience extension: the client's absolute deadline (microseconds
  // on the shared clock) carried as `deadline-micros`, so the server
  // stops evaluating once the caller's budget is spent, and the retry
  // ordinal carried as `retry-attempt` (1-based) so server logs can
  // distinguish fresh requests from retransmissions. Both optional.
  std::optional<std::int64_t> deadline_micros;
  std::optional<std::int64_t> attempt;

  Message Encode() const;
  // Byte-identical to Encode().Serialize(), into the writer's buffer.
  void EncodeTo(FrameWriter& writer) const;
  static Expected<JobRequest> Decode(const Message& message);
  static Expected<JobRequest> Decode(const MessageView& message);
};

struct JobRequestReply {
  GramErrorCode code = GramErrorCode::kNone;
  std::string job_contact;  // set on success
  std::string reason;       // extension: why authorization failed

  Message Encode() const;
  void EncodeTo(FrameWriter& writer) const;
  static Expected<JobRequestReply> Decode(const Message& message);
  static Expected<JobRequestReply> Decode(const MessageView& message);
};

struct ManagementRequest {
  std::string action;  // cancel | information | signal
  std::string job_contact;
  std::optional<SignalRequest> signal;  // for action == signal
  // Observability extension, as on JobRequest.
  std::optional<std::string> trace_id;
  // Resilience extensions, as on JobRequest.
  std::optional<std::int64_t> deadline_micros;
  std::optional<std::int64_t> attempt;

  Message Encode() const;
  void EncodeTo(FrameWriter& writer) const;
  static Expected<ManagementRequest> Decode(const Message& message);
  static Expected<ManagementRequest> Decode(const MessageView& message);
};

struct ManagementReply {
  GramErrorCode code = GramErrorCode::kNone;
  JobStatus status = JobStatus::kUnsubmitted;
  std::string job_owner;              // extension: originator identity
  std::optional<std::string> jobtag;  // extension
  std::string reason;

  Message Encode() const;
  void EncodeTo(FrameWriter& writer) const;
  static Expected<ManagementReply> Decode(const Message& message);
  static Expected<ManagementReply> Decode(const MessageView& message);
};

// Data-path capability token exchange (DESIGN.md §17). A transfer
// client asks the control channel, once per session, for an HMAC
// capability token over a URL base; every subsequent per-block check on
// the data channel is a local token verify. A request carrying
// `refresh-token` asks the server to re-evaluate an authentic (possibly
// stale-generation) token under the current policy and re-mint.
struct TokenRequest {
  std::string url_base;                      // mint scope; unused on refresh
  std::optional<std::string> refresh_token;  // present = refresh, not mint
  std::optional<std::string> trace_id;

  Message Encode() const;
  void EncodeTo(FrameWriter& writer) const;
  static Expected<TokenRequest> Decode(const Message& message);
  static Expected<TokenRequest> Decode(const MessageView& message);
};

struct TokenReply {
  GramErrorCode code = GramErrorCode::kNone;
  std::string token;             // set on success
  std::int64_t expiry_us = 0;    // absolute, shared clock
  std::uint64_t generation = 0;  // policy generation the token binds
  std::string scope;             // normalized granted url base
  std::string rights;            // canonical rights csv (informational)
  std::string reason;            // typed [token-*]/[path-invalid] on deny

  Message Encode() const;
  void EncodeTo(FrameWriter& writer) const;
  static Expected<TokenReply> Decode(const Message& message);
  static Expected<TokenReply> Decode(const MessageView& message);
};

// Error-code <-> wire rendering (uses the GRAM protocol error names).
std::string_view ErrorCodeToWire(GramErrorCode code);
Expected<GramErrorCode> ErrorCodeFromWire(std::string_view text);

std::string_view StatusToWire(JobStatus status);
Expected<JobStatus> StatusFromWire(std::string_view text);

}  // namespace gridauthz::gram::wire
