#include "gram/gatekeeper.h"

#include <algorithm>
#include <optional>

#include "common/arena.h"
#include "common/logging.h"
#include "core/request.h"
#include "obs/instrument.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::gram {

std::string JobManagerRegistry::NewContact(const std::string& host) {
  return "https://" + host + ":2119/jobmanager/" +
         std::to_string(next_job_number_.fetch_add(1));
}

void JobManagerRegistry::Register(std::shared_ptr<JobManagerInstance> jmi) {
  std::unique_lock lock(mu_);
  jmis_[jmi->contact()] = std::move(jmi);
}

Expected<std::shared_ptr<JobManagerInstance>> JobManagerRegistry::Lookup(
    const std::string& contact) const {
  std::shared_lock lock(mu_);
  auto it = jmis_.find(contact);
  if (it == jmis_.end()) {
    return Error{ErrCode::kNotFound, "no such job contact: " + contact};
  }
  return it->second;
}

namespace {

// The contact map is unordered; scans sort by contact so callers see
// the deterministic order the old std::map container provided for free.
void SortByContact(std::vector<std::shared_ptr<JobManagerInstance>>& jmis) {
  std::sort(jmis.begin(), jmis.end(),
            [](const std::shared_ptr<JobManagerInstance>& a,
               const std::shared_ptr<JobManagerInstance>& b) {
              return a->contact() < b->contact();
            });
}

}  // namespace

std::vector<std::shared_ptr<JobManagerInstance>> JobManagerRegistry::All()
    const {
  std::vector<std::shared_ptr<JobManagerInstance>> out;
  {
    std::shared_lock lock(mu_);
    out.reserve(jmis_.size());
    for (const auto& [contact, jmi] : jmis_) out.push_back(jmi);
  }
  SortByContact(out);
  return out;
}

std::vector<std::shared_ptr<JobManagerInstance>>
JobManagerRegistry::FindByJobtag(std::string_view tag) const {
  std::vector<std::shared_ptr<JobManagerInstance>> out;
  {
    std::shared_lock lock(mu_);
    for (const auto& [contact, jmi] : jmis_) {
      auto jobtag = jmi->jobtag();
      if (jobtag && *jobtag == tag) out.push_back(jmi);
    }
  }
  SortByContact(out);
  return out;
}

RequesterInfo MakeRequesterInfo(const gsi::SecurityContext& context) {
  RequesterInfo info;
  info.identity = context.peer_identity.str();
  info.restriction_policy = context.peer_restriction_policy();
  info.limited_proxy = context.peer_is_limited_proxy();
  return info;
}

Gatekeeper::Gatekeeper(Params params) : params_(std::move(params)) {}

Expected<std::string> Gatekeeper::SubmitJob(const gsi::Credential& client,
                                            const std::string& rsl_text,
                                            const std::string& callback_url) {
  // Direct API callers (tests, benches) arrive without a trace; open a
  // fresh root so the whole submission is spanned. Wire callers already
  // carry the client's trace and keep it.
  std::optional<obs::TraceScope> root;
  if (!obs::CurrentTrace().active()) root.emplace(obs::GenerateTraceId());
  const std::int64_t start_us = obs::ObsClock()->NowMicros();
  Expected<std::string> result = [&]() -> Expected<std::string> {
    obs::ScopedSpan span("gatekeeper/submit");
    return DoSubmitJob(client, rsl_text, callback_url);
  }();
  obs::Metrics()
      .GetCounter("gram_requests_total",
                  {{"action", "submit"},
                   {"outcome", result.ok() ? "ok" : "error"}})
      .Increment();
  obs::Metrics()
      .GetHistogram("gram_request_latency_us", {{"action", "submit"}},
                    obs::DefaultLatencyBucketsUs())
      .Observe(obs::ObsClock()->NowMicros() - start_us);
  return result;
}

Expected<std::string> Gatekeeper::DoSubmitJob(const gsi::Credential& client,
                                              const std::string& rsl_text,
                                              const std::string& callback_url) {
  // 1. Mutual authentication (GSI); the client delegates a credential the
  //    JMI will run with.
  GA_TRY(gsi::HandshakeResult handshake,
         gsi::EstablishSecurityContext(client, params_.host_credential,
                                       *params_.trust, params_.clock->Now(),
                                       /*delegate=*/true));
  const gsi::SecurityContext& context = handshake.acceptor_view;
  RequesterInfo requester = MakeRequesterInfo(context);
  GA_LOG(kInfo, "gatekeeper") << "authenticated " << requester.identity;

  // 2. GT2 rejects job startup under a limited proxy.
  if (requester.limited_proxy) {
    return Error{ErrCode::kAuthenticationFailed,
                 "limited proxy may not be used to start a job"};
  }

  // 3. Optional identity-level PEP at the Gatekeeper. The callout's
  //    evaluation scratch is arena-scoped to this submission.
  if (params_.enable_gatekeeper_callout && params_.callouts != nullptr &&
      params_.callouts->HasBinding(kGatekeeperAuthzType)) {
    const RequestArenaScope arena_scope;
    CalloutData data;
    data.requester_identity = requester.identity;
    data.requester_attributes = requester.attributes;
    data.requester_restriction_policy = requester.restriction_policy;
    data.job_owner_identity = requester.identity;
    data.action = core::kActionStart;
    data.rsl = rsl_text;
    data.trace_id = obs::CurrentTraceId();
    GA_TRY_VOID(params_.callouts->Invoke(kGatekeeperAuthzType, data));
  }

  // 4. Grid-mapfile: authorization and local account mapping. "Mapping
  //    from the Grid identity to a local account is also done with the
  //    policy in the grid-mapfile."
  GA_TRY(gsi::DistinguishedName subject_dn,
         gsi::DistinguishedName::Parse(requester.identity));
  GA_TRY(std::string account, params_.gridmap->DefaultAccount(subject_dn));
  GA_LOG(kInfo, "gatekeeper") << requester.identity << " mapped to local account '"
                              << account << "'";

  // 5. Create the JMI, executing with the user's delegated credential.
  if (!context.delegated_credential) {
    return Error{ErrCode::kAuthenticationFailed,
                 "client did not delegate a credential"};
  }
  JobManagerInstance::Params jmi_params;
  jmi_params.contact = params_.jmi_registry->NewContact(params_.host);
  jmi_params.delegated_credential = *context.delegated_credential;
  jmi_params.owner_identity = requester.identity;
  jmi_params.local_account = account;
  jmi_params.scheduler = params_.scheduler;
  jmi_params.clock = params_.clock;
  jmi_params.callouts = params_.callouts;
  jmi_params.callback_router = params_.callback_router;
  jmi_params.callback_url = callback_url;
  auto jmi = std::make_shared<JobManagerInstance>(std::move(jmi_params));
  GA_LOG(kInfo, "gatekeeper") << "created JMI " << jmi->contact();

  // 6. Start the job (the JMI PEP authorizes the start when configured).
  GA_TRY_VOID(jmi->Start(rsl_text, requester));
  params_.jmi_registry->Register(jmi);
  return jmi->contact();
}

}  // namespace gridauthz::gram
