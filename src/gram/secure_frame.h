// GSI message-level protection for wire frames: the sender wraps a frame
// in a signed envelope (payload + signature + its certificate chain); the
// receiver validates the chain against the trust registry, verifies the
// signature with the leaf key, and obtains the authenticated sender
// identity. This is the per-message integrity layer GSI offers alongside
// the connection handshake; GRAM endpoints use it to bind a frame to the
// identity that authenticated the channel.
#pragma once

#include <string>

#include "common/clock.h"
#include "common/error.h"
#include "gsi/certificate.h"
#include "gsi/credential.h"

namespace gridauthz::gram {

// Wraps `frame` in a signed envelope from `sender` at time `now` (the
// timestamp is covered by the signature; receivers reject envelopes
// outside the freshness window).
std::string SignFrame(const gsi::Credential& sender, std::string_view frame,
                      TimePoint now);

struct VerifiedFrame {
  std::string frame;                  // the protected payload
  gsi::DistinguishedName sender;      // authenticated Grid identity
  std::vector<gsi::Certificate> chain;
  TimePoint signed_at = 0;
};

// Verifies an envelope: chain validity (against `trust` at `now`),
// signature over payload+timestamp with the leaf key, and freshness
// (|now - signed_at| <= max_age_seconds). Tampering, untrusted or expired
// chains, and stale envelopes all fail with kAuthenticationFailed.
Expected<VerifiedFrame> VerifyFrame(std::string_view envelope_text,
                                    const gsi::TrustRegistry& trust,
                                    TimePoint now,
                                    Duration max_age_seconds = 300);

}  // namespace gridauthz::gram
