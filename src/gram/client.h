// The GRAM client library. Submits jobs through a Gatekeeper and sends
// management requests to Job Manager Instances.
//
// Paper extension (section 5.2): stock GT2 clients verify that the JMI
// they contact is running as *their own* identity (the JMI runs with the
// job initiator's delegated credential). To let VO members manage each
// other's jobs, the extended client can "process other identities than
// that of the client — specifically, allowing it to recognize the
// identity of the job originator".
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/error.h"
#include "gram/gatekeeper.h"
#include "gram/protocol.h"

namespace gridauthz::gram {

struct ManagementOptions {
  // The job-originator identity the client expects the JMI to present.
  // Unset reproduces stock GT2: the JMI must present the client's own
  // identity, so managing someone else's job fails client-side.
  std::optional<std::string> expected_job_owner;
};

class GramClient {
 public:
  GramClient(gsi::Credential credential, const gsi::TrustRegistry* trust,
             const Clock* clock);

  const gsi::Credential& credential() const { return credential_; }
  std::string identity() const { return credential_.identity().str(); }

  // Submits a job; returns the job contact. A non-empty `callback_url`
  // (from CallbackRouter::Register) subscribes to job-state updates.
  Expected<std::string> Submit(Gatekeeper& gatekeeper,
                               const std::string& rsl_text,
                               const std::string& callback_url = "");

  // Submits a '+' multi-request atomically (the DUROC-style co-allocation
  // GT2 layered over GRAM): every sub-request must be authorized and
  // placed, or every already-started sub-job is cancelled and the first
  // error is returned. A single conjunction is accepted too.
  Expected<std::vector<std::string>> SubmitMulti(
      Gatekeeper& gatekeeper, const JobManagerRegistry& registry,
      const std::string& rsl_text);

  // Management requests against a running job.
  Expected<JobStatusReply> Status(const JobManagerRegistry& registry,
                                  const std::string& contact,
                                  const ManagementOptions& options = {});
  Expected<void> Cancel(const JobManagerRegistry& registry,
                        const std::string& contact,
                        const ManagementOptions& options = {});
  Expected<void> Signal(const JobManagerRegistry& registry,
                        const std::string& contact,
                        const SignalRequest& signal,
                        const ManagementOptions& options = {});

  // Per-request latency budget, in microseconds on the client's clock;
  // 0 disables. Each Submit/Status/Cancel/Signal installs an ambient
  // DeadlineScope of now + budget, which the whole in-process
  // authorization path (Gatekeeper, JMI PEP, policy sources) honors.
  void set_deadline_budget_us(std::int64_t budget_us) {
    deadline_budget_us_ = budget_us;
  }

 private:
  // Authenticates to the JMI and applies the client-side identity check.
  Expected<std::pair<std::shared_ptr<JobManagerInstance>, RequesterInfo>>
  Connect(const JobManagerRegistry& registry, const std::string& contact,
          const ManagementOptions& options);

  // The deadline for one request under the configured budget (nullopt
  // when disabled).
  std::optional<std::int64_t> BudgetDeadline() const;

  gsi::Credential credential_;
  const gsi::TrustRegistry* trust_;
  const Clock* clock_;
  std::int64_t deadline_budget_us_ = 0;
};

}  // namespace gridauthz::gram
