// The GRAM authorization callout API (section 5.2).
//
// The paper inserts a policy evaluation point into the Job Manager via a
// callout invoked "before creating a job manager request, and before
// calls to cancel, query, and signal a running job". The callout receives
// the credential of the requesting user, the credential of the user who
// originally started the job, the action, a unique job identifier, and
// the RSL job description; it answers success or a typed authorization
// error.
//
// GT2 loads callouts at runtime with GNU Libtool's dlopen; configuration
// names an abstract callout type, the dynamic library implementing it,
// and the symbol inside the library. We reproduce the same configuration
// surface — including its failure modes — with a process-wide registry of
// (library, symbol) -> callout factories standing in for shared objects
// (see DESIGN.md, substitutions).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"

namespace gridauthz::gram {

// Abstract callout type names (what GT2 calls the "abstract callout
// name"). The Job Manager uses kJobManagerAuthz; a PEP in the Gatekeeper
// uses kGatekeeperAuthz.
inline constexpr std::string_view kJobManagerAuthzType =
    "globus_gram_jobmanager_authz";
inline constexpr std::string_view kGatekeeperAuthzType =
    "globus_gatekeeper_authz";

// Everything the Job Manager passes to the authorization module.
struct CalloutData {
  // Verified Grid identity of the user making this request.
  std::string requester_identity;
  // VO attributes carried by the requester's credentials.
  std::vector<std::string> requester_attributes;
  // The restriction policy embedded in the requester's restricted proxy,
  // if any (CAS credentials).
  std::optional<std::string> requester_restriction_policy;
  // Verified Grid identity of the user who started the job (equals
  // requester_identity for start requests).
  std::string job_owner_identity;
  // start | cancel | information | signal.
  std::string action;
  // Unique job identifier (the job contact); empty for start.
  std::string job_id;
  // The job description in RSL.
  std::string rsl;
  // Observability: trace id of the wire request that triggered this
  // callout, so callout spans and audit records join to the request.
  // Empty when the caller has no active trace.
  std::string trace_id;
};

// A callout returns Ok() to authorize. Denials use kAuthorizationDenied;
// any other error (and kAuthorizationSystemFailure itself) is reported to
// the client as an authorization system failure.
using AuthorizationCallout = std::function<Expected<void>(const CalloutData&)>;

// Builds a configured callout instance; registered per (library, symbol).
using CalloutFactory = std::function<AuthorizationCallout()>;

// Stand-in for the dynamic loader: maps (library, symbol) to factories.
// Unknown library/symbol resolves to the same error a failed dlopen
// produces: an authorization system failure.
class CalloutLibraryRegistry {
 public:
  static CalloutLibraryRegistry& Instance();

  void Register(const std::string& library, const std::string& symbol,
                CalloutFactory factory);
  void Unregister(const std::string& library, const std::string& symbol);

  Expected<AuthorizationCallout> Resolve(const std::string& library,
                                         const std::string& symbol) const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>, CalloutFactory> factories_;
};

// One configured callout point: abstract type -> (library, symbol).
struct CalloutBinding {
  std::string abstract_type;
  std::string library;
  std::string symbol;
};

// Dispatches authorization callouts by abstract type. Configured either
// from a configuration file (ParseAndBind) or programmatically (Bind) —
// the two configuration paths the paper describes. Thread-safe: the Job
// Manager invokes callouts from concurrent request threads while
// reconfiguration may rebind types; the callout itself runs outside the
// dispatcher lock, so a slow callout never blocks binding lookups.
class CalloutDispatcher {
 public:
  // Binds an abstract type to a registered (library, symbol). Resolution
  // happens at first invocation (matching dlopen-on-demand).
  void Bind(CalloutBinding binding);

  // Binds an abstract type directly to a callout (the "API call"
  // configuration path).
  void BindDirect(std::string abstract_type, AuthorizationCallout callout);

  // Parses callout configuration text: one binding per line,
  //   abstract_type  library  symbol
  // with '#' comments, and installs every binding.
  Expected<void> ParseAndBind(std::string_view config_text);

  bool HasBinding(std::string_view abstract_type) const;

  // Invokes the callout bound to `abstract_type`. Missing binding,
  // unresolvable library/symbol, or a callout failure other than an
  // explicit denial surface as kAuthorizationSystemFailure; denials pass
  // through as kAuthorizationDenied.
  Expected<void> Invoke(std::string_view abstract_type,
                        const CalloutData& data);

  // Number of callout invocations performed (benchmarks read this).
  std::uint64_t invocation_count() const {
    return invocations_.load(std::memory_order_relaxed);
  }

 private:
  Expected<void> InvokeImpl(std::string_view abstract_type,
                            const CalloutData& data);
  // Looks up (resolving on demand) the callout for `abstract_type` and
  // returns a copy, so invocation happens outside the lock.
  Expected<AuthorizationCallout> ResolveSlot(std::string_view abstract_type);

  struct Slot {
    CalloutBinding binding;
    std::optional<AuthorizationCallout> resolved;
  };
  mutable std::mutex mu_;
  std::map<std::string, Slot, std::less<>> slots_;
  std::atomic<std::uint64_t> invocations_{0};
};

}  // namespace gridauthz::gram
