// Concurrent wire front end (DESIGN.md §11): a worker-pool transport in
// front of the single-threaded request handlers, the serving-stack shape
// GT2 approximated by forking the gatekeeper per connection. N worker
// threads consume a bounded MPMC queue of in-flight frames; admission
// control sheds work the server cannot finish in time — queue full,
// `deadline-micros` that cannot possibly be met, or shutdown — with an
// AUTHORIZATION_SYSTEM_FAILURE reply carrying the typed [overload]
// reason instead of queueing doomed requests. Shed replies arrive in
// bounded time (no queue wait) and spend SLO error budget like any
// other authorization system failure.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "gram/wire_service.h"
#include "obs/contention.h"
#include "obs/instrument.h"

namespace gridauthz::gram::wire {

struct ServerOptions {
  // Worker threads consuming the request queue.
  int workers = 4;
  // Bounded queue of requests admitted but not yet picked up by a
  // worker. Arrivals beyond capacity are shed immediately.
  std::size_t queue_capacity = 64;
  // Seed for the per-request service-time EWMA that drives deadline
  // admission before the first completions calibrate it.
  std::int64_t initial_service_estimate_us = 1000;
};

// Point-in-time view of the server, exported by ObsService at /healthz.
struct ServerStats {
  int workers = 0;
  std::size_t queue_capacity = 0;
  std::size_t queue_depth = 0;
  std::uint64_t accepted_total = 0;
  std::uint64_t completed_total = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_shutdown = 0;
  bool stopping = false;  // Shutdown has begun (or finished)
  std::int64_t estimated_service_us = 0;
  std::vector<std::int64_t> worker_busy_us;  // one entry per worker
};

// Decorator over any WireTransport (normally the WireEndpoint, itself
// wrapped by ObsService so /healthz stays responsive under overload).
// Handle() may be called from any number of client threads: the calling
// thread blocks until a worker finishes its frame or admission control
// sheds it. All timing uses the obs clock, matching WireClient's
// deadline arithmetic.
//
// Metrics: wire_server_queue_depth (gauge), wire_server_shed_total
// {reason=queue-full|deadline|shutdown}, wire_server_accepted_total,
// wire_server_worker_busy_us{worker=i}.
class ServerTransport final : public WireTransport {
 public:
  explicit ServerTransport(WireTransport* inner, ServerOptions options = {});
  ~ServerTransport() override;

  std::string Handle(const gsi::Credential& peer,
                     std::string_view frame) override;

  // Stops accepting work, sheds everything still queued (callers get
  // [overload] shutdown replies, never a hang), joins the workers.
  // Idempotent; the destructor calls it.
  void Shutdown();

  ServerStats Snapshot() const;

 private:
  struct Work {
    const gsi::Credential* peer = nullptr;
    std::string_view frame;
    bool is_management = false;
    std::string reply;
    bool done = false;
    std::mutex mu;
    std::condition_variable cv;
  };

  void WorkerLoop(int index);
  // Builds the typed shed reply and records the shed in metrics + SLO.
  std::string Shed(bool is_management, std::string_view reason_label,
                   const std::string& detail);

  WireTransport* inner_;
  ServerOptions options_;

  // Profiled ("server/queue") so /contention can indict the queue lock;
  // condition_variable_any because the profiled mutex is not std::mutex.
  // CV-blocked time (waiting for work to ARRIVE) is not lock wait and is
  // not charged to the site — only the reacquire after wakeup is.
  mutable obs::ProfiledMutex qmu_{"server/queue"};
  std::condition_variable_any not_empty_;
  std::deque<Work*> queue_;
  bool stopping_ = false;  // guarded by qmu_

  // Touched on every admitted frame (twice for the gauge: producer and
  // worker); resolved once, not per call.
  obs::GaugeHandle queue_depth_gauge_{"wire_server_queue_depth"};
  obs::CounterHandle accepted_counter_{"wire_server_accepted_total", {}};

  std::atomic<std::int64_t> ewma_service_us_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_shutdown_{0};
  std::unique_ptr<std::atomic<std::int64_t>[]> busy_us_;
  std::vector<std::thread> threads_;
};

}  // namespace gridauthz::gram::wire
