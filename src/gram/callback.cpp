#include "gram/callback.h"

#include "common/logging.h"

namespace gridauthz::gram {

std::string CallbackRouter::Register(Listener listener) {
  std::lock_guard lock(mu_);
  std::string url =
      "https://client.example:7512/callback/" + std::to_string(next_id_++);
  listeners_[url] = std::move(listener);
  return url;
}

void CallbackRouter::Unregister(const std::string& url) {
  std::lock_guard lock(mu_);
  listeners_.erase(url);
}

void CallbackRouter::Post(const std::string& url,
                          const JobStatusReply& update) {
  Listener listener;
  {
    std::lock_guard lock(mu_);
    auto it = listeners_.find(url);
    if (it == listeners_.end()) {
      GA_LOG(kDebug, "callback") << "dropping update for unknown contact "
                                 << url;
      return;
    }
    listener = it->second;
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  listener(update);
}

}  // namespace gridauthz::gram
