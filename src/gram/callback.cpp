#include "gram/callback.h"

#include "common/logging.h"

namespace gridauthz::gram {

std::string CallbackRouter::Register(Listener listener) {
  std::string url =
      "https://client.example:7512/callback/" + std::to_string(next_id_++);
  listeners_[url] = std::move(listener);
  return url;
}

void CallbackRouter::Unregister(const std::string& url) {
  listeners_.erase(url);
}

void CallbackRouter::Post(const std::string& url,
                          const JobStatusReply& update) {
  auto it = listeners_.find(url);
  if (it == listeners_.end()) {
    GA_LOG(kDebug, "callback") << "dropping update for unknown contact "
                               << url;
    return;
  }
  ++delivered_;
  it->second(update);
}

}  // namespace gridauthz::gram
