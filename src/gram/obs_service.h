// Live ops/exposition service over the GRAM wire seam (DESIGN.md §10).
//
// Operators need the three observability signals — metrics, traces,
// durable audit — plus a health summary, without linking against the
// service. ObsService is a WireTransport: it answers `obs-request`
// frames addressed to one of five paths and (optionally) delegates every
// other frame to the real endpoint, so one listener serves both jobs and
// operations:
//
//   /metrics        Prometheus text exposition of the whole registry,
//                   with lock_wait_us{site} contention series appended
//   /metrics.json   JSON snapshot (p50/p95/p99 precomputed)
//   /contention     lock sites ranked by total wait (JSON)
//   /profile        sampled stage profile, collapsed-stack text
//                   (flamegraph.pl-compatible)
//   /trace/<id>     finished spans of one trace, completion order
//   /audit/query    durable audit records matching subject / action /
//                   outcome / time-min / time-max filters
//   /healthz        per-backend breaker states, policy generation, last
//                   reload status, SLO burn rate, audit sink counters
//
// Because it sits on the WireTransport seam, the fault layer's
// FaultyTransport can interpose on it too — the ops plane is testable
// under the same failure injection as the data plane.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/audit_sink.h"
#include "core/source.h"
#include "gram/wire_service.h"

namespace gridauthz::gram::wire {

class ServerTransport;

struct ObsServiceOptions {
  // Name this service reports as "node" in /healthz. Fleet health probes
  // use it to confirm they reached the gatekeeper they meant to probe
  // ("" = field omitted, the single-node default).
  std::string node_name;
  // Durable audit pipeline backing /audit/query (nullptr = 503).
  std::shared_ptr<core::FileAuditSink> audit_sink;
  // Policy source whose generation /healthz reports (nullptr = 0).
  std::shared_ptr<core::PolicySource> policy;
  // Most recent policy reload failure, "" when the last reload
  // succeeded (e.g. FilePolicySource::last_reload_error). Unset =
  // reload status not reported.
  std::function<std::string()> last_reload_error;
  // Transport non-obs frames are forwarded to (nullptr = error reply).
  WireTransport* inner = nullptr;
  // Worker-pool front end whose queue/shed stats /healthz reports
  // (nullptr = section omitted). Layer ObsService OUTSIDE the server
  // (ObsService -> ServerTransport -> WireEndpoint) so health checks
  // bypass the request queue and stay responsive under overload.
  const ServerTransport* server = nullptr;
};

// Decoded `obs-reply` frame.
struct ObsReply {
  int status = 0;  // HTTP-style: 200, 304, 400, 404, 500, 503
  std::string content_type;
  std::string body;
  // Conditional-scrape key for /metrics.json (ROADMAP 1e): the node's
  // registry ActivityFingerprint rendered as decimal, "" when the path
  // does not support conditional requests. A request carrying the same
  // value as `if-generation` is answered 304 with an empty body — the
  // caller's cached document is still current.
  std::string generation;
};

class ObsService final : public WireTransport {
 public:
  explicit ObsService(ObsServiceOptions options);

  std::string Handle(const gsi::Credential& peer,
                     std::string_view frame) override;

 private:
  ObsReply Dispatch(const MessageView& message);
  ObsReply HandleTrace(const std::string& trace_id) const;
  ObsReply HandleAuditQuery(const MessageView& message) const;
  ObsReply HandleHealth() const;

  ObsServiceOptions options_;
};

// Client-side helper: encodes an obs-request for `path` (filters are
// extra attributes, e.g. {"subject", dn}), round-trips it through
// `transport`, and decodes the reply. Fails only on transport/frame
// corruption — an error status (404, 503, ...) is a valid ObsReply.
Expected<ObsReply> ObsRequest(
    WireTransport& transport, const gsi::Credential& peer,
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& filters = {});

}  // namespace gridauthz::gram::wire
