// The Gatekeeper (section 4.1): authenticates the requesting Grid user,
// authorizes the job invocation, maps the Grid identity to a local
// account, and creates a Job Manager Instance for the request.
//
// Stock GT2 authorization here is the grid-mapfile lookup. The paper's
// architecture optionally adds a PEP callout at the Gatekeeper too
// ("a PEP placed in the Gatekeeper can allow or disallow access based on
// the user's Grid identity"); the fine-grain, RSL-aware PEP lives in the
// Job Manager.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/error.h"
#include "gram/callout.h"
#include "gram/jobmanager.h"
#include "gridmap/gridmap.h"
#include "gsi/security_context.h"
#include "obs/contention.h"
#include "os/scheduler.h"

namespace gridauthz::gram {

// Holds live Job Manager Instances keyed by their job contact; stands in
// for the per-job network endpoints GT2 JMIs listen on.
//
// Thread-safe: the server front end (gram/server.h) submits and manages
// jobs from many worker threads at once, so the contact map is guarded
// by a reader/writer lock — lookups and scans (the management hot path)
// take shared locks and only Register takes the exclusive lock — and
// contact numbering is a lone atomic so NewContact never blocks.
// Register happens-before any Lookup that returns the JMI, which is what
// makes the JMI's Start-time writes safe to read on other threads.
//
// The contact map is hashed (ROADMAP 2c): Lookup is the per-management-
// request hot path, and with std::map each lookup walked ~log2(N) tree
// nodes comparing full "https://host:2119/jobmanager/N" strings while
// holding the shared lock. Before the switch the wire-throughput bench
// at 10k live jobs showed the "jmi_registry" profiled mutex attributing
// most of its shared-hold time to those comparisons (~14 string
// compares per lookup at that size); hashed, a lookup is one hash plus
// (usually) one compare, shortening the shared-section hold and the
// exclusive-writer convoy behind it. Deterministic iteration is NOT
// provided by the container anymore — All() and FindByJobtag() sort by
// contact before returning, which reproduces the old std::map order
// exactly (persistence snapshots and group-management replies stay
// byte-stable).
class JobManagerRegistry {
 public:
  std::string NewContact(const std::string& host);
  void Register(std::shared_ptr<JobManagerInstance> jmi);
  Expected<std::shared_ptr<JobManagerInstance>> Lookup(
      const std::string& contact) const;
  std::size_t size() const {
    std::shared_lock lock(mu_);
    return jmis_.size();
  }

  // Jobs carrying the given jobtag — "a jobtag indicates the job
  // membership in a group of jobs for which policy can be defined"; a VO
  // administrator uses this to manage the whole group at once.
  std::vector<std::shared_ptr<JobManagerInstance>> FindByJobtag(
      std::string_view tag) const;

  // Every live JMI (used by state persistence).
  std::vector<std::shared_ptr<JobManagerInstance>> All() const;

 private:
  mutable obs::ProfiledSharedMutex mu_{"jmi_registry"};
  std::unordered_map<std::string, std::shared_ptr<JobManagerInstance>> jmis_;
  std::atomic<std::uint64_t> next_job_number_{1};
};

class Gatekeeper {
 public:
  struct Params {
    std::string host;  // e.g. "fusion.anl.gov"
    gsi::Credential host_credential;
    const gsi::TrustRegistry* trust = nullptr;
    const gridmap::GridMap* gridmap = nullptr;
    os::SimScheduler* scheduler = nullptr;
    const Clock* clock = nullptr;
    JobManagerRegistry* jmi_registry = nullptr;
    // Callout dispatcher handed to every JMI (the Job Manager PEP);
    // nullptr reproduces stock GT2.
    CalloutDispatcher* callouts = nullptr;
    // When true and a kGatekeeperAuthzType binding exists, the Gatekeeper
    // also runs its own identity-level callout before the gridmap lookup.
    bool enable_gatekeeper_callout = false;
    // Router for client job-state callbacks, handed to every JMI.
    CallbackRouter* callback_router = nullptr;
  };

  explicit Gatekeeper(Params params);

  // Full job submission path: mutual authentication with delegation,
  // limited-proxy rejection, (optional) gatekeeper PEP, grid-mapfile
  // authorization and account mapping, JMI creation, job start.
  // Returns the job contact. A non-empty `callback_url` subscribes that
  // contact to the job's state transitions.
  Expected<std::string> SubmitJob(const gsi::Credential& client,
                                  const std::string& rsl_text,
                                  const std::string& callback_url = "");

  const std::string& host() const { return params_.host; }
  // The service credential, exposed so frame endpoints can run their own
  // handshake for requests that never reach SubmitJob (token exchange).
  const gsi::Credential& host_credential() const {
    return params_.host_credential;
  }

 private:
  Expected<std::string> DoSubmitJob(const gsi::Credential& client,
                                    const std::string& rsl_text,
                                    const std::string& callback_url);

  Params params_;
};

// Builds RequesterInfo from the acceptor's view of a security context.
RequesterInfo MakeRequesterInfo(const gsi::SecurityContext& context);

}  // namespace gridauthz::gram
