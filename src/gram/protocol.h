// GRAM protocol-level types: job states as reported to clients, the error
// codes of the GT2 GRAM protocol, and the paper's extensions to it —
// distinct codes for authorization denial and authorization system
// failure, with a reason string describing why authorization was denied
// (section 5.2, "Errors").
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/error.h"
#include "os/scheduler.h"

namespace gridauthz::gram {

// Job states as surfaced through the GRAM protocol.
enum class JobStatus {
  kUnsubmitted,
  kPending,
  kActive,
  kSuspended,
  kDone,
  kFailed,
};

std::string_view to_string(JobStatus status);
JobStatus FromLrmState(os::JobState state);

// GRAM protocol error codes. The first group exists in stock GT2; the
// last two are the paper's protocol extension.
enum class GramErrorCode {
  kNone = 0,
  kAuthenticationFailed,
  kUserNotMapped,        // not in the grid-mapfile
  kBadRsl,
  kInvalidRequest,
  kJobNotFound,
  kSchedulerError,
  kLimitedProxyRejected,
  // --- extensions (section 5.2) ---
  kAuthorizationDenied,
  kAuthorizationSystemFailure,
};

std::string_view to_string(GramErrorCode code);

// Maps an internal error to the GRAM protocol code a client would see.
GramErrorCode ToProtocolCode(const Error& error);

// The host component of a job contact ("https://host:port/jobmanager/N"
// -> "host"), or "" when the contact does not look like a contact URL.
// This is the fleet routing key: contacts are minted by the node that
// owns the job, so the embedded host names the owning gatekeeper.
std::string_view ContactHost(std::string_view contact);

// Reply to a status ("information") request.
struct JobStatusReply {
  JobStatus status = JobStatus::kUnsubmitted;
  std::string job_contact;
  std::string job_owner;              // Grid identity of the initiator
  std::optional<std::string> jobtag;  // the paper's job-group attribute
  std::string failure_reason;
};

// Management signals carried by the GRAM "signal" action. The paper
// groups "a variety of job management actions such as changing priority"
// under signal.
enum class SignalKind { kSuspend, kResume, kPriority };

std::string_view to_string(SignalKind kind);

struct SignalRequest {
  SignalKind kind = SignalKind::kSuspend;
  int priority = 0;  // used by kPriority
};

}  // namespace gridauthz::gram
