#include "gram/client.h"

#include "common/deadline.h"
#include "common/logging.h"

namespace gridauthz::gram {

GramClient::GramClient(gsi::Credential credential,
                       const gsi::TrustRegistry* trust, const Clock* clock)
    : credential_(std::move(credential)), trust_(trust), clock_(clock) {}

std::optional<std::int64_t> GramClient::BudgetDeadline() const {
  if (deadline_budget_us_ <= 0) return std::nullopt;
  return clock_->NowMicros() + deadline_budget_us_;
}

Expected<std::string> GramClient::Submit(Gatekeeper& gatekeeper,
                                         const std::string& rsl_text,
                                         const std::string& callback_url) {
  DeadlineScope deadline(BudgetDeadline());
  return gatekeeper.SubmitJob(credential_, rsl_text, callback_url);
}

Expected<std::vector<std::string>> GramClient::SubmitMulti(
    Gatekeeper& gatekeeper, const JobManagerRegistry& registry,
    const std::string& rsl_text) {
  GA_TRY(rsl::Specification spec, rsl::Parse(rsl_text));
  std::vector<std::string> contacts;
  contacts.reserve(spec.requests.size());
  for (const rsl::Conjunction& request : spec.requests) {
    auto contact = gatekeeper.SubmitJob(credential_, request.ToString());
    if (!contact.ok()) {
      // All-or-nothing: roll back the sub-jobs already started.
      for (const std::string& started : contacts) {
        (void)Cancel(registry, started);
      }
      return Error{contact.error().code(),
                   "multi-request sub-request " +
                       std::to_string(contacts.size() + 1) + " of " +
                       std::to_string(spec.requests.size()) +
                       " failed: " + contact.error().message()};
    }
    contacts.push_back(std::move(contact).value());
  }
  return contacts;
}

Expected<std::pair<std::shared_ptr<JobManagerInstance>, RequesterInfo>>
GramClient::Connect(const JobManagerRegistry& registry,
                    const std::string& contact,
                    const ManagementOptions& options) {
  GA_TRY(std::shared_ptr<JobManagerInstance> jmi, registry.Lookup(contact));

  // Mutual authentication with the JMI, which runs under the job
  // initiator's delegated credential (trust model, section 6.2).
  GA_TRY(gsi::HandshakeResult handshake,
         gsi::EstablishSecurityContext(credential_, jmi->credential(),
                                       *trust_, clock_->Now()));

  // Client-side identity verification. Stock GT2 expects the JMI to be
  // "us"; the extension accepts the known job originator instead.
  const std::string jmi_identity =
      handshake.initiator_view.peer_identity.str();
  const std::string expected =
      options.expected_job_owner.value_or(identity());
  if (jmi_identity != expected) {
    return Error{ErrCode::kAuthenticationFailed,
                 "job manager identity '" + jmi_identity +
                     "' does not match expected identity '" + expected + "'"};
  }

  RequesterInfo requester = MakeRequesterInfo(handshake.acceptor_view);
  return std::make_pair(std::move(jmi), std::move(requester));
}

Expected<JobStatusReply> GramClient::Status(const JobManagerRegistry& registry,
                                            const std::string& contact,
                                            const ManagementOptions& options) {
  DeadlineScope deadline(BudgetDeadline());
  GA_TRY(auto connection, Connect(registry, contact, options));
  return connection.first->Status(connection.second);
}

Expected<void> GramClient::Cancel(const JobManagerRegistry& registry,
                                  const std::string& contact,
                                  const ManagementOptions& options) {
  DeadlineScope deadline(BudgetDeadline());
  GA_TRY(auto connection, Connect(registry, contact, options));
  return connection.first->Cancel(connection.second);
}

Expected<void> GramClient::Signal(const JobManagerRegistry& registry,
                                  const std::string& contact,
                                  const SignalRequest& signal,
                                  const ManagementOptions& options) {
  DeadlineScope deadline(BudgetDeadline());
  GA_TRY(auto connection, Connect(registry, contact, options));
  return connection.first->Signal(connection.second, signal);
}

}  // namespace gridauthz::gram
