// GRAM job-state callbacks: GT2 clients pass a callback contact with the
// job request and the Job Manager sends status-update messages to it as
// the job progresses ("During the job's execution the JMI monitors its
// progress"). The CallbackRouter stands in for the client-side listener
// ports: clients register a listener and get a callback contact URL; the
// JMI posts JobStatusReply updates to that URL.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "gram/protocol.h"

namespace gridauthz::gram {

class CallbackRouter {
 public:
  using Listener = std::function<void(const JobStatusReply&)>;

  // Registers a listener; returns its callback contact URL.
  std::string Register(Listener listener);
  void Unregister(const std::string& url);

  // Delivers an update; unknown URLs are dropped (the client went away),
  // matching GT2's fire-and-forget callbacks.
  void Post(const std::string& url, const JobStatusReply& update);

  std::size_t listener_count() const { return listeners_.size(); }
  std::uint64_t delivered_count() const { return delivered_; }

 private:
  std::map<std::string, Listener> listeners_;
  std::uint64_t next_id_ = 1;
  std::uint64_t delivered_ = 0;
};

}  // namespace gridauthz::gram
