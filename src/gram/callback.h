// GRAM job-state callbacks: GT2 clients pass a callback contact with the
// job request and the Job Manager sends status-update messages to it as
// the job progresses ("During the job's execution the JMI monitors its
// progress"). The CallbackRouter stands in for the client-side listener
// ports: clients register a listener and get a callback contact URL; the
// JMI posts JobStatusReply updates to that URL.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "gram/protocol.h"

namespace gridauthz::gram {

// Thread-safe: JMIs post state updates from whichever server worker
// thread drove the transition, while clients register and unregister
// listeners concurrently. Post invokes the listener on a copy taken
// outside the lock, so a slow listener never blocks registration — the
// flip side is that a listener may still be invoked once after its
// Unregister returns, and listeners must not call back into the router.
class CallbackRouter {
 public:
  using Listener = std::function<void(const JobStatusReply&)>;

  // Registers a listener; returns its callback contact URL.
  std::string Register(Listener listener);
  void Unregister(const std::string& url);

  // Delivers an update; unknown URLs are dropped (the client went away),
  // matching GT2's fire-and-forget callbacks.
  void Post(const std::string& url, const JobStatusReply& update);

  std::size_t listener_count() const {
    std::lock_guard lock(mu_);
    return listeners_.size();
  }
  std::uint64_t delivered_count() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Listener> listeners_;
  std::uint64_t next_id_ = 1;
  std::atomic<std::uint64_t> delivered_{0};
};

}  // namespace gridauthz::gram
