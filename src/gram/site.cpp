#include "gram/site.h"

#include <stdexcept>

namespace gridauthz::gram {

namespace {

gsi::DistinguishedName MustParseDn(const std::string& text) {
  auto dn = gsi::DistinguishedName::Parse(text);
  // Site options are programmer-supplied constants; fail loudly.
  if (!dn.ok()) {
    throw std::invalid_argument("bad DN in site options: " + text + " (" +
                                dn.error().to_string() + ")");
  }
  return std::move(dn).value();
}

}  // namespace

SimulatedSite::SimulatedSite(SiteOptions options)
    : options_(std::move(options)),
      clock_(options_.start_time),
      clock_ptr_(options_.shared_clock != nullptr ? options_.shared_clock
                                                  : &clock_),
      ca_(MustParseDn(options_.ca_name), clock_ptr_->Now()),
      scheduler_(os::SchedulerConfig{options_.cpu_slots, options_.queues},
                 &accounts_, clock_ptr_->Now()),
      host_credential_(IssueCredential(
          ca_,
          MustParseDn("/O=Grid/OU=services/CN=" + options_.host),
          clock_ptr_->Now())),
      gatekeeper_(Gatekeeper::Params{}) {
  trust_.AddTrustedCa(ca_.certificate());
  Gatekeeper::Params params;
  params.host = options_.host;
  params.host_credential = host_credential_;
  params.trust = &trust_;
  params.gridmap = &gridmap_;
  params.scheduler = &scheduler_;
  params.clock = clock_ptr_;
  params.jmi_registry = &jmi_registry_;
  params.callouts = &callouts_;
  params.callback_router = &callback_router_;
  params.enable_gatekeeper_callout = options_.enable_gatekeeper_callout;
  gatekeeper_ = Gatekeeper{std::move(params)};
}

Expected<gsi::Credential> SimulatedSite::CreateUser(const std::string& dn_text) {
  GA_TRY(gsi::DistinguishedName dn, gsi::DistinguishedName::Parse(dn_text));
  return IssueCredential(ca_, dn, clock_ptr_->Now());
}

Expected<void> SimulatedSite::AddAccount(const std::string& name,
                                         std::vector<std::string> groups,
                                         os::ResourceLimits limits) {
  return accounts_.Add(name, std::move(groups), limits);
}

Expected<void> SimulatedSite::MapUser(const gsi::Credential& user,
                                      const std::string& account) {
  return gridmap_.Add(user.identity(), {account});
}

GramClient SimulatedSite::MakeClient(const gsi::Credential& credential) {
  return GramClient{credential, &trust_, clock_ptr_};
}

void SimulatedSite::UseJobManagerPep(
    std::shared_ptr<core::PolicySource> source) {
  callouts_.BindDirect(std::string{kJobManagerAuthzType},
                       MakePdpCallout(std::move(source)));
}

void SimulatedSite::UseJobManagerPepFromConfig(const std::string& library,
                                               const std::string& symbol) {
  callouts_.Bind(CalloutBinding{std::string{kJobManagerAuthzType}, library,
                                symbol});
}

void SimulatedSite::Advance(Duration seconds) {
  clock_ptr_->Advance(seconds);
  scheduler_.Advance(seconds);
}

}  // namespace gridauthz::gram
