// Bridges the GRAM callout API to a core::PolicySource: the callout
// parses the RSL it was handed, rebuilds the AuthorizationRequest, asks
// the PDP, and maps the Decision to the callout's success / authorization
// error contract. This is the "PEP authorization module" of section 5.2
// when the policy comes from the paper's plain-text files; the Akenti and
// CAS adapters plug in behind the same PolicySource interface.
#pragma once

#include <memory>

#include "core/decision_cache.h"
#include "core/source.h"
#include "gram/callout.h"

namespace gridauthz::gram {

// Builds a callout evaluating requests against `source`. The returned
// callout denies with the PDP's reason, and converts PDP system errors to
// authorization system failures.
AuthorizationCallout MakePdpCallout(std::shared_ptr<core::PolicySource> source);

// Same, with the sharded decision cache in front: repeated management
// callouts (cancel / information / signal) for an unchanged policy
// generation are served from cache; start callouts always re-evaluate.
AuthorizationCallout MakeCachedPdpCallout(
    std::shared_ptr<core::PolicySource> source,
    core::DecisionCacheOptions options = {});

// Registers a (library, symbol) entry in the global callout registry that
// resolves to MakePdpCallout(source) — this is how examples and tests
// exercise the paper's file-configured runtime loading path.
void RegisterPdpCalloutLibrary(const std::string& library,
                               const std::string& symbol,
                               std::shared_ptr<core::PolicySource> source);

// Converts CalloutData into the core AuthorizationRequest (parsing the
// RSL text); exposed for the backend adapters.
Expected<core::AuthorizationRequest> ToAuthorizationRequest(
    const CalloutData& data);

}  // namespace gridauthz::gram
