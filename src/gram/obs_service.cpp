#include "gram/obs_service.h"

#include <cstdio>

#include "common/json.h"
#include "gram/server.h"
#include "obs/contention.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace gridauthz::gram::wire {

namespace {

constexpr std::string_view kTracePrefix = "/trace/";

std::string RenderDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

ObsReply TextReply(int status, std::string body) {
  return ObsReply{status, "text/plain", std::move(body)};
}

ObsReply JsonReply(int status, std::string body) {
  return ObsReply{status, "application/json", std::move(body)};
}

std::string EncodeReply(const ObsReply& reply) {
  std::string frame;
  FrameWriter writer(&frame);
  // Sorted key order: byte-identical to the Message encoding this
  // replaced.
  writer.Add("body", reply.body);
  writer.Add("content-type", reply.content_type);
  if (!reply.generation.empty()) writer.Add("generation", reply.generation);
  writer.Add("message-type", "obs-reply");
  writer.AddInt("status", reply.status);
  return frame;
}

}  // namespace

ObsService::ObsService(ObsServiceOptions options)
    : options_(std::move(options)) {}

std::string ObsService::Handle(const gsi::Credential& peer,
                               std::string_view frame) {
  auto message = MessageView::Parse(frame);
  if (!message.ok()) {
    return EncodeReply(
        TextReply(400, "malformed frame: " + message.error().to_string()));
  }
  const std::string type{message->Get("message-type").value_or("")};
  if (type != "obs-request") {
    // Data-plane traffic: one listener serves jobs and operations.
    if (options_.inner != nullptr) return options_.inner->Handle(peer, frame);
    return EncodeReply(TextReply(
        400, "unexpected message-type '" + type + "' on obs endpoint"));
  }
  ObsReply reply = Dispatch(*message);
  // /metrics.json scrapes are metrics-silent: counting the scrape would
  // mutate the registry it just fingerprinted, so the advertised
  // generation would never match the next if-generation and conditional
  // scraping (ROADMAP 1e) could never converge to a cache hit.
  const std::string path{message->Get("path").value_or("")};
  if (path != "/metrics.json") {
    obs::Metrics()
        .GetCounter("obs_requests_total",
                    {{"path", path}, {"status", std::to_string(reply.status)}})
        .Increment();
  }
  return EncodeReply(reply);
}

ObsReply ObsService::Dispatch(const MessageView& message) {
  auto path = message.Require("path");
  if (!path.ok()) return TextReply(400, path.error().to_string());
  if (*path == "/metrics") {
    // The registry's own series plus the contention registry's —
    // lock_wait_us{site} and friends live outside MetricsRegistry so
    // profiling the registry mutex cannot recurse.
    return TextReply(200,
                     obs::Metrics().RenderText() +
                         obs::Contention().RenderText());
  }
  if (*path == "/metrics.json") {
    ObsReply reply;
    // Fingerprint BEFORE render: concurrent writers may land between
    // the two, making the body newer than the advertised generation —
    // which costs at worst one redundant full scrape later. The other
    // order could advertise a generation newer than the body and let a
    // future 304 bless a stale cached document.
    reply.generation =
        std::to_string(obs::Metrics().ActivityFingerprint());
    if (auto want = message.Get("if-generation");
        want && *want == reply.generation) {
      // Nothing changed since the caller's cached snapshot: skip the
      // render entirely and answer 304 with the matching generation.
      reply.status = 304;
      reply.content_type = "text/plain";
      return reply;
    }
    reply.status = 200;
    reply.content_type = "application/json";
    reply.body = obs::Metrics().RenderJson();
    return reply;
  }
  if (*path == "/contention") {
    return JsonReply(200, obs::Contention().RenderJson());
  }
  if (*path == "/profile") {
    // Collapsed-stack stage profile; pipe straight to flamegraph.pl.
    return TextReply(200, obs::Profiler().RenderCollapsed());
  }
  if (path->substr(0, kTracePrefix.size()) == kTracePrefix &&
      path->size() > kTracePrefix.size()) {
    return HandleTrace(std::string{path->substr(kTracePrefix.size())});
  }
  if (*path == "/audit/query") return HandleAuditQuery(message);
  if (*path == "/healthz") return HandleHealth();
  return TextReply(404, "unknown path '" + std::string{*path} + "'");
}

ObsReply ObsService::HandleTrace(const std::string& trace_id) const {
  const std::vector<obs::Span> spans = obs::Tracer().ForTrace(trace_id);
  if (spans.empty()) {
    return TextReply(404, "no spans for trace '" + trace_id + "'");
  }
  std::string body = "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const obs::Span& span = spans[i];
    if (i > 0) body += ",";
    json::ObjectWriter entry;
    entry.String("trace", span.trace_id);
    entry.UInt("span", span.span_id);
    entry.UInt("parent", span.parent_span_id);
    entry.String("name", span.name);
    entry.String("node", span.node);
    entry.String("note", span.note);
    entry.Int("start_us", span.start_us);
    entry.Int("end_us", span.end_us);
    entry.Int("duration_us", span.duration_us());
    body += entry.Take();
  }
  body += "]";
  return JsonReply(200, std::move(body));
}

ObsReply ObsService::HandleAuditQuery(const MessageView& message) const {
  if (options_.audit_sink == nullptr) {
    return TextReply(503, "no durable audit sink configured");
  }
  core::AuditQuery query;
  if (auto subject = message.Get("subject")) query.subject = *subject;
  if (auto action = message.Get("action")) query.action = *action;
  if (auto outcome = message.Get("outcome")) {
    auto parsed = core::AuditOutcomeFromString(*outcome);
    if (!parsed.ok()) return TextReply(400, parsed.error().to_string());
    query.outcome = *parsed;
  }
  if (message.Get("time-min")) {
    auto value = message.RequireInt("time-min");
    if (!value.ok()) return TextReply(400, value.error().to_string());
    query.time_min = *value;
  }
  if (message.Get("time-max")) {
    auto value = message.RequireInt("time-max");
    if (!value.ok()) return TextReply(400, value.error().to_string());
    query.time_max = *value;
  }
  auto records = options_.audit_sink->Query(query);
  if (!records.ok()) return TextReply(500, records.error().to_string());
  std::string body = "[";
  for (std::size_t i = 0; i < records->size(); ++i) {
    if (i > 0) body += ",";
    body += core::AuditRecordToJsonLine((*records)[i]);
  }
  body += "]";
  return JsonReply(200, std::move(body));
}

ObsReply ObsService::HandleHealth() const {
  bool degraded = false;
  json::ObjectWriter out;

  std::string breakers = "[";
  bool first = true;
  for (const auto& [labels, value] :
       obs::Metrics().GaugeSeries("breaker_state")) {
    std::string backend;
    for (const auto& [key, label_value] : labels) {
      if (key == "backend") backend = label_value;
    }
    // Gauge encoding from fault/breaker.h: 0 closed, 1 open, 2 half-open.
    const std::string state =
        value == 0 ? "closed" : value == 1 ? "open" : "half-open";
    if (value == 1) degraded = true;
    if (!first) breakers += ",";
    first = false;
    json::ObjectWriter entry;
    entry.String("backend", backend);
    entry.String("state", state);
    breakers += entry.Take();
  }
  breakers += "]";

  const obs::SloTracker::Snapshot slo = obs::AuthzSlo().Window();
  if (slo.burn_rate > 1.0) degraded = true;
  json::ObjectWriter slo_out;
  slo_out.UInt("total", slo.total);
  slo_out.UInt("errors", slo.errors);
  slo_out.Raw("error_rate", RenderDouble(slo.error_rate));
  slo_out.Raw("objective", RenderDouble(slo.objective));
  slo_out.Raw("burn_rate", RenderDouble(slo.burn_rate));

  std::string reload_error;
  if (options_.last_reload_error) {
    reload_error = options_.last_reload_error();
    if (!reload_error.empty()) degraded = true;
  }

  if (!options_.node_name.empty()) out.String("node", options_.node_name);
  out.String("status", degraded ? "degraded" : "ok");
  out.UInt("policy_generation",
           options_.policy ? options_.policy->policy_generation() : 0);
  if (options_.last_reload_error) {
    out.Bool("last_reload_ok", reload_error.empty());
    if (!reload_error.empty()) out.String("last_reload_error", reload_error);
  }
  out.Raw("breakers", breakers);
  out.Raw("slo", slo_out.Take());
  if (options_.audit_sink != nullptr) {
    json::ObjectWriter sink_out;
    sink_out.UInt("written", options_.audit_sink->written());
    sink_out.UInt("dropped", options_.audit_sink->dropped());
    out.Raw("audit_sink", sink_out.Take());
  }
  if (options_.server != nullptr) {
    const ServerStats stats = options_.server->Snapshot();
    json::ObjectWriter server_out;
    server_out.Int("workers", stats.workers);
    server_out.UInt("queue_capacity", stats.queue_capacity);
    server_out.UInt("queue_depth", stats.queue_depth);
    server_out.UInt("accepted", stats.accepted_total);
    server_out.UInt("completed", stats.completed_total);
    server_out.UInt("shed_queue_full", stats.shed_queue_full);
    server_out.UInt("shed_deadline", stats.shed_deadline);
    server_out.UInt("shed_shutdown", stats.shed_shutdown);
    server_out.Int("estimated_service_us", stats.estimated_service_us);
    std::string busy = "[";
    for (std::size_t i = 0; i < stats.worker_busy_us.size(); ++i) {
      if (i > 0) busy += ",";
      busy += std::to_string(stats.worker_busy_us[i]);
    }
    busy += "]";
    server_out.Raw("worker_busy_us", busy);
    out.Raw("server", server_out.Take());
  }
  return JsonReply(200, out.Take());
}

Expected<ObsReply> ObsRequest(
    WireTransport& transport, const gsi::Credential& peer,
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& filters) {
  Message request;
  request.Set("message-type", "obs-request");
  request.Set("path", path);
  for (const auto& [key, value] : filters) request.Set(key, value);
  const std::string reply_frame =
      transport.Handle(peer, request.Serialize());
  GA_TRY(Message message, Message::Parse(reply_frame));
  if (message.Get("message-type").value_or("") != "obs-reply") {
    return Error{ErrCode::kParseError,
                 "expected obs-reply, got message-type '" +
                     message.Get("message-type").value_or("") + "'"};
  }
  ObsReply reply;
  GA_TRY(auto status, message.RequireInt("status"));
  reply.status = static_cast<int>(status);
  reply.content_type = message.Get("content-type").value_or("");
  reply.body = message.Get("body").value_or("");
  reply.generation = message.Get("generation").value_or("");
  return reply;
}

}  // namespace gridauthz::gram::wire
