#include "gram/pdp_callout.h"

#include <optional>

#include "common/arena.h"
#include "core/provenance.h"
#include "obs/trace.h"

namespace gridauthz::gram {

Expected<core::AuthorizationRequest> ToAuthorizationRequest(
    const CalloutData& data) {
  core::AuthorizationRequest request;
  request.subject = data.requester_identity;
  request.attributes = data.requester_attributes;
  request.restriction_policy = data.requester_restriction_policy;
  request.action = data.action;
  request.job_owner = data.job_owner_identity;
  request.job_id = data.job_id;
  if (!data.rsl.empty()) {
    auto parsed = rsl::ParseConjunction(data.rsl);
    if (!parsed.ok()) {
      return Error{ErrCode::kAuthorizationSystemFailure,
                   "callout could not parse job RSL: " +
                       parsed.error().message()};
    }
    request.job_rsl = std::move(parsed).value();
  }
  return request;
}

AuthorizationCallout MakePdpCallout(
    std::shared_ptr<core::PolicySource> source) {
  return [source = std::move(source)](const CalloutData& data) -> Expected<void> {
    // One arena per enforced request: everything the evaluation chain
    // below allocates as scratch dies here. Decision/provenance strings
    // are ordinary heap strings because they escape this scope.
    const RequestArenaScope arena_scope;
    obs::ScopedSpan span("pdp_callout");
    // The PEP is where provenance collection begins: open a scope unless
    // a caller (e.g. an explain tool) already installed one, and stamp
    // the enforcement context every layer below will extend.
    std::optional<core::ProvenanceScope> scope;
    if (core::CurrentProvenance() == nullptr) scope.emplace();
    if (auto* prov = core::CurrentProvenance()) {
      prov->pep_action = data.action;
      prov->pep_job_id = data.job_id;
      prov->peer_trace_id = data.trace_id;
    }
    core::ProvenanceStageTimer stage("pep/callout");
    GA_TRY(core::AuthorizationRequest request, ToAuthorizationRequest(data));
    GA_TRY(core::Decision decision, source->Authorize(request));
    if (!decision.permitted()) {
      return Error{ErrCode::kAuthorizationDenied, decision.reason};
    }
    return Ok();
  };
}

AuthorizationCallout MakeCachedPdpCallout(
    std::shared_ptr<core::PolicySource> source,
    core::DecisionCacheOptions options) {
  return MakePdpCallout(
      std::make_shared<core::CachingPolicySource>(std::move(source), options));
}

void RegisterPdpCalloutLibrary(const std::string& library,
                               const std::string& symbol,
                               std::shared_ptr<core::PolicySource> source) {
  CalloutLibraryRegistry::Instance().Register(
      library, symbol,
      [source]() { return MakePdpCallout(source); });
}

}  // namespace gridauthz::gram
