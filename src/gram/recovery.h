// Job Manager state persistence: GT2 Job Managers wrote their state
// (including the delegated proxy credential) to disk so that a restarted
// JM could resume managing a job that survived it. SaveJobManagerState
// serializes every live JMI — contact, owner, account, job RSL, local job
// id, and the delegated credential — and RestoreJobManagerState rebuilds
// the registry against the still-running scheduler.
#pragma once

#include <string>

#include "gram/gatekeeper.h"

namespace gridauthz::gram {

// Serializes a certificate chain (public material only) to text.
std::string EncodeCertificateChain(const std::vector<gsi::Certificate>& chain);
Expected<std::vector<gsi::Certificate>> DecodeCertificateChain(
    std::string_view text);

// Serializes a credential (certificate chain + private key) to text.
std::string EncodeCredential(const gsi::Credential& credential);
// Rebuilds a credential; the private key is re-registered for signature
// verification.
Expected<gsi::Credential> DecodeCredential(std::string_view text);

// Serializes every JMI in `registry` (only started jobs are persisted).
std::string SaveJobManagerState(const JobManagerRegistry& registry);

// Parameters shared by every restored JMI (the per-job fields come from
// the persisted state).
struct RestoreEnvironment {
  os::SimScheduler* scheduler = nullptr;
  const Clock* clock = nullptr;
  CalloutDispatcher* callouts = nullptr;
};

// Rebuilds JMIs into `registry`; returns how many were restored.
Expected<int> RestoreJobManagerState(std::string_view state_text,
                                     JobManagerRegistry& registry,
                                     const RestoreEnvironment& environment);

}  // namespace gridauthz::gram
