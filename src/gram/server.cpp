#include "gram/server.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/slo.h"

namespace gridauthz::gram::wire {

namespace {

// Cheap admission peek: message type and deadline, tolerating frames the
// inner endpoint will reject anyway (those are admitted and answered
// with the endpoint's own error reply).
struct AdmissionInfo {
  bool is_management = false;
  std::optional<std::int64_t> deadline_micros;
};

AdmissionInfo Peek(std::string_view frame) {
  AdmissionInfo info;
  auto message = MessageView::Parse(frame);
  if (!message.ok()) return info;
  info.is_management =
      message->Get("message-type").value_or("") == "management-request";
  auto deadline = message->Get("deadline-micros");
  if (deadline) {
    auto value = message->RequireInt("deadline-micros");
    if (value.ok() && *value >= 0) info.deadline_micros = *value;
  }
  return info;
}

}  // namespace

ServerTransport::ServerTransport(WireTransport* inner, ServerOptions options)
    : inner_(inner), options_(options) {
  options_.workers = std::max(options_.workers, 1);
  options_.queue_capacity = std::max<std::size_t>(options_.queue_capacity, 1);
  ewma_service_us_.store(std::max<std::int64_t>(
      options_.initial_service_estimate_us, 1));
  busy_us_ = std::make_unique<std::atomic<std::int64_t>[]>(options_.workers);
  for (int i = 0; i < options_.workers; ++i) busy_us_[i].store(0);
  threads_.reserve(options_.workers);
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ServerTransport::~ServerTransport() { Shutdown(); }

std::string ServerTransport::Shed(bool is_management,
                                  std::string_view reason_label,
                                  const std::string& detail) {
  obs::Metrics()
      .GetCounter("wire_server_shed_total",
                  {{"reason", std::string{reason_label}}})
      .Increment();
  // A shed is the authorization system failing to serve, not the client
  // misbehaving: it spends error budget like every other system failure.
  obs::AuthzSlo().Record(false);
  const std::string reason = std::string{kReasonOverload} + " " + detail;
  std::string buffer;
  FrameWriter writer(&buffer);
  if (is_management) {
    ManagementReply reply;
    reply.code = GramErrorCode::kAuthorizationSystemFailure;
    reply.status = JobStatus::kUnsubmitted;
    reply.reason = reason;
    reply.EncodeTo(writer);
  } else {
    JobRequestReply reply;
    reply.code = GramErrorCode::kAuthorizationSystemFailure;
    reply.reason = reason;
    reply.EncodeTo(writer);
  }
  return buffer;
}

std::string ServerTransport::Handle(const gsi::Credential& peer,
                                    std::string_view frame) {
  const AdmissionInfo info = Peek(frame);
  const std::int64_t now_us = obs::ObsClock()->NowMicros();

  Work work;
  work.peer = &peer;
  work.frame = frame;
  work.is_management = info.is_management;
  {
    std::unique_lock lock(qmu_);
    if (stopping_) {
      lock.unlock();
      shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
      return Shed(info.is_management, "shutdown", "server shutting down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      lock.unlock();
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return Shed(info.is_management, "queue-full",
                  "request queue full (" +
                      std::to_string(options_.queue_capacity) + " deep)");
    }
    if (info.deadline_micros) {
      // Estimated completion: queue ahead of us spread across the pool,
      // plus our own service time. If that already busts the frame's
      // deadline, queueing is doomed work — shed now, in bounded time.
      const std::int64_t estimate =
          ewma_service_us_.load(std::memory_order_relaxed);
      const std::int64_t wait_us =
          estimate * (static_cast<std::int64_t>(queue_.size()) /
                          options_.workers +
                      1);
      if (now_us >= *info.deadline_micros ||
          now_us + wait_us > *info.deadline_micros) {
        lock.unlock();
        shed_deadline_.fetch_add(1, std::memory_order_relaxed);
        return Shed(info.is_management, "deadline",
                    "deadline cannot be met (estimated wait " +
                        std::to_string(wait_us) + "us)");
      }
    }
    queue_.push_back(&work);
    queue_depth_gauge_.Set(static_cast<std::int64_t>(queue_.size()));
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  accepted_counter_.Increment();
  not_empty_.notify_one();

  std::unique_lock wait_lock(work.mu);
  work.cv.wait(wait_lock, [&work] { return work.done; });
  return std::move(work.reply);
}

void ServerTransport::WorkerLoop(int index) {
  obs::Counter& busy_counter = obs::Metrics().GetCounter(
      "wire_server_worker_busy_us", {{"worker", std::to_string(index)}});
  for (;;) {
    Work* work = nullptr;
    bool drain_shed = false;
    {
      std::unique_lock lock(qmu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      work = queue_.front();
      queue_.pop_front();
      drain_shed = stopping_;
      queue_depth_gauge_.Set(static_cast<std::int64_t>(queue_.size()));
    }
    const std::int64_t start_us = obs::ObsClock()->NowMicros();
    std::string reply;
    if (drain_shed) {
      // Shutdown drain: admitted but never started. The caller still
      // gets a well-formed reply, so shutdown can never deadlock on a
      // blocked Handle().
      shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
      reply = Shed(work->is_management, "shutdown", "server shutting down");
    } else {
      reply = inner_->Handle(*work->peer, work->frame);
      const std::int64_t elapsed =
          obs::ObsClock()->NowMicros() - start_us;
      busy_us_[index].fetch_add(elapsed, std::memory_order_relaxed);
      busy_counter.Increment(static_cast<std::uint64_t>(
          std::max<std::int64_t>(elapsed, 0)));
      // EWMA with 1/8 gain; racy read-modify-write between workers is
      // fine — it is a smoothed estimate, not an account.
      const std::int64_t previous =
          ewma_service_us_.load(std::memory_order_relaxed);
      ewma_service_us_.store(
          std::max<std::int64_t>((previous * 7 + elapsed) / 8, 1),
          std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      // Notify while still holding the lock: the Work lives on the
      // caller's stack, and the caller may return (destroying it) the
      // moment it can observe done == true.
      std::lock_guard done_lock(work->mu);
      work->reply = std::move(reply);
      work->done = true;
      work->cv.notify_one();
    }
  }
}

void ServerTransport::Shutdown() {
  {
    std::lock_guard lock(qmu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

ServerStats ServerTransport::Snapshot() const {
  ServerStats stats;
  stats.workers = options_.workers;
  stats.queue_capacity = options_.queue_capacity;
  {
    std::lock_guard lock(qmu_);
    stats.queue_depth = queue_.size();
    stats.stopping = stopping_;
  }
  stats.accepted_total = accepted_.load(std::memory_order_relaxed);
  stats.completed_total = completed_.load(std::memory_order_relaxed);
  stats.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  stats.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  stats.shed_shutdown = shed_shutdown_.load(std::memory_order_relaxed);
  stats.estimated_service_us =
      ewma_service_us_.load(std::memory_order_relaxed);
  stats.worker_busy_us.reserve(options_.workers);
  for (int i = 0; i < options_.workers; ++i) {
    stats.worker_busy_us.push_back(
        busy_us_[i].load(std::memory_order_relaxed));
  }
  return stats;
}

}  // namespace gridauthz::gram::wire
