#include "gram/wire.h"

#include <charconv>

#include "common/strings.h"

namespace gridauthz::gram::wire {

namespace {

std::string EscapeValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Expected<std::string> UnescapeValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\') {
      out.push_back(value[i]);
      continue;
    }
    if (i + 1 >= value.size()) {
      return Error{ErrCode::kParseError, "dangling escape in wire value"};
    }
    ++i;
    switch (value[i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        return Error{ErrCode::kParseError,
                     std::string{"bad escape '\\"} + value[i] + "'"};
    }
  }
  return out;
}

// Decodes the optional resilience attributes shared by both request
// types. Present-but-invalid values are protocol errors: a negative
// deadline or a zero/negative attempt ordinal can only come from a
// broken (or hostile) peer.
Expected<void> DecodeResilienceFields(const Message& message,
                                      std::optional<std::int64_t>& deadline,
                                      std::optional<std::int64_t>& attempt) {
  if (message.Get("deadline-micros")) {
    GA_TRY(std::int64_t value, message.RequireInt("deadline-micros"));
    if (value < 0) {
      return Error{ErrCode::kParseError,
                   "deadline-micros must be >= 0: " + std::to_string(value)};
    }
    deadline = value;
  }
  if (message.Get("retry-attempt")) {
    GA_TRY(std::int64_t value, message.RequireInt("retry-attempt"));
    if (value < 1) {
      return Error{ErrCode::kParseError,
                   "retry-attempt must be >= 1: " + std::to_string(value)};
    }
    attempt = value;
  }
  return Ok();
}

}  // namespace

void Message::Set(std::string_view key, std::string_view value) {
  fields_[std::string{key}] = std::string{value};
}

void Message::SetInt(std::string_view key, std::int64_t value) {
  Set(key, std::to_string(value));
}

std::optional<std::string> Message::Get(std::string_view key) const {
  auto it = fields_.find(std::string{key});
  if (it == fields_.end()) return std::nullopt;
  return it->second;
}

Expected<std::string> Message::Require(std::string_view key) const {
  auto value = Get(key);
  if (!value) {
    return Error{ErrCode::kParseError,
                 "missing required field '" + std::string{key} + "'"};
  }
  return *value;
}

Expected<std::int64_t> Message::RequireInt(std::string_view key) const {
  GA_TRY(std::string text, Require(key));
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Error{ErrCode::kParseError,
                 "field '" + std::string{key} + "' is not an integer: " + text};
  }
  return value;
}

std::string Message::Serialize() const {
  std::string out = "protocol-version: ";
  out += kProtocolVersion;
  out += "\r\n";
  for (const auto& [key, value] : fields_) {
    out += key;
    out += ": ";
    out += EscapeValue(value);
    out += "\r\n";
  }
  return out;
}

Expected<Message> Message::Parse(std::string_view text) {
  Message message;
  bool saw_version = false;
  int line_number = 0;
  for (const std::string& raw : strings::Lines(text)) {
    ++line_number;
    std::string_view line = strings::Trim(raw);
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Error{ErrCode::kParseError,
                   "wire line " + std::to_string(line_number) +
                       ": missing ':' separator"};
    }
    std::string key{strings::Trim(line.substr(0, colon))};
    GA_TRY(std::string value,
           UnescapeValue(strings::Trim(line.substr(colon + 1))));
    if (key == "protocol-version") {
      if (value != kProtocolVersion) {
        return Error{ErrCode::kParseError,
                     "unsupported protocol version: " + value};
      }
      saw_version = true;
      continue;
    }
    if (message.fields_.contains(key)) {
      return Error{ErrCode::kParseError, "duplicate wire field '" + key + "'"};
    }
    message.fields_[std::move(key)] = std::move(value);
  }
  if (!saw_version) {
    return Error{ErrCode::kParseError, "missing protocol-version"};
  }
  return message;
}

// ---- error code / status rendering -------------------------------------

std::string_view ErrorCodeToWire(GramErrorCode code) { return to_string(code); }

Expected<GramErrorCode> ErrorCodeFromWire(std::string_view text) {
  for (GramErrorCode code :
       {GramErrorCode::kNone, GramErrorCode::kAuthenticationFailed,
        GramErrorCode::kUserNotMapped, GramErrorCode::kBadRsl,
        GramErrorCode::kInvalidRequest, GramErrorCode::kJobNotFound,
        GramErrorCode::kSchedulerError, GramErrorCode::kLimitedProxyRejected,
        GramErrorCode::kAuthorizationDenied,
        GramErrorCode::kAuthorizationSystemFailure}) {
    if (to_string(code) == text) return code;
  }
  return Error{ErrCode::kParseError,
               "unknown GRAM error code: " + std::string{text}};
}

std::string_view StatusToWire(JobStatus status) { return to_string(status); }

Expected<JobStatus> StatusFromWire(std::string_view text) {
  for (JobStatus status :
       {JobStatus::kUnsubmitted, JobStatus::kPending, JobStatus::kActive,
        JobStatus::kSuspended, JobStatus::kDone, JobStatus::kFailed}) {
    if (to_string(status) == text) return status;
  }
  return Error{ErrCode::kParseError,
               "unknown job status: " + std::string{text}};
}

// ---- typed messages ------------------------------------------------------

Message JobRequest::Encode() const {
  Message message;
  message.Set("message-type", "job-request");
  message.Set("rsl", rsl);
  if (callback_url) message.Set("callback-url", *callback_url);
  if (trace_id) message.Set("trace-id", *trace_id);
  if (deadline_micros) message.SetInt("deadline-micros", *deadline_micros);
  if (attempt) message.SetInt("retry-attempt", *attempt);
  return message;
}

Expected<JobRequest> JobRequest::Decode(const Message& message) {
  GA_TRY(std::string type, message.Require("message-type"));
  if (type != "job-request") {
    return Error{ErrCode::kParseError, "not a job-request: " + type};
  }
  JobRequest request;
  GA_TRY(request.rsl, message.Require("rsl"));
  request.callback_url = message.Get("callback-url");
  request.trace_id = message.Get("trace-id");
  GA_TRY_VOID(DecodeResilienceFields(message, request.deadline_micros,
                                     request.attempt));
  return request;
}

Message JobRequestReply::Encode() const {
  Message message;
  message.Set("message-type", "job-request-reply");
  message.Set("error-code", ErrorCodeToWire(code));
  if (!job_contact.empty()) message.Set("job-contact", job_contact);
  if (!reason.empty()) message.Set("reason", reason);
  return message;
}

Expected<JobRequestReply> JobRequestReply::Decode(const Message& message) {
  GA_TRY(std::string type, message.Require("message-type"));
  if (type != "job-request-reply") {
    return Error{ErrCode::kParseError, "not a job-request-reply: " + type};
  }
  JobRequestReply reply;
  GA_TRY(std::string code_text, message.Require("error-code"));
  GA_TRY(reply.code, ErrorCodeFromWire(code_text));
  reply.job_contact = message.Get("job-contact").value_or("");
  reply.reason = message.Get("reason").value_or("");
  if (reply.code == GramErrorCode::kNone && reply.job_contact.empty()) {
    return Error{ErrCode::kParseError,
                 "successful job-request-reply without a job contact"};
  }
  return reply;
}

Message ManagementRequest::Encode() const {
  Message message;
  message.Set("message-type", "management-request");
  message.Set("action", action);
  message.Set("job-contact", job_contact);
  if (signal) {
    message.Set("signal", to_string(signal->kind));
    if (signal->kind == SignalKind::kPriority) {
      message.SetInt("priority", signal->priority);
    }
  }
  if (trace_id) message.Set("trace-id", *trace_id);
  if (deadline_micros) message.SetInt("deadline-micros", *deadline_micros);
  if (attempt) message.SetInt("retry-attempt", *attempt);
  return message;
}

Expected<ManagementRequest> ManagementRequest::Decode(const Message& message) {
  GA_TRY(std::string type, message.Require("message-type"));
  if (type != "management-request") {
    return Error{ErrCode::kParseError, "not a management-request: " + type};
  }
  ManagementRequest request;
  GA_TRY(request.action, message.Require("action"));
  GA_TRY(request.job_contact, message.Require("job-contact"));
  if (request.action != "cancel" && request.action != "information" &&
      request.action != "signal") {
    return Error{ErrCode::kParseError,
                 "unknown management action: " + request.action};
  }
  if (request.action == "signal") {
    GA_TRY(std::string kind_text, message.Require("signal"));
    SignalRequest signal;
    if (kind_text == "suspend") signal.kind = SignalKind::kSuspend;
    else if (kind_text == "resume") signal.kind = SignalKind::kResume;
    else if (kind_text == "priority") {
      signal.kind = SignalKind::kPriority;
      GA_TRY(std::int64_t priority, message.RequireInt("priority"));
      signal.priority = static_cast<int>(priority);
    } else {
      return Error{ErrCode::kParseError, "unknown signal: " + kind_text};
    }
    request.signal = signal;
  }
  request.trace_id = message.Get("trace-id");
  GA_TRY_VOID(DecodeResilienceFields(message, request.deadline_micros,
                                     request.attempt));
  return request;
}

Message ManagementReply::Encode() const {
  Message message;
  message.Set("message-type", "management-reply");
  message.Set("error-code", ErrorCodeToWire(code));
  message.Set("status", StatusToWire(status));
  if (!job_owner.empty()) message.Set("job-owner", job_owner);
  if (jobtag) message.Set("jobtag", *jobtag);
  if (!reason.empty()) message.Set("reason", reason);
  return message;
}

Expected<ManagementReply> ManagementReply::Decode(const Message& message) {
  GA_TRY(std::string type, message.Require("message-type"));
  if (type != "management-reply") {
    return Error{ErrCode::kParseError, "not a management-reply: " + type};
  }
  ManagementReply reply;
  GA_TRY(std::string code_text, message.Require("error-code"));
  GA_TRY(reply.code, ErrorCodeFromWire(code_text));
  GA_TRY(std::string status_text, message.Require("status"));
  GA_TRY(reply.status, StatusFromWire(status_text));
  reply.job_owner = message.Get("job-owner").value_or("");
  reply.jobtag = message.Get("jobtag");
  reply.reason = message.Get("reason").value_or("");
  return reply;
}

}  // namespace gridauthz::gram::wire
