#include "gram/wire.h"

#include <charconv>

#include "common/strings.h"

namespace gridauthz::gram::wire {

namespace {

void EscapeValueTo(std::string_view value, std::string& out) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
}

std::string EscapeValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  EscapeValueTo(value, out);
  return out;
}

Expected<void> UnescapeAppend(std::string_view value, std::string& out) {
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\') {
      out.push_back(value[i]);
      continue;
    }
    if (i + 1 >= value.size()) {
      return Error{ErrCode::kParseError, "dangling escape in wire value"};
    }
    ++i;
    switch (value[i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        return Error{ErrCode::kParseError,
                     std::string{"bad escape '\\"} + value[i] + "'"};
    }
  }
  return Ok();
}

Expected<std::string> UnescapeValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  GA_TRY_VOID(UnescapeAppend(value, out));
  return out;
}

// Adapts Get()'s return (optional<string> for Message, optional<
// string_view> for MessageView) to the owning optional the typed
// structs store. std::string's string_view constructor is explicit, so
// the optionals don't convert implicitly.
std::optional<std::string> ToOwned(std::optional<std::string> value) {
  return value;
}
std::optional<std::string> ToOwned(std::optional<std::string_view> value) {
  if (!value) return std::nullopt;
  return std::string{*value};
}

// Decodes the optional resilience attributes shared by both request
// types. Present-but-invalid values are protocol errors: a negative
// deadline or a zero/negative attempt ordinal can only come from a
// broken (or hostile) peer. Templated over the frame representation so
// Message and MessageView share one definition.
template <typename M>
Expected<void> DecodeResilienceFields(const M& message,
                                      std::optional<std::int64_t>& deadline,
                                      std::optional<std::int64_t>& attempt) {
  if (message.Get("deadline-micros")) {
    GA_TRY(std::int64_t value, message.RequireInt("deadline-micros"));
    if (value < 0) {
      return Error{ErrCode::kParseError,
                   "deadline-micros must be >= 0: " + std::to_string(value)};
    }
    deadline = value;
  }
  if (message.Get("retry-attempt")) {
    GA_TRY(std::int64_t value, message.RequireInt("retry-attempt"));
    if (value < 1) {
      return Error{ErrCode::kParseError,
                   "retry-attempt must be >= 1: " + std::to_string(value)};
    }
    attempt = value;
  }
  return Ok();
}

}  // namespace

void Message::Set(std::string_view key, std::string_view value) {
  fields_[std::string{key}] = std::string{value};
}

void Message::SetInt(std::string_view key, std::int64_t value) {
  Set(key, std::to_string(value));
}

std::optional<std::string> Message::Get(std::string_view key) const {
  auto it = fields_.find(std::string{key});
  if (it == fields_.end()) return std::nullopt;
  return it->second;
}

Expected<std::string> Message::Require(std::string_view key) const {
  auto value = Get(key);
  if (!value) {
    return Error{ErrCode::kParseError,
                 "missing required field '" + std::string{key} + "'"};
  }
  return *value;
}

Expected<std::int64_t> Message::RequireInt(std::string_view key) const {
  GA_TRY(std::string text, Require(key));
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Error{ErrCode::kParseError,
                 "field '" + std::string{key} + "' is not an integer: " + text};
  }
  return value;
}

std::string Message::Serialize() const {
  std::string out = "protocol-version: ";
  out += kProtocolVersion;
  out += "\r\n";
  for (const auto& [key, value] : fields_) {
    out += key;
    out += ": ";
    out += EscapeValue(value);
    out += "\r\n";
  }
  return out;
}

Expected<Message> Message::Parse(std::string_view text) {
  Message message;
  bool saw_version = false;
  int line_number = 0;
  for (const std::string& raw : strings::Lines(text)) {
    ++line_number;
    std::string_view line = strings::Trim(raw);
    if (line.empty()) continue;
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Error{ErrCode::kParseError,
                   "wire line " + std::to_string(line_number) +
                       ": missing ':' separator"};
    }
    std::string key{strings::Trim(line.substr(0, colon))};
    GA_TRY(std::string value,
           UnescapeValue(strings::Trim(line.substr(colon + 1))));
    if (key == "protocol-version") {
      if (value != kProtocolVersion) {
        return Error{ErrCode::kParseError,
                     "unsupported protocol version: " + value};
      }
      saw_version = true;
      continue;
    }
    if (message.fields_.contains(key)) {
      return Error{ErrCode::kParseError, "duplicate wire field '" + key + "'"};
    }
    message.fields_[std::move(key)] = std::move(value);
  }
  if (!saw_version) {
    return Error{ErrCode::kParseError, "missing protocol-version"};
  }
  return message;
}

// ---- zero-copy codec -----------------------------------------------------

// Mirrors Message::Parse exactly — same line splitting (one trailing
// '\r' stripped per line, trailing empty line ignored), same error
// strings, same check order (escape errors before duplicate errors) —
// but in a single pass with no per-line or per-field allocation unless
// a value actually contains an escape sequence.
Expected<MessageView> MessageView::Parse(std::string_view text) {
  MessageView view;
  bool saw_version = false;
  int line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    const bool last_segment = end == text.size();
    start = end + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    ++line_number;
    line = strings::Trim(line);
    if (line.empty()) {
      if (last_segment) break;
      continue;
    }
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Error{ErrCode::kParseError,
                   "wire line " + std::to_string(line_number) +
                       ": missing ':' separator"};
    }
    std::string_view key = strings::Trim(line.substr(0, colon));
    std::string_view raw_value = strings::Trim(line.substr(colon + 1));
    if (key == "protocol-version") {
      std::string_view value = raw_value;
      const std::size_t mark = view.arena_.size();
      if (raw_value.find('\\') != std::string_view::npos) {
        GA_TRY_VOID(UnescapeAppend(raw_value, view.arena_));
        value = std::string_view{view.arena_}.substr(mark);
      }
      if (value != Message::kProtocolVersion) {
        return Error{ErrCode::kParseError,
                     "unsupported protocol version: " + std::string{value}};
      }
      view.arena_.resize(mark);
      saw_version = true;
    } else {
      GA_TRY_VOID(view.Append(key, raw_value));
    }
    if (last_segment) break;
  }
  if (!saw_version) {
    return Error{ErrCode::kParseError, "missing protocol-version"};
  }
  return view;
}

Expected<void> MessageView::Append(std::string_view key,
                                   std::string_view raw_value) {
  Field field;
  field.key = key;
  if (raw_value.find('\\') == std::string_view::npos) {
    field.value = raw_value;
  } else {
    field.in_arena = true;
    field.arena_offset = static_cast<std::uint32_t>(arena_.size());
    GA_TRY_VOID(UnescapeAppend(raw_value, arena_));
    field.arena_length =
        static_cast<std::uint32_t>(arena_.size()) - field.arena_offset;
  }
  // Duplicate scan after unescaping so escape errors win, as in
  // Message::Parse. Linear scan: frames carry a handful of fields, and
  // the map lookup this replaces is what the hot path is shedding.
  for (std::size_t i = 0; i < count_; ++i) {
    if (at(i).key == key) {
      return Error{ErrCode::kParseError,
                   "duplicate wire field '" + std::string{key} + "'"};
    }
  }
  if (count_ < kInlineFields) {
    inline_[count_] = field;
  } else {
    overflow_.push_back(field);
  }
  ++count_;
  return Ok();
}

std::optional<std::string_view> MessageView::Get(std::string_view key) const {
  for (std::size_t i = 0; i < count_; ++i) {
    const Field& field = at(i);
    if (field.key == key) return ValueOf(field);
  }
  return std::nullopt;
}

Expected<std::string_view> MessageView::Require(std::string_view key) const {
  auto value = Get(key);
  if (!value) {
    return Error{ErrCode::kParseError,
                 "missing required field '" + std::string{key} + "'"};
  }
  return *value;
}

Expected<std::int64_t> MessageView::RequireInt(std::string_view key) const {
  GA_TRY(std::string_view text, Require(key));
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Error{ErrCode::kParseError, "field '" + std::string{key} +
                                           "' is not an integer: " +
                                           std::string{text}};
  }
  return value;
}

std::pair<std::string_view, std::string_view> MessageView::field(
    std::size_t i) const {
  const Field& entry = at(i);
  return {entry.key, ValueOf(entry)};
}

void FrameWriter::Reset() {
  out_->clear();
  *out_ += "protocol-version: ";
  *out_ += Message::kProtocolVersion;
  *out_ += "\r\n";
}

void FrameWriter::Add(std::string_view key, std::string_view value) {
  *out_ += key;
  *out_ += ": ";
  EscapeValueTo(value, *out_);
  *out_ += "\r\n";
}

void FrameWriter::AddInt(std::string_view key, std::int64_t value) {
  char buffer[24];
  auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  Add(key, std::string_view{buffer, static_cast<std::size_t>(ptr - buffer)});
}

// ---- error code / status rendering -------------------------------------

std::string_view ErrorCodeToWire(GramErrorCode code) { return to_string(code); }

Expected<GramErrorCode> ErrorCodeFromWire(std::string_view text) {
  for (GramErrorCode code :
       {GramErrorCode::kNone, GramErrorCode::kAuthenticationFailed,
        GramErrorCode::kUserNotMapped, GramErrorCode::kBadRsl,
        GramErrorCode::kInvalidRequest, GramErrorCode::kJobNotFound,
        GramErrorCode::kSchedulerError, GramErrorCode::kLimitedProxyRejected,
        GramErrorCode::kAuthorizationDenied,
        GramErrorCode::kAuthorizationSystemFailure}) {
    if (to_string(code) == text) return code;
  }
  return Error{ErrCode::kParseError,
               "unknown GRAM error code: " + std::string{text}};
}

std::string_view StatusToWire(JobStatus status) { return to_string(status); }

Expected<JobStatus> StatusFromWire(std::string_view text) {
  for (JobStatus status :
       {JobStatus::kUnsubmitted, JobStatus::kPending, JobStatus::kActive,
        JobStatus::kSuspended, JobStatus::kDone, JobStatus::kFailed}) {
    if (to_string(status) == text) return status;
  }
  return Error{ErrCode::kParseError,
               "unknown job status: " + std::string{text}};
}

// ---- typed messages ------------------------------------------------------

// The typed decoders are templated over the frame representation so the
// reference Message codec and the zero-copy MessageView stay
// decode-equivalent by construction; both public overloads instantiate
// the same body. The EncodeTo methods emit fields in sorted key order,
// matching Message's std::map iteration, so EncodeTo output is
// byte-identical to Encode().Serialize().

namespace {

template <typename M>
Expected<JobRequest> DecodeJobRequest(const M& message) {
  GA_TRY(auto type, message.Require("message-type"));
  if (type != "job-request") {
    return Error{ErrCode::kParseError,
                 "not a job-request: " + std::string{type}};
  }
  JobRequest request;
  GA_TRY(request.rsl, message.Require("rsl"));
  request.callback_url = ToOwned(message.Get("callback-url"));
  request.trace_id = ToOwned(message.Get("trace-id"));
  GA_TRY_VOID(DecodeResilienceFields(message, request.deadline_micros,
                                     request.attempt));
  return request;
}

}  // namespace

Message JobRequest::Encode() const {
  Message message;
  message.Set("message-type", "job-request");
  message.Set("rsl", rsl);
  if (callback_url) message.Set("callback-url", *callback_url);
  if (trace_id) message.Set("trace-id", *trace_id);
  if (deadline_micros) message.SetInt("deadline-micros", *deadline_micros);
  if (attempt) message.SetInt("retry-attempt", *attempt);
  return message;
}

void JobRequest::EncodeTo(FrameWriter& writer) const {
  writer.Reset();
  if (callback_url) writer.Add("callback-url", *callback_url);
  if (deadline_micros) writer.AddInt("deadline-micros", *deadline_micros);
  writer.Add("message-type", "job-request");
  if (attempt) writer.AddInt("retry-attempt", *attempt);
  writer.Add("rsl", rsl);
  if (trace_id) writer.Add("trace-id", *trace_id);
}

Expected<JobRequest> JobRequest::Decode(const Message& message) {
  return DecodeJobRequest(message);
}

Expected<JobRequest> JobRequest::Decode(const MessageView& message) {
  return DecodeJobRequest(message);
}

namespace {

template <typename M>
Expected<JobRequestReply> DecodeJobRequestReply(const M& message) {
  GA_TRY(auto type, message.Require("message-type"));
  if (type != "job-request-reply") {
    return Error{ErrCode::kParseError,
                 "not a job-request-reply: " + std::string{type}};
  }
  JobRequestReply reply;
  GA_TRY(auto code_text, message.Require("error-code"));
  GA_TRY(reply.code, ErrorCodeFromWire(code_text));
  reply.job_contact = message.Get("job-contact").value_or("");
  reply.reason = message.Get("reason").value_or("");
  if (reply.code == GramErrorCode::kNone && reply.job_contact.empty()) {
    return Error{ErrCode::kParseError,
                 "successful job-request-reply without a job contact"};
  }
  return reply;
}

}  // namespace

Message JobRequestReply::Encode() const {
  Message message;
  message.Set("message-type", "job-request-reply");
  message.Set("error-code", ErrorCodeToWire(code));
  if (!job_contact.empty()) message.Set("job-contact", job_contact);
  if (!reason.empty()) message.Set("reason", reason);
  return message;
}

void JobRequestReply::EncodeTo(FrameWriter& writer) const {
  writer.Reset();
  writer.Add("error-code", ErrorCodeToWire(code));
  if (!job_contact.empty()) writer.Add("job-contact", job_contact);
  writer.Add("message-type", "job-request-reply");
  if (!reason.empty()) writer.Add("reason", reason);
}

Expected<JobRequestReply> JobRequestReply::Decode(const Message& message) {
  return DecodeJobRequestReply(message);
}

Expected<JobRequestReply> JobRequestReply::Decode(const MessageView& message) {
  return DecodeJobRequestReply(message);
}

namespace {

template <typename M>
Expected<ManagementRequest> DecodeManagementRequest(const M& message) {
  GA_TRY(auto type, message.Require("message-type"));
  if (type != "management-request") {
    return Error{ErrCode::kParseError,
                 "not a management-request: " + std::string{type}};
  }
  ManagementRequest request;
  GA_TRY(request.action, message.Require("action"));
  GA_TRY(request.job_contact, message.Require("job-contact"));
  if (request.action != "cancel" && request.action != "information" &&
      request.action != "signal") {
    return Error{ErrCode::kParseError,
                 "unknown management action: " + request.action};
  }
  if (request.action == "signal") {
    GA_TRY(auto kind_text, message.Require("signal"));
    SignalRequest signal;
    if (kind_text == "suspend") signal.kind = SignalKind::kSuspend;
    else if (kind_text == "resume") signal.kind = SignalKind::kResume;
    else if (kind_text == "priority") {
      signal.kind = SignalKind::kPriority;
      GA_TRY(std::int64_t priority, message.RequireInt("priority"));
      signal.priority = static_cast<int>(priority);
    } else {
      return Error{ErrCode::kParseError,
                   "unknown signal: " + std::string{kind_text}};
    }
    request.signal = signal;
  }
  request.trace_id = ToOwned(message.Get("trace-id"));
  GA_TRY_VOID(DecodeResilienceFields(message, request.deadline_micros,
                                     request.attempt));
  return request;
}

}  // namespace

Message ManagementRequest::Encode() const {
  Message message;
  message.Set("message-type", "management-request");
  message.Set("action", action);
  message.Set("job-contact", job_contact);
  if (signal) {
    message.Set("signal", to_string(signal->kind));
    if (signal->kind == SignalKind::kPriority) {
      message.SetInt("priority", signal->priority);
    }
  }
  if (trace_id) message.Set("trace-id", *trace_id);
  if (deadline_micros) message.SetInt("deadline-micros", *deadline_micros);
  if (attempt) message.SetInt("retry-attempt", *attempt);
  return message;
}

void ManagementRequest::EncodeTo(FrameWriter& writer) const {
  writer.Reset();
  writer.Add("action", action);
  if (deadline_micros) writer.AddInt("deadline-micros", *deadline_micros);
  writer.Add("job-contact", job_contact);
  writer.Add("message-type", "management-request");
  if (signal && signal->kind == SignalKind::kPriority) {
    writer.AddInt("priority", signal->priority);
  }
  if (attempt) writer.AddInt("retry-attempt", *attempt);
  if (signal) writer.Add("signal", to_string(signal->kind));
  if (trace_id) writer.Add("trace-id", *trace_id);
}

Expected<ManagementRequest> ManagementRequest::Decode(const Message& message) {
  return DecodeManagementRequest(message);
}

Expected<ManagementRequest> ManagementRequest::Decode(
    const MessageView& message) {
  return DecodeManagementRequest(message);
}

namespace {

template <typename M>
Expected<ManagementReply> DecodeManagementReply(const M& message) {
  GA_TRY(auto type, message.Require("message-type"));
  if (type != "management-reply") {
    return Error{ErrCode::kParseError,
                 "not a management-reply: " + std::string{type}};
  }
  ManagementReply reply;
  GA_TRY(auto code_text, message.Require("error-code"));
  GA_TRY(reply.code, ErrorCodeFromWire(code_text));
  GA_TRY(auto status_text, message.Require("status"));
  GA_TRY(reply.status, StatusFromWire(status_text));
  reply.job_owner = message.Get("job-owner").value_or("");
  reply.jobtag = ToOwned(message.Get("jobtag"));
  reply.reason = message.Get("reason").value_or("");
  return reply;
}

}  // namespace

Message ManagementReply::Encode() const {
  Message message;
  message.Set("message-type", "management-reply");
  message.Set("error-code", ErrorCodeToWire(code));
  message.Set("status", StatusToWire(status));
  if (!job_owner.empty()) message.Set("job-owner", job_owner);
  if (jobtag) message.Set("jobtag", *jobtag);
  if (!reason.empty()) message.Set("reason", reason);
  return message;
}

void ManagementReply::EncodeTo(FrameWriter& writer) const {
  writer.Reset();
  writer.Add("error-code", ErrorCodeToWire(code));
  if (!job_owner.empty()) writer.Add("job-owner", job_owner);
  if (jobtag) writer.Add("jobtag", *jobtag);
  writer.Add("message-type", "management-reply");
  if (!reason.empty()) writer.Add("reason", reason);
  writer.Add("status", StatusToWire(status));
}

Expected<ManagementReply> ManagementReply::Decode(const Message& message) {
  return DecodeManagementReply(message);
}

Expected<ManagementReply> ManagementReply::Decode(const MessageView& message) {
  return DecodeManagementReply(message);
}

namespace {

template <typename M>
Expected<TokenRequest> DecodeTokenRequest(const M& message) {
  GA_TRY(auto type, message.Require("message-type"));
  if (type != "token-request") {
    return Error{ErrCode::kParseError,
                 "not a token-request: " + std::string{type}};
  }
  TokenRequest request;
  request.refresh_token = ToOwned(message.Get("refresh-token"));
  if (auto base = message.Get("url-base")) {
    request.url_base = std::string{*base};
  } else if (!request.refresh_token) {
    return Error{ErrCode::kParseError,
                 "token-request carries neither url-base nor refresh-token"};
  }
  request.trace_id = ToOwned(message.Get("trace-id"));
  return request;
}

template <typename M>
Expected<TokenReply> DecodeTokenReply(const M& message) {
  GA_TRY(auto type, message.Require("message-type"));
  if (type != "token-reply") {
    return Error{ErrCode::kParseError,
                 "not a token-reply: " + std::string{type}};
  }
  TokenReply reply;
  GA_TRY(auto code_text, message.Require("error-code"));
  GA_TRY(reply.code, ErrorCodeFromWire(code_text));
  reply.token = message.Get("token").value_or("");
  reply.scope = message.Get("scope").value_or("");
  reply.rights = message.Get("rights").value_or("");
  reply.reason = message.Get("reason").value_or("");
  if (auto expiry = message.Get("expiry-micros")) {
    GA_TRY(reply.expiry_us, message.RequireInt("expiry-micros"));
  }
  if (auto generation = message.Get("generation")) {
    GA_TRY(std::int64_t value, message.RequireInt("generation"));
    reply.generation = static_cast<std::uint64_t>(value);
  }
  if (reply.code == GramErrorCode::kNone && reply.token.empty()) {
    return Error{ErrCode::kParseError,
                 "successful token-reply without a token"};
  }
  return reply;
}

}  // namespace

Message TokenRequest::Encode() const {
  Message message;
  message.Set("message-type", "token-request");
  if (!url_base.empty()) message.Set("url-base", url_base);
  if (refresh_token) message.Set("refresh-token", *refresh_token);
  if (trace_id) message.Set("trace-id", *trace_id);
  return message;
}

void TokenRequest::EncodeTo(FrameWriter& writer) const {
  writer.Reset();
  writer.Add("message-type", "token-request");
  if (refresh_token) writer.Add("refresh-token", *refresh_token);
  if (trace_id) writer.Add("trace-id", *trace_id);
  if (!url_base.empty()) writer.Add("url-base", url_base);
}

Expected<TokenRequest> TokenRequest::Decode(const Message& message) {
  return DecodeTokenRequest(message);
}

Expected<TokenRequest> TokenRequest::Decode(const MessageView& message) {
  return DecodeTokenRequest(message);
}

Message TokenReply::Encode() const {
  Message message;
  message.Set("message-type", "token-reply");
  message.Set("error-code", ErrorCodeToWire(code));
  if (!token.empty()) message.Set("token", token);
  if (expiry_us != 0) message.SetInt("expiry-micros", expiry_us);
  if (generation != 0) {
    message.SetInt("generation", static_cast<std::int64_t>(generation));
  }
  if (!scope.empty()) message.Set("scope", scope);
  if (!rights.empty()) message.Set("rights", rights);
  if (!reason.empty()) message.Set("reason", reason);
  return message;
}

void TokenReply::EncodeTo(FrameWriter& writer) const {
  writer.Reset();
  writer.Add("error-code", ErrorCodeToWire(code));
  if (expiry_us != 0) writer.AddInt("expiry-micros", expiry_us);
  if (generation != 0) {
    writer.AddInt("generation", static_cast<std::int64_t>(generation));
  }
  writer.Add("message-type", "token-reply");
  if (!reason.empty()) writer.Add("reason", reason);
  if (!rights.empty()) writer.Add("rights", rights);
  if (!scope.empty()) writer.Add("scope", scope);
  if (!token.empty()) writer.Add("token", token);
}

Expected<TokenReply> TokenReply::Decode(const Message& message) {
  return DecodeTokenReply(message);
}

Expected<TokenReply> TokenReply::Decode(const MessageView& message) {
  return DecodeTokenReply(message);
}

}  // namespace gridauthz::gram::wire
