#include "gram/wire_service.h"

#include <algorithm>
#include <charconv>

#include "common/deadline.h"
#include "core/request.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace gridauthz::gram::wire {

WireEndpoint::WireEndpoint(Gatekeeper* gatekeeper,
                           const JobManagerRegistry* registry,
                           const gsi::TrustRegistry* trust, const Clock* clock)
    : gatekeeper_(gatekeeper),
      registry_(registry),
      trust_(trust),
      clock_(clock) {}

namespace {

// True when the request arrived already out of budget; counts the
// rejection. The caller still owes the peer a reply frame.
bool RejectExpired(const std::optional<std::int64_t>& deadline_micros,
                   const Clock* clock, std::string_view type,
                   std::string* reason) {
  if (!deadline_micros) return false;
  if (clock->NowMicros() < *deadline_micros) return false;
  obs::Metrics()
      .GetCounter("wire_deadline_rejected_total",
                  {{"type", std::string{type}}})
      .Increment();
  *reason = std::string{kReasonDeadlineExceeded} +
            " request deadline expired before evaluation";
  return true;
}

}  // namespace

std::string WireEndpoint::Handle(const gsi::Credential& peer,
                                 std::string_view frame) {
  // Zero-copy parse: the view borrows `frame`, which outlives this call.
  auto message = MessageView::Parse(frame);
  if (!message.ok()) {
    obs::Metrics()
        .GetCounter("wire_requests_total",
                    {{"type", "malformed"}, {"outcome", "error"}})
        .Increment();
    JobRequestReply reply;
    reply.code = GramErrorCode::kInvalidRequest;
    reply.reason = message.error().to_string();
    std::string buffer;
    FrameWriter writer(&buffer);
    reply.EncodeTo(writer);
    return buffer;
  }
  // Server-side trace root: adopt the client's `trace-id` extension
  // attribute, or mint one for stock clients that omit it. Every span,
  // audit record, and log line below here joins on this id. A caller on
  // the far side of the hop (the fleet broker) also sends its span id
  // as `parent-span-id`, so the spans opened here parent the caller's
  // attempt span instead of dangling as a second root — this is what
  // lets the broker stitch one cross-node trace tree (DESIGN.md §15).
  std::uint64_t parent_span_id = 0;
  if (auto parent = message->Get("parent-span-id")) {
    const char* first = parent->data();
    const char* last = first + parent->size();
    std::from_chars(first, last, parent_span_id);
  }
  obs::TraceScope trace(std::string{message->Get("trace-id").value_or("")},
                        parent_span_id);
  obs::ScopedSpan span("wire/handle");
  const std::int64_t start_us = obs::ObsClock()->NowMicros();

  const std::string type{message->Get("message-type").value_or("")};
  std::string reply_frame;
  bool slo_ok = true;
  if (type == "job-request") {
    reply_frame = HandleJobRequest(peer, *message, &slo_ok);
  } else if (type == "management-request") {
    reply_frame = HandleManagement(peer, *message, &slo_ok);
  } else if (type == "token-request") {
    reply_frame = HandleToken(peer, *message, &slo_ok);
  } else {
    obs::Metrics()
        .GetCounter("wire_requests_total",
                    {{"type", "unknown"}, {"outcome", "error"}})
        .Increment();
    JobRequestReply reply;
    reply.code = GramErrorCode::kInvalidRequest;
    reply.reason = "unknown message-type '" + type + "'";
    std::string buffer;
    FrameWriter writer(&buffer);
    reply.EncodeTo(writer);
    return buffer;
  }
  obs::Metrics()
      .GetCounter("wire_requests_total", {{"type", type}, {"outcome", "ok"}})
      .Increment();
  obs::Metrics()
      .GetHistogram("wire_request_latency_us", {{"type", type}})
      .Observe(obs::ObsClock()->NowMicros() - start_us);
  obs::AuthzSlo().Record(slo_ok);
  return reply_frame;
}

std::string WireEndpoint::HandleJobRequest(const gsi::Credential& peer,
                                           const MessageView& message,
                                           bool* slo_ok) {
  JobRequestReply reply;
  auto finish = [&reply, slo_ok] {
    *slo_ok = reply.code != GramErrorCode::kAuthorizationSystemFailure;
    std::string buffer;
    FrameWriter writer(&buffer);
    reply.EncodeTo(writer);
    return buffer;
  };
  auto request = JobRequest::Decode(message);
  if (!request.ok()) {
    reply.code = GramErrorCode::kInvalidRequest;
    reply.reason = request.error().to_string();
    return finish();
  }
  if (RejectExpired(request->deadline_micros, clock_, "job-request",
                    &reply.reason)) {
    reply.code = GramErrorCode::kAuthorizationSystemFailure;
    return finish();
  }
  DeadlineScope deadline(request->deadline_micros);
  auto contact = gatekeeper_->SubmitJob(peer, request->rsl,
                                        request->callback_url.value_or(""));
  if (!contact.ok()) {
    reply.code = ToProtocolCode(contact.error());
    reply.reason = contact.error().message();
  } else {
    reply.code = GramErrorCode::kNone;
    reply.job_contact = *contact;
  }
  return finish();
}

std::string WireEndpoint::HandleManagement(const gsi::Credential& peer,
                                           const MessageView& message,
                                           bool* slo_ok) {
  ManagementReply reply;
  auto finish = [&reply, slo_ok] {
    *slo_ok = reply.code != GramErrorCode::kAuthorizationSystemFailure;
    std::string buffer;
    FrameWriter writer(&buffer);
    reply.EncodeTo(writer);
    return buffer;
  };
  auto fail = [&reply, &finish](const Error& error) {
    reply.code = ToProtocolCode(error);
    reply.reason = error.message();
    return finish();
  };

  auto request = ManagementRequest::Decode(message);
  if (!request.ok()) {
    reply.code = GramErrorCode::kInvalidRequest;
    reply.reason = request.error().to_string();
    return finish();
  }
  if (RejectExpired(request->deadline_micros, clock_, "management-request",
                    &reply.reason)) {
    reply.code = GramErrorCode::kAuthorizationSystemFailure;
    return finish();
  }
  DeadlineScope deadline(request->deadline_micros);
  auto jmi = registry_->Lookup(request->job_contact);
  if (!jmi.ok()) return fail(jmi.error());

  // Authenticate the peer against the JMI's credential (the delegated
  // user credential in GT2) to obtain the verified RequesterInfo.
  auto handshake = gsi::EstablishSecurityContext(peer, (*jmi)->credential(),
                                                 *trust_, clock_->Now());
  if (!handshake.ok()) return fail(handshake.error());
  RequesterInfo requester = MakeRequesterInfo(handshake->acceptor_view);

  if (request->action == core::kActionInformation) {
    auto status = (*jmi)->Status(requester);
    if (!status.ok()) return fail(status.error());
    reply.code = GramErrorCode::kNone;
    reply.status = status->status;
    reply.job_owner = status->job_owner;
    reply.jobtag = status->jobtag;
    reply.reason = status->failure_reason;
    return finish();
  }
  if (request->action == core::kActionCancel) {
    auto cancelled = (*jmi)->Cancel(requester);
    if (!cancelled.ok()) return fail(cancelled.error());
  } else {  // signal (validated by Decode)
    auto signalled = (*jmi)->Signal(requester, *request->signal);
    if (!signalled.ok()) return fail(signalled.error());
  }
  reply.code = GramErrorCode::kNone;
  auto status = (*jmi)->Status(requester);
  if (status.ok()) {
    reply.status = status->status;
    reply.job_owner = status->job_owner;
    reply.jobtag = status->jobtag;
  } else {
    // The action succeeded but this requester may not query status (e.g.
    // cancel-only rights). Report the owner from the JMI directly.
    reply.job_owner = (*jmi)->owner_identity();
  }
  return finish();
}

std::string WireEndpoint::HandleToken(const gsi::Credential& peer,
                                      const MessageView& message,
                                      bool* slo_ok) {
  TokenReply reply;
  auto finish = [&reply, slo_ok] {
    *slo_ok = reply.code != GramErrorCode::kAuthorizationSystemFailure;
    std::string buffer;
    FrameWriter writer(&buffer);
    reply.EncodeTo(writer);
    return buffer;
  };
  auto fail = [&reply, &finish](const Error& error) {
    reply.code = ToProtocolCode(error);
    reply.reason = error.message();
    return finish();
  };

  auto request = TokenRequest::Decode(message);
  if (!request.ok()) {
    reply.code = GramErrorCode::kInvalidRequest;
    reply.reason = request.error().to_string();
    return finish();
  }
  if (datapath_ == nullptr) {
    reply.code = GramErrorCode::kAuthorizationSystemFailure;
    reply.reason = "data-path tokens are not enabled on this endpoint";
    return finish();
  }

  // The token binds the authenticated identity, never a claimed one:
  // run the handshake exactly as job submission would.
  auto handshake = gsi::EstablishSecurityContext(
      peer, gatekeeper_->host_credential(), *trust_, clock_->Now());
  if (!handshake.ok()) return fail(handshake.error());
  const std::string identity = handshake->acceptor_view.peer_identity.str();

  Expected<core::SessionToken> minted =
      request->refresh_token
          ? [&]() -> Expected<core::SessionToken> {
              // Refresh path: the presented token must be authentic AND
              // belong to this peer — a stolen token cannot be laundered
              // into a fresh one under someone else's session.
              auto claims =
                  datapath_->codec().VerifyIgnoringGeneration(
                      *request->refresh_token);
              if (!claims.ok()) return claims.error();
              if (claims->subject != identity) {
                return Error{ErrCode::kAuthorizationDenied,
                             std::string{kReasonTokenScope} +
                                 " refresh token subject does not match "
                                 "the authenticated peer"};
              }
              return datapath_->Refresh(*request->refresh_token);
            }()
          : datapath_->MintSession(identity, request->url_base);
  if (!minted.ok()) return fail(minted.error());

  reply.code = GramErrorCode::kNone;
  reply.token = std::move(minted->token);
  reply.expiry_us = minted->claims.expiry_us;
  reply.generation = minted->claims.generation;
  reply.scope = minted->claims.scope;
  reply.rights = core::RightsMaskToString(minted->claims.rights);
  return finish();
}

WireClient::WireClient(gsi::Credential credential, WireTransport* transport)
    : credential_(std::move(credential)), transport_(transport) {}

std::optional<std::int64_t> WireClient::OutgoingDeadline() const {
  std::optional<std::int64_t> deadline = CurrentDeadlineMicros();
  if (deadline_budget_us_ > 0) {
    const std::int64_t budget =
        obs::ObsClock()->NowMicros() + deadline_budget_us_;
    deadline = deadline ? std::min(*deadline, budget) : budget;
  }
  return deadline;
}

namespace {

// A reply that cannot be decoded is indistinguishable from no reply at
// all — classify it as kUnavailable (retryable), not kParseError, so
// the resilient layer treats a corrupted or truncated frame exactly
// like a dropped connection. Tagged [transport] so batch callers and
// the fleet broker can tell a dead link from a server-side failure
// without parsing prose.
Error UndecodableReply(const Error& error) {
  return Error{ErrCode::kUnavailable,
               std::string{kReasonTransport} +
                   " undecodable reply frame: " + error.to_string()};
}

}  // namespace

Expected<std::string> WireClient::SubmitFrame(const std::string& frame) {
  std::string reply_frame = transport_->Handle(credential_, frame);
  auto message = MessageView::Parse(reply_frame);
  if (!message.ok()) return UndecodableReply(message.error());
  auto decoded = JobRequestReply::Decode(*message);
  if (!decoded.ok()) return UndecodableReply(decoded.error());
  const JobRequestReply& reply = *decoded;
  if (reply.code != GramErrorCode::kNone) {
    ErrCode code = reply.code == GramErrorCode::kAuthorizationDenied
                       ? ErrCode::kAuthorizationDenied
                   : reply.code == GramErrorCode::kAuthorizationSystemFailure
                       ? ErrCode::kAuthorizationSystemFailure
                       : ErrCode::kUnavailable;
    return Error{code, std::string{to_string(reply.code)} +
                           (reply.reason.empty() ? "" : ": " + reply.reason)};
  }
  return reply.job_contact;
}

Expected<std::string> WireClient::Submit(const std::string& rsl) {
  JobRequest request;
  request.rsl = rsl;
  last_trace_id_ = obs::GenerateTraceId();
  request.trace_id = last_trace_id_;
  request.deadline_micros = OutgoingDeadline();
  if (retry_attempt_ > 0) request.attempt = retry_attempt_;
  std::string frame;
  FrameWriter writer(&frame);
  request.EncodeTo(writer);
  return SubmitFrame(frame);
}

std::vector<Expected<std::string>> WireClient::SubmitMany(
    std::span<const std::string> rsls) {
  std::vector<Expected<std::string>> results;
  results.reserve(rsls.size());
  // One scaffold, one buffer: per call only the rsl, trace-id, and
  // deadline fields change, and EncodeTo re-renders into the same reused
  // allocation.
  JobRequest request;
  if (retry_attempt_ > 0) request.attempt = retry_attempt_;
  std::string frame;
  FrameWriter writer(&frame);
  for (const std::string& rsl : rsls) {
    request.rsl = rsl;
    // Fresh deadline per item, matching Submit(): a slow or dead
    // transport mid-batch must fail THAT item with a typed reason, not
    // burn the shared absolute deadline and doom every item after it.
    request.deadline_micros = OutgoingDeadline();
    last_trace_id_ = obs::GenerateTraceId();
    request.trace_id = last_trace_id_;
    request.EncodeTo(writer);
    results.push_back(SubmitFrame(frame));
  }
  return results;
}

Expected<ManagementReply> WireClient::Manage(
    const std::string& action, const std::string& contact,
    const std::optional<SignalRequest>& signal) {
  ManagementRequest request;
  request.action = action;
  request.job_contact = contact;
  request.signal = signal;
  last_trace_id_ = obs::GenerateTraceId();
  request.trace_id = last_trace_id_;
  request.deadline_micros = OutgoingDeadline();
  if (retry_attempt_ > 0) request.attempt = retry_attempt_;
  std::string frame;
  FrameWriter writer(&frame);
  request.EncodeTo(writer);
  std::string reply_frame = transport_->Handle(credential_, frame);
  auto message = MessageView::Parse(reply_frame);
  if (!message.ok()) return UndecodableReply(message.error());
  auto decoded = ManagementReply::Decode(*message);
  if (!decoded.ok()) return UndecodableReply(decoded.error());
  ManagementReply reply = *decoded;
  if (reply.code != GramErrorCode::kNone) {
    ErrCode code = reply.code == GramErrorCode::kAuthorizationDenied
                       ? ErrCode::kAuthorizationDenied
                   : reply.code == GramErrorCode::kAuthorizationSystemFailure
                       ? ErrCode::kAuthorizationSystemFailure
                       : ErrCode::kUnavailable;
    return Error{code, std::string{to_string(reply.code)} +
                           (reply.reason.empty() ? "" : ": " + reply.reason)};
  }
  return reply;
}

Expected<TokenReply> WireClient::TokenExchange(TokenRequest request) {
  last_trace_id_ = obs::GenerateTraceId();
  request.trace_id = last_trace_id_;
  std::string frame;
  FrameWriter writer(&frame);
  request.EncodeTo(writer);
  std::string reply_frame = transport_->Handle(credential_, frame);
  auto message = MessageView::Parse(reply_frame);
  if (!message.ok()) return UndecodableReply(message.error());
  auto decoded = TokenReply::Decode(*message);
  if (!decoded.ok()) return UndecodableReply(decoded.error());
  TokenReply reply = *decoded;
  if (reply.code != GramErrorCode::kNone) {
    ErrCode code = reply.code == GramErrorCode::kAuthorizationDenied
                       ? ErrCode::kAuthorizationDenied
                   : reply.code == GramErrorCode::kAuthorizationSystemFailure
                       ? ErrCode::kAuthorizationSystemFailure
                       : ErrCode::kUnavailable;
    return Error{code, std::string{to_string(reply.code)} +
                           (reply.reason.empty() ? "" : ": " + reply.reason)};
  }
  return reply;
}

Expected<TokenReply> WireClient::RequestDataToken(const std::string& url_base) {
  TokenRequest request;
  request.url_base = url_base;
  return TokenExchange(std::move(request));
}

Expected<TokenReply> WireClient::RefreshDataToken(const std::string& token) {
  TokenRequest request;
  request.refresh_token = token;
  return TokenExchange(std::move(request));
}

Expected<ManagementReply> WireClient::Status(const std::string& contact) {
  return Manage(std::string{core::kActionInformation}, contact, std::nullopt);
}

Expected<void> WireClient::Cancel(const std::string& contact) {
  GA_TRY(ManagementReply reply,
         Manage(std::string{core::kActionCancel}, contact, std::nullopt));
  (void)reply;
  return Ok();
}

Expected<void> WireClient::Signal(const std::string& contact,
                                  const SignalRequest& signal) {
  GA_TRY(ManagementReply reply,
         Manage(std::string{core::kActionSignal}, contact, signal));
  (void)reply;
  return Ok();
}

}  // namespace gridauthz::gram::wire
