#include "gram/recovery.h"

#include "common/logging.h"
#include "common/strings.h"
#include "gram/wire.h"

namespace gridauthz::gram {

namespace {

constexpr std::string_view kFrameSeparator = "%%";

Expected<gsi::CertType> CertTypeFromString(std::string_view text) {
  for (gsi::CertType type :
       {gsi::CertType::kCa, gsi::CertType::kEndEntity,
        gsi::CertType::kImpersonationProxy, gsi::CertType::kLimitedProxy,
        gsi::CertType::kRestrictedProxy}) {
    if (to_string(type) == text) return type;
  }
  return Error{ErrCode::kParseError,
               "unknown certificate type: " + std::string{text}};
}

}  // namespace

namespace {

void EncodeChainInto(wire::Message& message,
                     const std::vector<gsi::Certificate>& chain) {
  message.SetInt("cert-count", static_cast<std::int64_t>(chain.size()));
  int index = 0;
  for (const gsi::Certificate& cert : chain) {
    std::string prefix = "cert" + std::to_string(index++) + "-";
    message.SetInt(prefix + "serial", static_cast<std::int64_t>(cert.serial));
    message.Set(prefix + "type", to_string(cert.type));
    message.Set(prefix + "subject", cert.subject.str());
    message.Set(prefix + "issuer", cert.issuer.str());
    message.Set(prefix + "pubkey", cert.subject_key.fingerprint);
    message.SetInt(prefix + "not-before", cert.not_before);
    message.SetInt(prefix + "not-after", cert.not_after);
    if (!cert.restriction_policy.empty()) {
      message.Set(prefix + "policy", cert.restriction_policy);
    }
    message.Set(prefix + "signature", cert.signature);
  }
}

Expected<std::vector<gsi::Certificate>> DecodeChainFrom(
    const wire::Message& message) {
  GA_TRY(std::int64_t count, message.RequireInt("cert-count"));
  if (count < 1) {
    return Error{ErrCode::kParseError, "chain without certificates"};
  }
  std::vector<gsi::Certificate> chain;
  chain.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    std::string prefix = "cert" + std::to_string(i) + "-";
    gsi::Certificate cert;
    GA_TRY(std::int64_t serial, message.RequireInt(prefix + "serial"));
    cert.serial = static_cast<std::uint64_t>(serial);
    GA_TRY(std::string type_text, message.Require(prefix + "type"));
    GA_TRY(cert.type, CertTypeFromString(type_text));
    GA_TRY(std::string subject_text, message.Require(prefix + "subject"));
    GA_TRY(cert.subject, gsi::DistinguishedName::Parse(subject_text));
    GA_TRY(std::string issuer_text, message.Require(prefix + "issuer"));
    GA_TRY(cert.issuer, gsi::DistinguishedName::Parse(issuer_text));
    GA_TRY(cert.subject_key.fingerprint, message.Require(prefix + "pubkey"));
    GA_TRY(cert.not_before, message.RequireInt(prefix + "not-before"));
    GA_TRY(cert.not_after, message.RequireInt(prefix + "not-after"));
    cert.restriction_policy = message.Get(prefix + "policy").value_or("");
    GA_TRY(cert.signature, message.Require(prefix + "signature"));
    chain.push_back(std::move(cert));
  }
  return chain;
}

}  // namespace

std::string EncodeCertificateChain(
    const std::vector<gsi::Certificate>& chain) {
  wire::Message message;
  EncodeChainInto(message, chain);
  return message.Serialize();
}

Expected<std::vector<gsi::Certificate>> DecodeCertificateChain(
    std::string_view text) {
  GA_TRY(wire::Message message, wire::Message::Parse(text));
  return DecodeChainFrom(message);
}

std::string EncodeCredential(const gsi::Credential& credential) {
  wire::Message message;
  message.Set("key-bytes", credential.key().bytes());
  EncodeChainInto(message, credential.chain());
  return message.Serialize();
}

Expected<gsi::Credential> DecodeCredential(std::string_view text) {
  GA_TRY(wire::Message message, wire::Message::Parse(text));
  GA_TRY(std::string key_bytes, message.Require("key-bytes"));
  GA_TRY(std::vector<gsi::Certificate> chain, DecodeChainFrom(message));
  // Re-register the key so signatures verify after the "restart".
  gsi::PrivateKey key{std::move(key_bytes)};
  gsi::KeyStore::Instance().Register(key);
  return gsi::Credential{std::move(chain), std::move(key)};
}

std::string SaveJobManagerState(const JobManagerRegistry& registry) {
  std::string out;
  for (const auto& jmi : registry.All()) {
    if (!jmi->started()) continue;  // nothing to resume
    wire::Message message;
    message.Set("contact", jmi->contact());
    message.Set("owner", jmi->owner_identity());
    message.Set("account", jmi->local_account());
    message.SetInt("local-job-id",
                   static_cast<std::int64_t>(jmi->local_job_id()));
    message.Set("rsl", jmi->job_rsl().ToString());
    message.Set("credential", EncodeCredential(jmi->credential()));
    out += message.Serialize();
    out += kFrameSeparator;
    out += '\n';
  }
  return out;
}

Expected<int> RestoreJobManagerState(std::string_view state_text,
                                     JobManagerRegistry& registry,
                                     const RestoreEnvironment& environment) {
  int restored = 0;
  std::string current_frame;
  auto flush = [&]() -> Expected<void> {
    if (strings::Trim(current_frame).empty()) return Ok();
    GA_TRY(wire::Message message, wire::Message::Parse(current_frame));
    current_frame.clear();

    JobManagerInstance::Params params;
    GA_TRY(params.contact, message.Require("contact"));
    GA_TRY(params.owner_identity, message.Require("owner"));
    GA_TRY(params.local_account, message.Require("account"));
    GA_TRY(std::string credential_text, message.Require("credential"));
    GA_TRY(params.delegated_credential, DecodeCredential(credential_text));
    params.scheduler = environment.scheduler;
    params.clock = environment.clock;
    params.callouts = environment.callouts;

    GA_TRY(std::string rsl_text, message.Require("rsl"));
    GA_TRY(rsl::Conjunction job_rsl, rsl::ParseConjunction(rsl_text));
    GA_TRY(std::int64_t local_job_id, message.RequireInt("local-job-id"));

    // The job must still exist in the scheduler for management to work.
    auto record = environment.scheduler->Status(
        static_cast<os::LocalJobId>(local_job_id));
    if (!record.ok()) {
      return Error{ErrCode::kFailedPrecondition,
                   "persisted job " + params.contact +
                       " references unknown local job " +
                       std::to_string(local_job_id)};
    }

    registry.Register(JobManagerInstance::Restore(
        std::move(params), std::move(job_rsl),
        static_cast<os::LocalJobId>(local_job_id)));
    ++restored;
    return Ok();
  };

  for (const std::string& line : strings::Lines(state_text)) {
    if (strings::Trim(line) == kFrameSeparator) {
      GA_TRY_VOID(flush());
    } else {
      current_frame += line;
      current_frame += '\n';
    }
  }
  GA_TRY_VOID(flush());
  GA_LOG(kInfo, "recovery") << "restored " << restored
                            << " job manager instances";
  return restored;
}

}  // namespace gridauthz::gram
