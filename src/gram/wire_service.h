// Frame-level GRAM service endpoint and client: the wire protocol
// (wire.h) made load-bearing. WireEndpoint stands in for the listening
// Gatekeeper/JMI network ports: it takes a serialized request frame from
// an authenticated peer and returns a serialized reply frame — every
// outcome, including authorization denials and authorization system
// failures, travels as protocol error codes plus the paper's `reason`
// extension, never as C++ errors.
#pragma once

#include <string>

#include "gram/gatekeeper.h"
#include "gram/wire.h"

namespace gridauthz::gram::wire {

class WireEndpoint {
 public:
  WireEndpoint(Gatekeeper* gatekeeper, const JobManagerRegistry* registry,
               const gsi::TrustRegistry* trust, const Clock* clock);

  // Handles one request frame from `peer` (the authenticated client
  // credential — the stand-in for the connection's security context).
  // Always returns a reply frame; malformed requests produce error
  // replies rather than failures.
  std::string Handle(const gsi::Credential& peer, std::string_view frame);

 private:
  std::string HandleJobRequest(const gsi::Credential& peer,
                               const Message& message);
  std::string HandleManagement(const gsi::Credential& peer,
                               const Message& message);

  Gatekeeper* gatekeeper_;
  const JobManagerRegistry* registry_;
  const gsi::TrustRegistry* trust_;
  const Clock* clock_;
};

// A client that talks frames to a WireEndpoint. Functionally equivalent
// to GramClient but exercising the full encode → wire → decode path.
class WireClient {
 public:
  WireClient(gsi::Credential credential, WireEndpoint* endpoint);

  Expected<std::string> Submit(const std::string& rsl);
  Expected<ManagementReply> Status(const std::string& contact);
  Expected<void> Cancel(const std::string& contact);
  Expected<void> Signal(const std::string& contact,
                        const SignalRequest& signal);

  // Trace id sent with the most recent request (empty before the first).
  // Tests assert server-side audit records carry this id.
  const std::string& last_trace_id() const { return last_trace_id_; }

 private:
  Expected<ManagementReply> Manage(const std::string& action,
                                   const std::string& contact,
                                   const std::optional<SignalRequest>& signal);

  gsi::Credential credential_;
  WireEndpoint* endpoint_;
  std::string last_trace_id_;
};

}  // namespace gridauthz::gram::wire
