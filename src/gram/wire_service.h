// Frame-level GRAM service endpoint and client: the wire protocol
// (wire.h) made load-bearing. WireEndpoint stands in for the listening
// Gatekeeper/JMI network ports: it takes a serialized request frame from
// an authenticated peer and returns a serialized reply frame — every
// outcome, including authorization denials and authorization system
// failures, travels as protocol error codes plus the paper's `reason`
// extension, never as C++ errors.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/datapath.h"
#include "gram/gatekeeper.h"
#include "gram/wire.h"

namespace gridauthz::gram::wire {

// What a client holds: anything that turns a request frame into a reply
// frame. WireEndpoint is the real service; decorators (e.g. the fault
// layer's FaultyTransport) interpose on this seam to delay, drop, or
// corrupt frames without either side knowing.
class WireTransport {
 public:
  virtual ~WireTransport() = default;
  virtual std::string Handle(const gsi::Credential& peer,
                             std::string_view frame) = 0;
};

class WireEndpoint final : public WireTransport {
 public:
  WireEndpoint(Gatekeeper* gatekeeper, const JobManagerRegistry* registry,
               const gsi::TrustRegistry* trust, const Clock* clock);

  // Handles one request frame from `peer` (the authenticated client
  // credential — the stand-in for the connection's security context).
  // Always returns a reply frame; malformed requests produce error
  // replies rather than failures. A request whose `deadline-micros` has
  // already passed is rejected with AUTHORIZATION_SYSTEM_FAILURE before
  // any policy is consulted; an unexpired deadline is installed as the
  // ambient deadline for the whole evaluation below.
  std::string Handle(const gsi::Credential& peer,
                     std::string_view frame) override;

  // Enables the `token-request` message type (DESIGN.md §17): the
  // control channel mints and refreshes data-path capability tokens for
  // authenticated peers. Without this seam token requests are answered
  // with AUTHORIZATION_SYSTEM_FAILURE.
  void set_datapath(core::DataPathAuthorizer* datapath) {
    datapath_ = datapath;
  }

 private:
  // `slo_ok` reports whether the decision machinery worked: permits,
  // denials, and client errors are all successes; only authorization
  // system failures spend SLO error budget. Requests arrive as zero-copy
  // MessageViews (DESIGN.md §11); the view borrows the frame buffer,
  // which Handle keeps alive for the call.
  std::string HandleJobRequest(const gsi::Credential& peer,
                               const MessageView& message, bool* slo_ok);
  std::string HandleManagement(const gsi::Credential& peer,
                               const MessageView& message, bool* slo_ok);
  std::string HandleToken(const gsi::Credential& peer,
                          const MessageView& message, bool* slo_ok);

  Gatekeeper* gatekeeper_;
  const JobManagerRegistry* registry_;
  const gsi::TrustRegistry* trust_;
  const Clock* clock_;
  core::DataPathAuthorizer* datapath_ = nullptr;
};

// A client that talks frames to a WireTransport. Functionally equivalent
// to GramClient but exercising the full encode → wire → decode path.
class WireClient {
 public:
  WireClient(gsi::Credential credential, WireTransport* transport);

  Expected<std::string> Submit(const std::string& rsl);
  // Pipelines one job request per RSL through the transport, reusing a
  // single frame buffer and request scaffold instead of re-encoding the
  // shared attributes per call; result i corresponds to rsls[i]. Used by
  // the throughput benches to measure the transport, not the encoder.
  // Partial-failure semantics: every item is attempted with its own
  // deadline budget; a transport error mid-batch fails that item with a
  // typed [transport] reason and the remainder still runs.
  std::vector<Expected<std::string>> SubmitMany(
      std::span<const std::string> rsls);
  Expected<ManagementReply> Status(const std::string& contact);
  Expected<void> Cancel(const std::string& contact);
  Expected<void> Signal(const std::string& contact,
                        const SignalRequest& signal);

  // Data-path session setup over the control channel: one round-trip
  // returns the HMAC capability token the data channel then checks
  // locally per block. RefreshDataToken trades a stale-generation token
  // for a fresh one without re-opening the session.
  Expected<TokenReply> RequestDataToken(const std::string& url_base);
  Expected<TokenReply> RefreshDataToken(const std::string& token);

  // Trace id sent with the most recent request (empty before the first).
  // Tests assert server-side audit records carry this id.
  const std::string& last_trace_id() const { return last_trace_id_; }

  // Deadline budget per request, in microseconds on the obs clock;
  // 0 = send no deadline. When an ambient DeadlineScope is tighter than
  // the budget, the ambient deadline is sent instead — a client inside a
  // resilient retry loop must not promise the server more time than its
  // own caller granted.
  void set_deadline_budget_us(std::int64_t budget_us) {
    deadline_budget_us_ = budget_us;
  }
  // Retry ordinal (1-based) stamped on the next requests as
  // `retry-attempt`; 0 = omit the attribute.
  void set_retry_attempt(std::int64_t attempt) { retry_attempt_ = attempt; }

 private:
  Expected<ManagementReply> Manage(const std::string& action,
                                   const std::string& contact,
                                   const std::optional<SignalRequest>& signal);
  // Sends one encoded job request already in `frame` and decodes the
  // reply; shared by Submit and SubmitMany.
  Expected<std::string> SubmitFrame(const std::string& frame);
  // Sends a token request and decodes the token reply; shared by
  // RequestDataToken and RefreshDataToken.
  Expected<TokenReply> TokenExchange(TokenRequest request);
  // Computes the absolute `deadline-micros` to send, if any.
  std::optional<std::int64_t> OutgoingDeadline() const;

  gsi::Credential credential_;
  WireTransport* transport_;
  std::string last_trace_id_;
  std::int64_t deadline_budget_us_ = 0;
  std::int64_t retry_attempt_ = 0;
};

}  // namespace gridauthz::gram::wire
