// SimulatedSite: one Grid resource wired end-to-end — CA, trust registry,
// accounts, grid-mapfile, local scheduler, callout dispatcher, Job Manager
// registry, and Gatekeeper. This is the facade examples, tests, and
// benchmarks stand their scenarios on; it is also the shape a downstream
// user embeds the library with.
#pragma once

#include <memory>
#include <string>

#include "core/source.h"
#include "gram/client.h"
#include "gram/gatekeeper.h"
#include "gram/pdp_callout.h"
#include "gridmap/gridmap.h"
#include "gsi/certificate.h"
#include "gsi/credential.h"
#include "os/accounts.h"
#include "os/scheduler.h"

namespace gridauthz::gram {

struct SiteOptions {
  std::string host = "fusion.anl.gov";
  std::string ca_name = "/O=Grid/CN=Globus Certification Authority";
  int cpu_slots = 16;
  std::vector<os::QueueConfig> queues = {{"default", 0}};
  TimePoint start_time = 1'000'000;
  // When true, the Gatekeeper runs the kGatekeeperAuthzType callout (if
  // bound) before the gridmap lookup.
  bool enable_gatekeeper_callout = false;
  // When set, the site keeps no clock of its own and runs on this shared
  // clock instead (start_time is ignored). A gatekeeper fleet puts every
  // node on one clock so deadlines, certificate validity, and injected
  // latency stay coherent across nodes (DESIGN.md §13). The clock must
  // outlive the site.
  SimClock* shared_clock = nullptr;
};

class SimulatedSite {
 public:
  explicit SimulatedSite(SiteOptions options = {});

  SimClock& clock() { return *clock_ptr_; }
  gsi::CertificateAuthority& ca() { return ca_; }
  gsi::TrustRegistry& trust() { return trust_; }
  os::AccountRegistry& accounts() { return accounts_; }
  os::SimScheduler& scheduler() { return scheduler_; }
  gridmap::GridMap& gridmap() { return gridmap_; }
  CalloutDispatcher& callouts() { return callouts_; }
  CallbackRouter& callbacks() { return callback_router_; }
  JobManagerRegistry& jmis() { return jmi_registry_; }
  Gatekeeper& gatekeeper() { return gatekeeper_; }
  const std::string& host() const { return options_.host; }

  // Issues an end-entity credential for `dn_text` signed by the site CA.
  Expected<gsi::Credential> CreateUser(const std::string& dn_text);

  // Adds a local account and (optionally) maps a user's DN onto it.
  Expected<void> AddAccount(const std::string& name,
                            std::vector<std::string> groups = {},
                            os::ResourceLimits limits = {});
  Expected<void> MapUser(const gsi::Credential& user,
                         const std::string& account);

  // A client speaking for `credential`.
  GramClient MakeClient(const gsi::Credential& credential);

  // Installs a PDP-backed Job Manager PEP (the paper's extension) via the
  // direct-configuration path.
  void UseJobManagerPep(std::shared_ptr<core::PolicySource> source);
  // Same through the file-configured dynamic-loading path: binds
  // kJobManagerAuthzType to (library, symbol) which must have been
  // registered with RegisterPdpCalloutLibrary.
  void UseJobManagerPepFromConfig(const std::string& library,
                                  const std::string& symbol);

  // Advances simulated time on both the clock and the scheduler.
  void Advance(Duration seconds);

 private:
  SiteOptions options_;
  SimClock clock_;        // unused when options_.shared_clock is set
  SimClock* clock_ptr_;   // the clock everything below runs on
  gsi::CertificateAuthority ca_;
  gsi::TrustRegistry trust_;
  os::AccountRegistry accounts_;
  os::SimScheduler scheduler_;
  gridmap::GridMap gridmap_;
  CalloutDispatcher callouts_;
  CallbackRouter callback_router_;
  JobManagerRegistry jmi_registry_;
  gsi::Credential host_credential_;
  Gatekeeper gatekeeper_;
};

}  // namespace gridauthz::gram
