#include "gram/secure_frame.h"

#include "gram/recovery.h"
#include "gram/wire.h"

namespace gridauthz::gram {

namespace {

std::string SignedContent(std::string_view frame, TimePoint signed_at) {
  return "gram-secure-frame;t=" + std::to_string(signed_at) + ";payload=" +
         std::string{frame};
}

}  // namespace

std::string SignFrame(const gsi::Credential& sender, std::string_view frame,
                      TimePoint now) {
  wire::Message envelope;
  envelope.Set("envelope-type", "gram-secure-frame");
  envelope.Set("payload", frame);
  envelope.SetInt("signed-at", now);
  envelope.Set("signature", sender.Sign(SignedContent(frame, now)));
  envelope.Set("signer-chain", EncodeCertificateChain(sender.chain()));
  return envelope.Serialize();
}

Expected<VerifiedFrame> VerifyFrame(std::string_view envelope_text,
                                    const gsi::TrustRegistry& trust,
                                    TimePoint now, Duration max_age_seconds) {
  GA_TRY(wire::Message envelope, wire::Message::Parse(envelope_text));
  GA_TRY(std::string type, envelope.Require("envelope-type"));
  if (type != "gram-secure-frame") {
    return Error{ErrCode::kAuthenticationFailed,
                 "not a secure frame envelope: " + type};
  }
  GA_TRY(std::string payload, envelope.Require("payload"));
  GA_TRY(TimePoint signed_at, envelope.RequireInt("signed-at"));
  GA_TRY(std::string signature, envelope.Require("signature"));
  GA_TRY(std::string chain_text, envelope.Require("signer-chain"));
  GA_TRY(std::vector<gsi::Certificate> chain,
         DecodeCertificateChain(chain_text));

  if (signed_at > now + max_age_seconds ||
      signed_at < now - max_age_seconds) {
    return Error{ErrCode::kAuthenticationFailed,
                 "secure frame outside the freshness window (signed at " +
                     std::to_string(signed_at) + ", now " +
                     std::to_string(now) + ")"};
  }

  GA_TRY(gsi::DistinguishedName sender, trust.ValidateChain(chain, now));
  if (!gsi::VerifySignature(chain.front().subject_key,
                            SignedContent(payload, signed_at), signature)) {
    return Error{ErrCode::kAuthenticationFailed,
                 "secure frame signature verification failed for " +
                     sender.str()};
  }

  VerifiedFrame verified;
  verified.frame = std::move(payload);
  verified.sender = std::move(sender);
  verified.chain = std::move(chain);
  verified.signed_at = signed_at;
  return verified;
}

}  // namespace gridauthz::gram
