#include "gram/protocol.h"

namespace gridauthz::gram {

std::string_view to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kUnsubmitted:
      return "UNSUBMITTED";
    case JobStatus::kPending:
      return "PENDING";
    case JobStatus::kActive:
      return "ACTIVE";
    case JobStatus::kSuspended:
      return "SUSPENDED";
    case JobStatus::kDone:
      return "DONE";
    case JobStatus::kFailed:
      return "FAILED";
  }
  return "?";
}

JobStatus FromLrmState(os::JobState state) {
  switch (state) {
    case os::JobState::kPending:
      return JobStatus::kPending;
    case os::JobState::kActive:
      return JobStatus::kActive;
    case os::JobState::kSuspended:
      return JobStatus::kSuspended;
    case os::JobState::kDone:
      return JobStatus::kDone;
    case os::JobState::kFailed:
    case os::JobState::kCancelled:
      return JobStatus::kFailed;
  }
  return JobStatus::kFailed;
}

std::string_view to_string(GramErrorCode code) {
  switch (code) {
    case GramErrorCode::kNone:
      return "GRAM_SUCCESS";
    case GramErrorCode::kAuthenticationFailed:
      return "GRAM_ERROR_AUTHENTICATION_FAILED";
    case GramErrorCode::kUserNotMapped:
      return "GRAM_ERROR_USER_NOT_MAPPED";
    case GramErrorCode::kBadRsl:
      return "GRAM_ERROR_BAD_RSL";
    case GramErrorCode::kInvalidRequest:
      return "GRAM_ERROR_INVALID_REQUEST";
    case GramErrorCode::kJobNotFound:
      return "GRAM_ERROR_JOB_CONTACT_NOT_FOUND";
    case GramErrorCode::kSchedulerError:
      return "GRAM_ERROR_JOB_EXECUTION_FAILED";
    case GramErrorCode::kLimitedProxyRejected:
      return "GRAM_ERROR_LIMITED_PROXY_REJECTED";
    case GramErrorCode::kAuthorizationDenied:
      return "GRAM_ERROR_AUTHORIZATION_DENIED";
    case GramErrorCode::kAuthorizationSystemFailure:
      return "GRAM_ERROR_AUTHORIZATION_SYSTEM_FAILURE";
  }
  return "?";
}

GramErrorCode ToProtocolCode(const Error& error) {
  switch (error.code()) {
    case ErrCode::kAuthenticationFailed:
      return GramErrorCode::kAuthenticationFailed;
    case ErrCode::kAuthorizationDenied:
      return GramErrorCode::kAuthorizationDenied;
    case ErrCode::kAuthorizationSystemFailure:
      return GramErrorCode::kAuthorizationSystemFailure;
    case ErrCode::kParseError:
      return GramErrorCode::kBadRsl;
    case ErrCode::kNotFound:
      return GramErrorCode::kJobNotFound;
    case ErrCode::kPermissionDenied:
      // Local-credential enforcement failures (account rights, sandbox):
      // the job-execution layer rejected the operation.
      return GramErrorCode::kSchedulerError;
    case ErrCode::kResourceExhausted:
    case ErrCode::kUnavailable:
      return GramErrorCode::kSchedulerError;
    case ErrCode::kInvalidArgument:
    case ErrCode::kFailedPrecondition:
    case ErrCode::kOutOfRange:
      return GramErrorCode::kInvalidRequest;
    default:
      return GramErrorCode::kSchedulerError;
  }
}

std::string_view ContactHost(std::string_view contact) {
  constexpr std::string_view kScheme = "://";
  const std::size_t scheme = contact.find(kScheme);
  if (scheme == std::string_view::npos) return {};
  const std::size_t host_begin = scheme + kScheme.size();
  const std::size_t host_end = contact.find_first_of(":/", host_begin);
  if (host_end == std::string_view::npos || host_end == host_begin) return {};
  return contact.substr(host_begin, host_end - host_begin);
}

std::string_view to_string(SignalKind kind) {
  switch (kind) {
    case SignalKind::kSuspend:
      return "suspend";
    case SignalKind::kResume:
      return "resume";
    case SignalKind::kPriority:
      return "priority";
  }
  return "?";
}

}  // namespace gridauthz::gram
