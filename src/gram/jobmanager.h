// The Job Manager Instance (JMI): "a Grid service which instantiates and
// then provides for the ability to manage a job" (section 4.2). The JMI
// parses the user's RSL, submits to the local job control system, and
// handles management requests for the job's lifetime.
//
// The paper's extension places the policy evaluation point here: the
// authorization callout runs before the job is started and before every
// cancel / information / signal request, so users OTHER than the job
// initiator can manage the job when VO policy says so — stock GT2 only
// allowed the initiator.
//
// Trust model (section 6.2): the JMI runs with the *user's delegated
// credential* on the *initiator's local account*; management actions are
// carried out with the initiator's local rights even when authorized for
// another VO member, which is exactly the enforcement limitation the
// paper analyzes.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/error.h"
#include "gram/callback.h"
#include "gram/callout.h"
#include "gram/protocol.h"
#include "gsi/credential.h"
#include "os/scheduler.h"
#include "rsl/rsl.h"

namespace gridauthz::gram {

// Authenticated facts about the peer on a JMI connection, produced from
// the GSI security context.
struct RequesterInfo {
  std::string identity;  // verified Grid identity
  std::vector<std::string> attributes;
  std::optional<std::string> restriction_policy;  // restricted proxy payload
  bool limited_proxy = false;
};

class JobManagerInstance {
 public:
  struct Params {
    std::string contact;                // unique job contact string
    gsi::Credential delegated_credential;  // the JMI runs as this
    std::string owner_identity;         // Grid identity of the initiator
    std::string local_account;          // account the job runs under
    os::SimScheduler* scheduler = nullptr;
    const Clock* clock = nullptr;
    // Authorization callouts; nullptr reproduces stock GT2 behaviour
    // (no start callout; management restricted to the job owner).
    CalloutDispatcher* callouts = nullptr;
    // Job-state callbacks: when both are set, the JMI posts status
    // updates to `callback_url` on every job state transition.
    CallbackRouter* callback_router = nullptr;
    std::string callback_url;
  };

  explicit JobManagerInstance(Params params);

  // Reconstructs a JMI from persisted state (GT2's job-manager restart):
  // the job is already running under `local_job_id` with `job_rsl`.
  static std::shared_ptr<JobManagerInstance> Restore(
      Params params, rsl::Conjunction job_rsl, os::LocalJobId local_job_id);

  // Parses and normalizes the RSL, runs the start authorization callout
  // (if configured) for `requester` (the submitting user), and submits
  // the job to the local scheduler.
  Expected<void> Start(const std::string& rsl_text,
                       const RequesterInfo& requester);

  // Management requests. Every one first authorizes `requester`:
  // with callouts configured the PEP decides; otherwise stock GT2
  // identity matching applies.
  Expected<JobStatusReply> Status(const RequesterInfo& requester);
  Expected<void> Cancel(const RequesterInfo& requester);
  Expected<void> Signal(const RequesterInfo& requester,
                        const SignalRequest& signal);

  const std::string& contact() const { return params_.contact; }
  const std::string& owner_identity() const { return params_.owner_identity; }
  const std::string& local_account() const { return params_.local_account; }
  const gsi::Credential& credential() const {
    return params_.delegated_credential;
  }
  const rsl::Conjunction& job_rsl() const { return job_rsl_; }
  std::optional<std::string> jobtag() const { return job_rsl_.GetValue("jobtag"); }
  bool started() const { return local_job_id_.has_value(); }
  // The LRM job id; only valid when started() (used by persistence).
  os::LocalJobId local_job_id() const { return local_job_id_.value_or(0); }

 private:
  Expected<void> Authorize(const RequesterInfo& requester,
                           std::string_view action);
  Expected<os::JobSpec> BuildJobSpec() const;
  JobStatus CurrentStatus() const;

  Params params_;
  rsl::Conjunction job_rsl_;
  std::optional<os::LocalJobId> local_job_id_;
  std::string failure_reason_;
};

}  // namespace gridauthz::gram
