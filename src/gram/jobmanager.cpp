#include "gram/jobmanager.h"

#include <charconv>

#include "common/arena.h"
#include "common/deadline.h"
#include "common/logging.h"
#include "core/request.h"
#include "obs/instrument.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::gram {

namespace {

Expected<std::int64_t> ParseIntValue(const std::string& value,
                                     std::string_view attribute) {
  std::int64_t out = 0;
  auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    return Error{ErrCode::kParseError, "RSL attribute '" +
                                           std::string{attribute} +
                                           "' is not an integer: " + value};
  }
  return out;
}

}  // namespace

JobManagerInstance::JobManagerInstance(Params params)
    : params_(std::move(params)) {}

std::shared_ptr<JobManagerInstance> JobManagerInstance::Restore(
    Params params, rsl::Conjunction job_rsl, os::LocalJobId local_job_id) {
  auto jmi = std::make_shared<JobManagerInstance>(std::move(params));
  jmi->job_rsl_ = std::move(job_rsl);
  jmi->local_job_id_ = local_job_id;
  return jmi;
}

Expected<void> JobManagerInstance::Authorize(const RequesterInfo& requester,
                                             std::string_view action) {
  // One process-wide instrument set: every JMI shares the "pep-jm"
  // source label, so the handles resolve once per process.
  static const obs::AuthzInstruments& instruments =
      *new obs::AuthzInstruments{"pep-jm"};
  // Scratch below (callout → PDP evaluation) lives for exactly this
  // management request; a no-op if an outer PEP already opened a scope.
  const RequestArenaScope arena_scope;
  obs::AuthzCallObservation observation{instruments};
  Expected<void> result = [&]() -> Expected<void> {
    // The ambient deadline arrived with the wire request (or a test's
    // DeadlineScope). Out of budget means we cannot obtain a decision —
    // an authorization system failure, never an implicit permit.
    if (DeadlineExpiredAt(obs::ObsClock()->NowMicros())) {
      obs::Metrics()
          .GetCounter("authz_deadline_exceeded_total", {{"source", "pep-jm"}})
          .Increment();
      return Error{ErrCode::kAuthorizationSystemFailure,
                   std::string{kReasonDeadlineExceeded} +
                       " job manager PEP ran out of deadline budget before "
                       "evaluating '" +
                       std::string{action} + "'"};
    }
    if (params_.callouts != nullptr &&
        params_.callouts->HasBinding(kJobManagerAuthzType)) {
      CalloutData data;
      data.requester_identity = requester.identity;
      data.requester_attributes = requester.attributes;
      data.requester_restriction_policy = requester.restriction_policy;
      data.job_owner_identity = params_.owner_identity;
      data.action = action;
      data.job_id = params_.contact;
      data.rsl = job_rsl_.empty() ? "" : job_rsl_.ToString();
      data.trace_id = obs::CurrentTraceId();
      GA_LOG(kDebug, "job-manager")
          << "PEP callout for action '" << action << "' by "
          << requester.identity << " on job " << params_.contact;
      return params_.callouts->Invoke(kJobManagerAuthzType, data);
    }

    // Stock GT2: no start-time authorization in the JM (the Gatekeeper
    // already authorized via the grid-mapfile); management is restricted to
    // the job initiator — "the Grid identity of the user making the request
    // must match the Grid identity of the user who initiated the job".
    if (action == core::kActionStart) return Ok();
    if (requester.identity != params_.owner_identity) {
      return Error{ErrCode::kAuthorizationDenied,
                   "stock GT2 policy: only the job initiator (" +
                       params_.owner_identity + ") may '" +
                       std::string{action} + "' this job; requester is " +
                       requester.identity};
    }
    return Ok();
  }();
  if (result.ok()) {
    observation.set_outcome(obs::kOutcomePermit);
  } else if (result.error().code() == ErrCode::kAuthorizationDenied) {
    observation.set_outcome(obs::kOutcomeDeny);
  }
  return result;
}

Expected<os::JobSpec> JobManagerInstance::BuildJobSpec() const {
  os::JobSpec spec;
  auto executable = job_rsl_.GetValue("executable");
  if (!executable) {
    return Error{ErrCode::kParseError, "RSL must specify an executable"};
  }
  spec.executable = *executable;
  spec.directory = job_rsl_.GetValue("directory").value_or("");
  if (auto count = job_rsl_.GetValue("count")) {
    GA_TRY(std::int64_t n, ParseIntValue(*count, "count"));
    if (n < 1) {
      return Error{ErrCode::kInvalidArgument, "count must be >= 1"};
    }
    spec.count = static_cast<int>(n);
  }
  if (auto memory = job_rsl_.GetValue("maxmemory")) {
    GA_TRY(std::int64_t mb, ParseIntValue(*memory, "maxmemory"));
    spec.memory_mb = mb;
  }
  if (auto max_time = job_rsl_.GetValue("maxtime")) {
    GA_TRY(std::int64_t seconds, ParseIntValue(*max_time, "maxtime"));
    spec.max_wall_time = seconds;
  }
  // `simduration` is a simulator knob: how long the job actually runs.
  if (auto duration = job_rsl_.GetValue("simduration")) {
    GA_TRY(std::int64_t seconds, ParseIntValue(*duration, "simduration"));
    spec.wall_duration = seconds;
  }
  if (auto queue = job_rsl_.GetValue("queue")) {
    spec.queue = *queue;
  }
  for (const rsl::Relation* r : job_rsl_.FindAll("arguments")) {
    spec.arguments.insert(spec.arguments.end(), r->values.begin(),
                          r->values.end());
  }
  return spec;
}

Expected<void> JobManagerInstance::Start(const std::string& rsl_text,
                                         const RequesterInfo& requester) {
  obs::ScopedSpan span("jmi/start");
  if (local_job_id_) {
    return Error{ErrCode::kFailedPrecondition,
                 "job already started: " + params_.contact};
  }
  auto parsed = rsl::ParseConjunction(rsl_text);
  if (!parsed.ok()) return parsed.error();
  job_rsl_ = std::move(parsed).value();

  // Normalize: GT2 defaults count to 1; policies such as "(count < 4)"
  // must see the effective value.
  if (!job_rsl_.GetValue("count")) {
    job_rsl_.Add("count", rsl::RelOp::kEq, "1");
  }

  // RSL variable substitution with the Job-Manager-provided variables for
  // the local account; the PEP sees the substituted values, so a policy
  // on "(directory = /home/boliu)" matches "$(HOME)" requests.
  GA_TRY(job_rsl_, rsl::SubstituteVariables(
                       job_rsl_,
                       {{"HOME", "/home/" + params_.local_account},
                        {"LOGNAME", params_.local_account}}));

  GA_TRY_VOID(Authorize(requester, core::kActionStart));
  GA_TRY(os::JobSpec spec, BuildJobSpec());
  auto submitted = params_.scheduler->Submit(params_.local_account, spec);
  if (!submitted.ok()) {
    failure_reason_ = submitted.error().to_string();
    return submitted.error();
  }
  local_job_id_ = *submitted;

  // Status callbacks: monitor the job and push updates to the client's
  // callback contact. The listener captures values only (no `this`): the
  // scheduler outlives any individual JMI.
  if (params_.callback_router != nullptr && !params_.callback_url.empty()) {
    CallbackRouter* router = params_.callback_router;
    const std::string url = params_.callback_url;
    const std::string contact = params_.contact;
    const std::string owner = params_.owner_identity;
    const std::optional<std::string> tag = jobtag();
    const os::LocalJobId id = *local_job_id_;
    params_.scheduler->AddStateListener(
        [router, url, contact, owner, tag, id](const os::JobRecord& job,
                                               os::JobState) {
          if (job.id != id) return;
          JobStatusReply update;
          update.status = FromLrmState(job.state);
          update.job_contact = contact;
          update.job_owner = owner;
          update.jobtag = tag;
          update.failure_reason = job.failure_reason;
          router->Post(url, update);
        });
    // Initial status callback (the job may already have dispatched during
    // Submit, before the listener existed).
    if (auto record = params_.scheduler->Status(id); record.ok()) {
      JobStatusReply initial;
      initial.status = FromLrmState(record->state);
      initial.job_contact = contact;
      initial.job_owner = owner;
      initial.jobtag = tag;
      initial.failure_reason = record->failure_reason;
      router->Post(url, initial);
    }
  }

  GA_LOG(kInfo, "job-manager")
      << "job " << params_.contact << " started for " << params_.owner_identity
      << " on account " << params_.local_account << " (local id "
      << *local_job_id_ << ")";
  return Ok();
}

JobStatus JobManagerInstance::CurrentStatus() const {
  if (!local_job_id_) return JobStatus::kUnsubmitted;
  auto record = params_.scheduler->Status(*local_job_id_);
  if (!record.ok()) return JobStatus::kFailed;
  return FromLrmState(record->state);
}

Expected<JobStatusReply> JobManagerInstance::Status(
    const RequesterInfo& requester) {
  obs::ScopedSpan span("jmi/information");
  GA_TRY_VOID(Authorize(requester, core::kActionInformation));
  JobStatusReply reply;
  reply.status = CurrentStatus();
  reply.job_contact = params_.contact;
  reply.job_owner = params_.owner_identity;
  reply.jobtag = jobtag();
  if (local_job_id_) {
    auto record = params_.scheduler->Status(*local_job_id_);
    if (record.ok()) reply.failure_reason = record->failure_reason;
  } else {
    reply.failure_reason = failure_reason_;
  }
  return reply;
}

Expected<void> JobManagerInstance::Cancel(const RequesterInfo& requester) {
  obs::ScopedSpan span("jmi/cancel");
  GA_TRY_VOID(Authorize(requester, core::kActionCancel));
  if (!local_job_id_) {
    return Error{ErrCode::kFailedPrecondition, "job was never started"};
  }
  GA_LOG(kInfo, "job-manager") << "job " << params_.contact << " cancelled by "
                               << requester.identity;
  return params_.scheduler->Cancel(*local_job_id_);
}

Expected<void> JobManagerInstance::Signal(const RequesterInfo& requester,
                                          const SignalRequest& signal) {
  obs::ScopedSpan span("jmi/signal");
  GA_TRY_VOID(Authorize(requester, core::kActionSignal));
  if (!local_job_id_) {
    return Error{ErrCode::kFailedPrecondition, "job was never started"};
  }
  GA_LOG(kInfo, "job-manager")
      << "signal '" << to_string(signal.kind) << "' on job " << params_.contact
      << " by " << requester.identity;
  switch (signal.kind) {
    case SignalKind::kSuspend:
      return params_.scheduler->Suspend(*local_job_id_);
    case SignalKind::kResume:
      return params_.scheduler->Resume(*local_job_id_);
    case SignalKind::kPriority: {
      // Trust-model limitation (section 6.2): the JMI acts with the job
      // initiator's LOCAL credential, so the priority it can set is
      // bounded by the initiator's account rights — even when the
      // requester was authorized by VO policy and holds higher rights.
      auto account =
          params_.scheduler->accounts()->Lookup(params_.local_account);
      if (account.ok() && (*account)->limits.max_priority >= 0 &&
          signal.priority > (*account)->limits.max_priority) {
        return Error{ErrCode::kPermissionDenied,
                     "job manager runs with the initiator's local credential; "
                     "priority " + std::to_string(signal.priority) +
                         " exceeds account '" + params_.local_account +
                         "' limit " +
                         std::to_string((*account)->limits.max_priority)};
      }
      return params_.scheduler->SetPriority(*local_job_id_, signal.priority);
    }
  }
  return Error{ErrCode::kInvalidArgument, "unknown signal"};
}

}  // namespace gridauthz::gram
