#include "gram/callout.h"

#include <optional>

#include "common/config.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gridauthz::gram {

CalloutLibraryRegistry& CalloutLibraryRegistry::Instance() {
  static CalloutLibraryRegistry instance;
  return instance;
}

void CalloutLibraryRegistry::Register(const std::string& library,
                                      const std::string& symbol,
                                      CalloutFactory factory) {
  std::lock_guard lock(mu_);
  factories_[{library, symbol}] = std::move(factory);
}

void CalloutLibraryRegistry::Unregister(const std::string& library,
                                        const std::string& symbol) {
  std::lock_guard lock(mu_);
  factories_.erase({library, symbol});
}

Expected<AuthorizationCallout> CalloutLibraryRegistry::Resolve(
    const std::string& library, const std::string& symbol) const {
  std::lock_guard lock(mu_);
  auto it = factories_.find({library, symbol});
  if (it == factories_.end()) {
    return Error{ErrCode::kAuthorizationSystemFailure,
                 "cannot load callout: library '" + library + "' symbol '" +
                     symbol + "' not found"};
  }
  return it->second();
}

void CalloutDispatcher::Bind(CalloutBinding binding) {
  Slot slot;
  slot.binding = std::move(binding);
  std::lock_guard lock(mu_);
  slots_[slot.binding.abstract_type] = std::move(slot);
}

void CalloutDispatcher::BindDirect(std::string abstract_type,
                                   AuthorizationCallout callout) {
  Slot slot;
  slot.binding.abstract_type = abstract_type;
  slot.binding.library = "<direct>";
  slot.binding.symbol = "<direct>";
  slot.resolved = std::move(callout);
  std::lock_guard lock(mu_);
  slots_[std::move(abstract_type)] = std::move(slot);
}

Expected<void> CalloutDispatcher::ParseAndBind(std::string_view config_text) {
  GA_TRY(std::vector<ConfigEntry> entries, ParseConfig(config_text, 3));
  for (const ConfigEntry& entry : entries) {
    if (entry.tokens.size() != 3) {
      return Error{ErrCode::kParseError,
                   "callout config line " + std::to_string(entry.line_number) +
                       ": expected 'abstract_type library symbol'"};
    }
    Bind(CalloutBinding{entry.tokens[0], entry.tokens[1], entry.tokens[2]});
  }
  return Ok();
}

bool CalloutDispatcher::HasBinding(std::string_view abstract_type) const {
  std::lock_guard lock(mu_);
  return slots_.find(abstract_type) != slots_.end();
}

namespace {

std::string_view CalloutOutcome(const Expected<void>& result) {
  if (result.ok()) return "permit";
  if (result.error().code() == ErrCode::kAuthorizationDenied) return "deny";
  return "error";
}

}  // namespace

Expected<void> CalloutDispatcher::Invoke(std::string_view abstract_type,
                                         const CalloutData& data) {
  // Join the caller's trace if it arrived only via CalloutData (e.g. the
  // callout runs on a thread with no active trace context).
  std::optional<obs::TraceScope> adopted;
  if (!data.trace_id.empty() && !obs::CurrentTrace().active()) {
    adopted.emplace(data.trace_id);
  }
  obs::ScopedSpan span("callout/" + std::string{abstract_type});
  Expected<void> result = InvokeImpl(abstract_type, data);
  obs::Metrics()
      .GetCounter("callout_invocations_total",
                  {{"type", std::string{abstract_type}},
                   {"outcome", std::string{CalloutOutcome(result)}}})
      .Increment();
  return result;
}

Expected<AuthorizationCallout> CalloutDispatcher::ResolveSlot(
    std::string_view abstract_type) {
  // Resolution may call a registry factory while holding the dispatcher
  // lock; factories must not call back into this dispatcher. The resolved
  // callout is cached (dlopen-on-demand happens once) and a copy is
  // returned so the caller invokes it unlocked.
  std::lock_guard lock(mu_);
  auto it = slots_.find(abstract_type);
  if (it == slots_.end()) {
    return Error{ErrCode::kAuthorizationSystemFailure,
                 "no callout configured for abstract type '" +
                     std::string{abstract_type} + "'"};
  }
  Slot& slot = it->second;
  if (!slot.resolved) {
    auto resolved = CalloutLibraryRegistry::Instance().Resolve(
        slot.binding.library, slot.binding.symbol);
    if (!resolved.ok()) return resolved.error();
    slot.resolved = std::move(resolved).value();
  }
  return *slot.resolved;
}

Expected<void> CalloutDispatcher::InvokeImpl(std::string_view abstract_type,
                                             const CalloutData& data) {
  GA_TRY(AuthorizationCallout callout, ResolveSlot(abstract_type));
  invocations_.fetch_add(1, std::memory_order_relaxed);
  Expected<void> result = callout(data);
  if (!result.ok() && result.error().code() != ErrCode::kAuthorizationDenied &&
      result.error().code() != ErrCode::kAuthorizationSystemFailure) {
    // Callout failures that are not explicit denials are authorization
    // system failures by definition.
    return Error{ErrCode::kAuthorizationSystemFailure,
                 "callout '" + std::string{abstract_type} +
                     "' failed: " + result.error().to_string()};
  }
  if (!result.ok()) {
    GA_LOG(kDebug, "pep") << "callout '" << abstract_type
                          << "' result: " << result.error();
  }
  return result;
}

}  // namespace gridauthz::gram
