#include "rsl/rsl.h"

#include <cctype>

#include "common/strings.h"

namespace gridauthz::rsl {

std::string_view to_string(RelOp op) {
  switch (op) {
    case RelOp::kEq:
      return "=";
    case RelOp::kNeq:
      return "!=";
    case RelOp::kLt:
      return "<";
    case RelOp::kGt:
      return ">";
    case RelOp::kLe:
      return "<=";
    case RelOp::kGe:
      return ">=";
  }
  return "?";
}

std::string CanonicalAttribute(std::string_view attribute) {
  std::string out;
  out.reserve(attribute.size());
  for (char c : attribute) {
    if (c == '_') continue;
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string QuoteValue(std::string_view value) {
  bool needs_quotes = value.empty();
  for (char c : value) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '(' ||
        c == ')' || c == '=' || c == '!' || c == '<' || c == '>' ||
        c == '&' || c == '+' || c == '"') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string{value};
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += "\"\"";  // doubled-quote escape
    else out.push_back(c);
  }
  out += '"';
  return out;
}

std::string Relation::ToString() const {
  std::string out = "(" + attribute + " " + std::string{to_string(op)};
  for (const std::string& v : values) {
    out += ' ';
    out += QuoteValue(v);
  }
  out += ')';
  return out;
}

const Relation* Conjunction::Find(std::string_view attribute) const {
  std::string canon = CanonicalAttribute(attribute);
  for (const Relation& r : relations_) {
    if (r.attribute == canon) return &r;
  }
  return nullptr;
}

std::vector<const Relation*> Conjunction::FindAll(
    std::string_view attribute) const {
  std::string canon = CanonicalAttribute(attribute);
  std::vector<const Relation*> out;
  for (const Relation& r : relations_) {
    if (r.attribute == canon) out.push_back(&r);
  }
  return out;
}

std::optional<std::string> Conjunction::GetValue(
    std::string_view attribute) const {
  std::string canon = CanonicalAttribute(attribute);
  for (const Relation& r : relations_) {
    if (r.attribute == canon && r.op == RelOp::kEq && r.values.size() == 1) {
      return r.values.front();
    }
  }
  return std::nullopt;
}

void Conjunction::Add(std::string_view attribute, RelOp op, std::string value) {
  Relation r;
  r.attribute = CanonicalAttribute(attribute);
  r.op = op;
  r.values.push_back(std::move(value));
  relations_.push_back(std::move(r));
}

void Conjunction::Add(Relation relation) {
  relation.attribute = CanonicalAttribute(relation.attribute);
  relations_.push_back(std::move(relation));
}

std::size_t Conjunction::Remove(std::string_view attribute) {
  std::string canon = CanonicalAttribute(attribute);
  return std::erase_if(relations_,
                       [&](const Relation& r) { return r.attribute == canon; });
}

std::string Conjunction::ToString() const {
  std::string out = "&";
  for (const Relation& r : relations_) out += r.ToString();
  return out;
}

std::string Specification::ToString() const {
  if (requests.size() == 1) return requests.front().ToString();
  std::string out = "+";
  for (const Conjunction& c : requests) {
    out += '(';
    out += c.ToString();
    out += ')';
  }
  return out;
}

namespace {

enum class TokKind { kAmp, kPlus, kLParen, kRParen, kOp, kLiteral, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // literal text, or the operator
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Expected<Token> Next() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Token{TokKind::kEnd, "", pos_};
    std::size_t start = pos_;
    char c = text_[pos_];
    switch (c) {
      case '&':
        ++pos_;
        return Token{TokKind::kAmp, "&", start};
      case '+':
        ++pos_;
        return Token{TokKind::kPlus, "+", start};
      case '(':
        ++pos_;
        return Token{TokKind::kLParen, "(", start};
      case ')':
        ++pos_;
        return Token{TokKind::kRParen, ")", start};
      case '=':
        ++pos_;
        return Token{TokKind::kOp, "=", start};
      case '!':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          pos_ += 2;
          return Token{TokKind::kOp, "!=", start};
        }
        return Err(start, "'!' must be followed by '='");
      case '<':
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          ++pos_;
          return Token{TokKind::kOp, "<=", start};
        }
        return Token{TokKind::kOp, "<", start};
      case '>':
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          ++pos_;
          return Token{TokKind::kOp, ">=", start};
        }
        return Token{TokKind::kOp, ">", start};
      case '"':
        return LexQuoted(start);
      default:
        return LexUnquoted(start);
    }
  }

 private:
  Expected<Token> LexQuoted(std::size_t start) {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '"') {
          value.push_back('"');
          pos_ += 2;
          continue;
        }
        ++pos_;
        return Token{TokKind::kLiteral, std::move(value), start};
      }
      value.push_back(c);
      ++pos_;
    }
    return Err(start, "unterminated quoted value");
  }

  Expected<Token> LexUnquoted(std::size_t start) {
    std::string value;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      // "$(NAME)" is a variable reference (resolved later by
      // SubstituteVariables); its parentheses belong to the literal.
      if (c == '$' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '(') {
        std::size_t close = text_.find(')', pos_ + 2);
        if (close == std::string_view::npos) {
          return Err(pos_, "unterminated variable reference");
        }
        value.append(text_.substr(pos_, close - pos_ + 1));
        pos_ = close + 1;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '(' ||
          c == ')' || c == '=' || c == '!' || c == '<' || c == '>' ||
          c == '&' || c == '+' || c == '"') {
        break;
      }
      value.push_back(c);
      ++pos_;
    }
    if (value.empty()) {
      return Err(start, std::string{"unexpected character '"} + text_[pos_] + "'");
    }
    return Token{TokKind::kLiteral, std::move(value), start};
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  Error Err(std::size_t pos, std::string message) const {
    return Error{ErrCode::kParseError,
                 "RSL at offset " + std::to_string(pos) + ": " + std::move(message)};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) {}

  Expected<Specification> ParseSpecification() {
    GA_TRY_VOID(Advance());
    Specification spec;
    if (current_.kind == TokKind::kPlus) {
      GA_TRY_VOID(Advance());
      // Multi-request: one or more parenthesized conjunctions.
      while (current_.kind == TokKind::kLParen) {
        GA_TRY_VOID(Advance());
        GA_TRY(Conjunction conj, ParseConjunctionBody());
        GA_TRY_VOID(Expect(TokKind::kRParen, "')' closing multi-request item"));
        spec.requests.push_back(std::move(conj));
      }
      if (spec.requests.empty()) {
        return ErrHere("multi-request '+' needs at least one '(...)' item");
      }
    } else {
      GA_TRY(Conjunction conj, ParseConjunctionBody());
      spec.requests.push_back(std::move(conj));
    }
    if (current_.kind != TokKind::kEnd) {
      return ErrHere("trailing input after specification");
    }
    return spec;
  }

 private:
  // conjunction := '&'? ( '(' relation ')' )+
  Expected<Conjunction> ParseConjunctionBody() {
    if (current_.kind == TokKind::kAmp) {
      GA_TRY_VOID(Advance());
    }
    std::vector<Relation> relations;
    while (current_.kind == TokKind::kLParen) {
      GA_TRY_VOID(Advance());
      GA_TRY(Relation relation, ParseRelation());
      GA_TRY_VOID(Expect(TokKind::kRParen, "')' closing relation"));
      relations.push_back(std::move(relation));
    }
    if (relations.empty()) {
      return ErrHere("expected at least one '(attribute op value)' relation");
    }
    return Conjunction{std::move(relations)};
  }

  Expected<Relation> ParseRelation() {
    if (current_.kind != TokKind::kLiteral) {
      return ErrHere("expected attribute name");
    }
    Relation relation;
    relation.attribute = CanonicalAttribute(current_.text);
    GA_TRY_VOID(Advance());
    if (current_.kind != TokKind::kOp) {
      return ErrHere("expected relational operator after attribute '" +
                     relation.attribute + "'");
    }
    if (current_.text == "=") relation.op = RelOp::kEq;
    else if (current_.text == "!=") relation.op = RelOp::kNeq;
    else if (current_.text == "<") relation.op = RelOp::kLt;
    else if (current_.text == ">") relation.op = RelOp::kGt;
    else if (current_.text == "<=") relation.op = RelOp::kLe;
    else relation.op = RelOp::kGe;
    GA_TRY_VOID(Advance());
    while (current_.kind == TokKind::kLiteral) {
      relation.values.push_back(current_.text);
      GA_TRY_VOID(Advance());
    }
    if (relation.values.empty()) {
      return ErrHere("relation on '" + relation.attribute + "' has no value");
    }
    return relation;
  }

  Expected<void> Advance() {
    GA_TRY(Token token, lexer_.Next());
    current_ = std::move(token);
    return Ok();
  }

  Expected<void> Expect(TokKind kind, std::string_view what) {
    if (current_.kind != kind) {
      return Error{ErrCode::kParseError,
                   "RSL at offset " + std::to_string(current_.pos) +
                       ": expected " + std::string{what}};
    }
    return Advance();
  }

  Error ErrHere(std::string message) const {
    return Error{ErrCode::kParseError,
                 "RSL at offset " + std::to_string(current_.pos) + ": " +
                     std::move(message)};
  }

  Lexer lexer_;
  Token current_{TokKind::kEnd, "", 0};
};

}  // namespace

Expected<Specification> Parse(std::string_view text) {
  if (strings::Trim(text).empty()) {
    return Error{ErrCode::kParseError, "empty RSL specification"};
  }
  return Parser{text}.ParseSpecification();
}

Expected<Conjunction> ParseConjunction(std::string_view text) {
  GA_TRY(Specification spec, Parse(text));
  if (spec.requests.size() != 1) {
    return Error{ErrCode::kParseError,
                 "expected a single conjunction, got a multi-request"};
  }
  return std::move(spec.requests.front());
}

namespace {

Expected<std::string> SubstituteValue(
    const std::string& value,
    const std::map<std::string, std::string>& variables) {
  std::string out;
  out.reserve(value.size());
  std::size_t pos = 0;
  while (pos < value.size()) {
    std::size_t ref = value.find("$(", pos);
    if (ref == std::string::npos) {
      out += value.substr(pos);
      break;
    }
    out += value.substr(pos, ref - pos);
    std::size_t close = value.find(')', ref + 2);
    if (close == std::string::npos) {
      return Error{ErrCode::kParseError,
                   "unterminated variable reference in RSL value: " + value};
    }
    std::string name = value.substr(ref + 2, close - ref - 2);
    auto it = variables.find(name);
    if (it == variables.end()) {
      return Error{ErrCode::kNotFound,
                   "undefined RSL variable $(" + name + ")"};
    }
    out += it->second;
    pos = close + 1;
  }
  return out;
}

}  // namespace

Expected<Conjunction> SubstituteVariables(
    const Conjunction& conjunction,
    const std::map<std::string, std::string>& variables) {
  std::vector<Relation> relations;
  relations.reserve(conjunction.relations().size());
  for (const Relation& relation : conjunction.relations()) {
    Relation substituted = relation;
    for (std::string& value : substituted.values) {
      GA_TRY(value, SubstituteValue(value, variables));
    }
    relations.push_back(std::move(substituted));
  }
  return Conjunction{std::move(relations)};
}

}  // namespace gridauthz::rsl
