// The Resource Specification Language (RSL) of GT2 GRAM: attribute-value
// relations combined into conjunctions ("&(executable=test1)(count=4)") and
// multi-requests ("+(&(...))(&(...))"). Job descriptions are conjunctions;
// the paper's policy language expresses assertions in the same syntax
// (section 5.1), extended with the relational operators != < > <= >= and
// the attributes action/jobowner/jobtag plus the values NULL and self.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace gridauthz::rsl {

enum class RelOp { kEq, kNeq, kLt, kGt, kLe, kGe };

std::string_view to_string(RelOp op);

// Canonical attribute form: lowercase with underscores removed, matching
// GT2's RSL attribute canonicalization ("Max_Time" == "maxtime").
std::string CanonicalAttribute(std::string_view attribute);

// One relation: attribute op value-sequence. Most relations carry a single
// value; GT2 permits sequences (e.g. "(arguments= a b c)").
struct Relation {
  std::string attribute;  // canonical form
  RelOp op = RelOp::kEq;
  std::vector<std::string> values;

  // The single value, if there is exactly one.
  std::optional<std::string> single_value() const {
    if (values.size() == 1) return values.front();
    return std::nullopt;
  }

  std::string ToString() const;

  friend bool operator==(const Relation&, const Relation&) = default;
};

// A conjunction of relations: "&(a=1)(b=2)". Job descriptions and policy
// assertion sets are conjunctions.
class Conjunction {
 public:
  Conjunction() = default;
  explicit Conjunction(std::vector<Relation> relations)
      : relations_(std::move(relations)) {}

  const std::vector<Relation>& relations() const { return relations_; }
  bool empty() const { return relations_.empty(); }

  // First relation with the given attribute (canonicalized), or nullptr.
  const Relation* Find(std::string_view attribute) const;
  // All relations with the given attribute.
  std::vector<const Relation*> FindAll(std::string_view attribute) const;
  // True if any relation names the attribute.
  bool Has(std::string_view attribute) const { return Find(attribute) != nullptr; }
  // The single value of the first '=' relation for the attribute, if any.
  std::optional<std::string> GetValue(std::string_view attribute) const;

  // Appends a relation (attribute canonicalized).
  void Add(std::string_view attribute, RelOp op, std::string value);
  void Add(Relation relation);
  // Removes every relation naming the attribute; returns count removed.
  std::size_t Remove(std::string_view attribute);

  // Canonical "&(a = v)(b = v)" rendering; values are quoted when needed.
  std::string ToString() const;

  friend bool operator==(const Conjunction&, const Conjunction&) = default;

 private:
  std::vector<Relation> relations_;
};

// A full RSL specification: either one conjunction (the common case for a
// job request) or a multi-request of several.
struct Specification {
  std::vector<Conjunction> requests;  // size 1 unless a '+' multi-request

  bool is_multi() const { return requests.size() > 1; }
  std::string ToString() const;
};

// Parses an RSL specification. Accepts:
//   &(a=v)(b<4)          conjunction
//   (a=v)(b=w)           conjunction with the leading '&' omitted
//   +(&(a=v))(&(b=w))    multi-request
// Values may be unquoted tokens, or quoted with '"' (doubled quotes
// escape). Returns kParseError with position information on bad input.
Expected<Specification> Parse(std::string_view text);

// Convenience: parse a specification that must be a single conjunction.
Expected<Conjunction> ParseConjunction(std::string_view text);

// Quotes `value` if it contains characters that would not survive
// re-parsing unquoted.
std::string QuoteValue(std::string_view value);

// GT2 RSL variable substitution: replaces "$(NAME)" references inside
// every value with entries from `variables` (the Job Manager supplies
// standard ones such as HOME and LOGNAME for the local account).
// Fails with kParseError on unterminated references and with kNotFound
// on variables absent from the table.
Expected<Conjunction> SubstituteVariables(
    const Conjunction& conjunction,
    const std::map<std::string, std::string>& variables);

}  // namespace gridauthz::rsl
